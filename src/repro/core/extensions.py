"""Extensions sketched in the paper's Discussion (Section VIII).

**Handling packet loss.**  The paper: "we do not incorporate it into
our optimization problem formulation ... we believe it can be further
improved by accounting for such information."
:class:`LossAwareAllocator` is that improvement: it discounts each
level's expected viewed quality not only by the motion-prediction
success ``delta_n`` but also by a *delivery* success probability that
decays as the level's rate approaches the (estimated) link capacity —
the empirical signature of overshoot-induced loss and lateness in the
real system.  The per-slot problem keeps its concave-objective /
convex-constraint structure, so Algorithm 1's machinery (and the
Theorem 1 guarantee relative to the modified objective) still applies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.allocation import QualityAllocator, SlotProblem
from repro.errors import ConfigurationError
from repro.knapsack import ItemCurve, SeparableKnapsack, combined_greedy


def delivery_success_probability(
    rate_mbps: float,
    cap_mbps: float,
    knee: float = 0.85,
    steepness: float = 12.0,
) -> float:
    """Probability a frame at this rate survives delivery.

    A logistic in the utilisation ``u = rate / cap``: near 1 for small
    utilisation, dropping around the ``knee`` (defaults: sending at
    85% of the estimated capacity still almost always succeeds; at
    100% it is a coin toss; beyond that it mostly fails).
    """
    if cap_mbps <= 0:
        return 0.0 if rate_mbps > 0 else 1.0
    if rate_mbps < 0:
        raise ConfigurationError(f"rate must be non-negative, got {rate_mbps}")
    utilisation = rate_mbps / cap_mbps
    return 1.0 / (1.0 + math.exp(steepness * (utilisation - (knee + 0.15))))


@dataclass
class LossAwareAllocator(QualityAllocator):
    """Algorithm 1 on a loss-aware per-slot objective.

    For each level the expected viewed quality becomes
    ``delta_n * s_n(q) * q`` where ``s_n(q)`` is the delivery success
    probability at that level's rate, and the variance term uses the
    combined success probability — a frame lost in transit and a frame
    outside the FoV are both viewed as quality 0.
    """

    knee: float = 0.85
    steepness: float = 12.0
    name: str = field(default="loss-aware-greedy", init=False)

    def _curve(self, problem: SlotProblem, n: int) -> Tuple[float, ...]:
        user = problem.users[n]
        t = problem.t
        ratio = (t - 1) / t
        alpha = problem.weights.alpha
        beta = problem.weights.beta
        values = []
        for level in range(1, len(user.sizes) + 1):
            rate = user.sizes[level - 1]
            success = user.delta * delivery_success_probability(
                rate, user.cap_mbps, self.knee, self.steepness
            )
            expected_delay = user.delay_of_rate(rate)
            variance_penalty = beta * ratio * (
                success * (level - user.qbar) ** 2
                + (1.0 - success) * user.qbar ** 2
            )
            values.append(success * level - alpha * expected_delay - variance_penalty)
        return tuple(values)

    def allocate(self, problem: SlotProblem) -> List[int]:
        items = [
            ItemCurve.from_sequences(
                self._curve(problem, n),
                problem.users[n].sizes,
                cap=problem.users[n].cap_mbps,
            )
            for n in range(problem.num_users)
        ]
        skip_values = tuple(
            problem.skip_value(n) for n in range(problem.num_users)
        )
        knapsack = SeparableKnapsack(
            items,
            problem.budget_mbps,
            allow_skip=problem.allow_skip,
            skip_values=skip_values if problem.allow_skip else tuple(),
            group_of=problem.router_of,
            group_budgets=problem.router_budgets_mbps,
        )
        solution = combined_greedy(knapsack)
        return [k + 1 if k >= 0 else 0 for k in solution.options]
