"""Decomposition of the horizon objective into per-slot problems.

Appendix A of the paper shows, via Welford's variance iteration, that

    T * sigma_n^2(T) = sum_t  (t-1)/t * ( q_n(t) 1_n(t) - qbar_n(t-1) )^2     (4)

where ``qbar_n(t)`` is the running mean of the viewed quality.  This
makes the variance separable over slots *given the running mean*, so
the horizon problem (1)-(3) decomposes into one combinatorial problem
per slot with objective (9):

    h_n(q) = delta_n * q
           - alpha * E[ d_n(f^R(q)) ]
           - beta * ( delta_n * (t-1)/t * (q - qbar)^2
                    + (1 - delta_n) * (t-1)/t * qbar^2 )

with ``delta_n = E[1_n(t)]`` the prediction success probability: with
probability ``delta_n`` the user views quality ``q`` (deviation
``q - qbar``), otherwise views 0 (deviation ``-qbar``).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.errors import ConfigurationError


def running_means(viewed: Sequence[float]) -> List[float]:
    """``qbar(t)`` for t = 1..T, given the viewed-quality series."""
    means: List[float] = []
    total = 0.0
    for t, v in enumerate(viewed, start=1):
        total += v
        means.append(total / t)
    return means


def variance_penalty_term(t: int, viewed_quality: float, qbar_prev: float) -> float:
    """One summand of eq. (4): ``(t-1)/t * (viewed - qbar(t-1))^2``.

    ``t`` is 1-based; at ``t = 1`` the term vanishes (no history yet).
    """
    if t < 1:
        raise ConfigurationError(f"slot index t must be >= 1, got {t}")
    deviation = viewed_quality - qbar_prev
    # Squaring via multiplication (not ``**``): CPython's pow and
    # numpy's multiply differ in the last ulp for some inputs, and the
    # vectorized slot kernel must reproduce these values bit-for-bit.
    return (t - 1) / t * (deviation * deviation)


def welford_decomposition(viewed: Sequence[float]) -> Tuple[List[float], float]:
    """All summands of eq. (4) and their total ``T * sigma^2(T)``.

    The total provably equals ``T`` times the population variance of
    ``viewed`` — the identity the decomposition rests on; tests verify
    it to float precision.
    """
    terms: List[float] = []
    qbar_prev = 0.0
    total = 0.0
    count = 0
    for t, v in enumerate(viewed, start=1):
        term = variance_penalty_term(t, v, qbar_prev)
        terms.append(term)
        total += v
        count = t
        qbar_prev = total / count
    return terms, sum(terms)


def slot_objective(
    level: int,
    t: int,
    qbar_prev: float,
    delta: float,
    alpha: float,
    beta: float,
    expected_delay: float,
) -> float:
    """``h_n(q)`` of eq. (9) for one quality level.

    Parameters
    ----------
    level:
        Quality level ``q`` (0 = skip: nothing delivered, viewed
        quality 0 with certainty, zero delay).
    t:
        1-based slot index.
    qbar_prev:
        Running mean of viewed quality through slot ``t - 1``.
    delta:
        Prediction success probability ``delta_n`` (or its running
        estimate ``delta_bar_n(t)``).
    alpha, beta:
        QoE weights.
    expected_delay:
        ``E[d_n(f^R(q))]`` for this level (ignored for level 0, which
        transmits nothing).
    """
    if level < 0:
        raise ConfigurationError(f"level must be non-negative, got {level}")
    if not 0.0 <= delta <= 1.0:
        raise ConfigurationError(f"delta must be in [0, 1], got {delta}")
    if t < 1:
        raise ConfigurationError(f"slot index t must be >= 1, got {t}")
    ratio = (t - 1) / t
    # Squares are written as explicit multiplications so the scalar
    # path stays bit-identical to the array kernel (``x ** 2`` routes
    # through libm pow, which can differ from multiply by one ulp).
    if level == 0:
        # Skip: deterministic view of 0 -> deviation -qbar, no delay.
        return -beta * ratio * (qbar_prev * qbar_prev)
    deviation = level - qbar_prev
    variance_penalty = delta * ratio * (deviation * deviation) + (
        1.0 - delta
    ) * ratio * (qbar_prev * qbar_prev)
    return delta * level - alpha * expected_delay - beta * variance_penalty


def slot_objective_curve(
    num_levels: int,
    t: int,
    qbar_prev: float,
    delta: float,
    alpha: float,
    beta: float,
    delay_of_level: Callable[[int], float],
) -> Tuple[float, ...]:
    """``(h_n(1), ..., h_n(L))`` for one user in one slot.

    ``delay_of_level(q)`` must return ``E[d_n(f^R(q))]``; the caller
    composes the rate curve with its delay model or predictor.
    """
    if num_levels < 1:
        raise ConfigurationError(f"num_levels must be >= 1, got {num_levels}")
    return tuple(
        slot_objective(q, t, qbar_prev, delta, alpha, beta, delay_of_level(q))
        for q in range(1, num_levels + 1)
    )


def skip_objective(t: int, qbar_prev: float, beta: float) -> float:
    """``h_n(0)`` — the value of skipping delivery this slot."""
    return slot_objective(0, t, qbar_prev, 1.0, 0.0, beta, 0.0)
