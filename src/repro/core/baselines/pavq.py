"""Modified PAVQ (Joseph & de Veciana, INFOCOM '12).

PAVQ jointly adapts multi-user video quality to trade mean quality
against temporal variability, steering each user's per-slot quality
toward its running mean.  The original algorithm has no delay term;
the paper modifies it for a fair comparison: "we modify the way to
calculate ``mu_i^P`` on its algorithm description ... to adapt to our
problem setting" (Section IV).

Reproduction.  PAVQ's per-user utility mirrors eq. (9) but with two
faithful differences from Algorithm 1's objective:

* PAVQ tracks the running mean of the *allocated* quality — it
  pre-dates viewport prediction and has no concept of a delivered
  frame missing the user's FoV, so no ``delta_n`` discount appears;
* the variance term therefore penalises deviation from the allocated
  mean, not the successfully-viewed mean;
* PAVQ assumes the allocated rate is actually delivered (its setting
  has perfect channel knowledge), so it takes the system's throughput
  estimates at face value (``raw_cap_mbps``) rather than applying a
  robustness discount — the vulnerability to "inaccurate throughput
  estimation" the paper's Section VI observes.

The allocation strategy is top-down (deliberately different from
Algorithm 1's bottom-up greedy — the paper notes PAVQ lands close to
the optimal QoE "via a totally different quality allocation
strategy"):

1. **Ideal point** — each user independently picks the level that
   maximises its own utility subject only to its own cap ``B_n(t)``.
2. **Repair** — while the server budget (6) is violated, decrement
   the user whose next one-level reduction sacrifices the least
   utility per Mbps freed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.allocation import QualityAllocator, SlotProblem
from repro.errors import InfeasibleAllocationError
from repro.prediction.accuracy import RunningMean

_EPS = 1e-9


@dataclass
class PavqAllocator(QualityAllocator):
    """Per-user ideal utility point followed by budget repair."""

    name: str = field(default="pavq", init=False)

    def __post_init__(self) -> None:
        self._allocated_mean: Dict[int, RunningMean] = {}
        self._t = 0

    def reset(self) -> None:
        self._allocated_mean.clear()
        self._t = 0

    def _mean(self, n: int) -> float:
        tracker = self._allocated_mean.get(n)
        return tracker.mean if tracker is not None else 0.0

    def _utility_curve(self, problem: SlotProblem, n: int) -> Tuple[float, ...]:
        """PAVQ's per-level utility: quality - delay - variability."""
        user = problem.users[n]
        t = self._t + 1
        ratio = (t - 1) / t
        mean = self._mean(n)
        alpha = problem.weights.alpha
        beta = problem.weights.beta
        return tuple(
            level
            - alpha * user.delay_of_rate(user.sizes[level - 1])
            - beta * ratio * (level - mean) ** 2
            for level in range(1, len(user.sizes) + 1)
        )

    def _skip_utility(self, n: int, beta: float) -> float:
        t = self._t + 1
        return -beta * (t - 1) / t * self._mean(n) ** 2

    def allocate(self, problem: SlotProblem) -> List[int]:
        curves = [
            self._utility_curve(problem, n) for n in range(problem.num_users)
        ]
        beta = problem.weights.beta

        # Step 1: unconstrained-by-server ideal level per user.
        levels: List[int] = []
        for n, user in enumerate(problem.users):
            feasible = [
                level
                for level in range(1, len(user.sizes) + 1)
                if user.sizes[level - 1] <= user.raw_cap_mbps + _EPS
            ]
            if not feasible:
                if not problem.allow_skip:
                    raise InfeasibleAllocationError(
                        f"user {n}: no level fits cap {user.raw_cap_mbps:.3f} Mbps"
                    )
                levels.append(0)
                continue
            best = max(feasible, key=lambda level: curves[n][level - 1])
            if problem.allow_skip and self._skip_utility(n, beta) > curves[n][best - 1]:
                best = 0
            levels.append(best)

        # Step 2: repair the server constraint by cheapest decrements.
        total = problem.total_rate(levels)
        while total > problem.budget_mbps + _EPS:
            best_n = -1
            best_loss_density = float("inf")
            for n, level in enumerate(levels):
                if level == 0:
                    continue
                if level == 1 and not problem.allow_skip:
                    continue
                rate_now = problem.users[n].sizes[level - 1]
                if level == 1:
                    value_next = self._skip_utility(n, beta)
                    rate_next = 0.0
                else:
                    value_next = curves[n][level - 2]
                    rate_next = problem.users[n].sizes[level - 2]
                loss = curves[n][level - 1] - value_next
                freed = rate_now - rate_next
                density = loss / freed
                if density < best_loss_density:
                    best_loss_density = density
                    best_n = n
            if best_n < 0:
                raise InfeasibleAllocationError(
                    f"cannot repair server budget {problem.budget_mbps:.3f} Mbps: "
                    "every user already sits at the irreducible minimum"
                )
            levels[best_n] -= 1
            total = problem.total_rate(levels)

        # Fold this slot's allocation into the running means.
        for n, level in enumerate(levels):
            tracker = self._allocated_mean.setdefault(n, RunningMean())
            tracker.update(float(level))
        self._t += 1
        return levels
