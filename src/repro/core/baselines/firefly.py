"""Firefly's Adaptive Quality Control (LRU rate allocation).

Section IV of the paper: "Adaptive Quality Control algorithm in
Firefly, which uses Least Recently Used (LRU) algorithm to allocate
the rate for multiple users.  Due to its heuristic property and
similar setup in the original paper, it can be directly deployed to
our problem without modifications."

Reproduction: the server keeps a queue of users ordered by how long
ago they last received an *upgraded* (above-minimum) quality.  Each
slot it walks the queue front-to-back, granting every user the highest
quality level that fits both the user's *raw* throughput estimate and
the remaining server budget; users that receive an upgrade move to the
back of the queue.  Firefly trusts its throughput estimation at face
value — no safety discount, no delay or variance terms — which is
exactly the vulnerability to "inaccurate throughput estimation" the
paper's Section VI observes.
Users near the front of the queue therefore rotate through the high
quality levels — maximising instantaneous quality usage and fairness
over time, but (as the paper's figures show) producing large quality
variance and no delay awareness.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.allocation import QualityAllocator, SlotProblem
from repro.errors import InfeasibleAllocationError

_EPS = 1e-9


@dataclass
class FireflyAllocator(QualityAllocator):
    """LRU-ordered greedy max-quality fill (Firefly AQC)."""

    name: str = field(default="firefly", init=False)

    def __post_init__(self) -> None:
        # Insertion order == LRU order; key = user index.
        self._lru: "OrderedDict[int, None]" = OrderedDict()

    def reset(self) -> None:
        self._lru.clear()

    def _sync_users(self, num_users: int) -> None:
        """Admit new users at the front (they are maximally stale)."""
        known = set(self._lru)
        for n in range(num_users):
            if n not in known:
                self._lru[n] = None
                self._lru.move_to_end(n, last=False)
        for n in list(self._lru):
            if n >= num_users:
                del self._lru[n]

    def allocate(self, problem: SlotProblem) -> List[int]:
        self._sync_users(problem.num_users)
        levels: Dict[int, int] = {}

        # Everyone is entitled to the minimum level first — Firefly
        # always serves every connected user a frame.
        remaining = problem.budget_mbps
        for n, user in enumerate(problem.users):
            if user.sizes[0] <= min(user.raw_cap_mbps, remaining) + _EPS:
                levels[n] = 1
                remaining -= user.sizes[0]
            elif problem.allow_skip:
                levels[n] = 0
            else:
                raise InfeasibleAllocationError(
                    f"user {n}: minimum level ({user.sizes[0]:.3f} Mbps) does not "
                    f"fit the remaining budget {remaining:.3f} Mbps and skipping "
                    "is disabled"
                )

        # LRU pass: stalest users upgrade to the highest level that
        # fits their cap and the leftover server budget.
        for n in list(self._lru):
            if levels[n] == 0:
                continue
            user = problem.users[n]
            base = user.sizes[0]
            level = 1
            for candidate in range(len(user.sizes), 1, -1):
                size = user.sizes[candidate - 1]
                if size <= user.raw_cap_mbps + _EPS and size - base <= remaining + _EPS:
                    level = candidate
                    break
            if level > 1:
                remaining -= user.sizes[level - 1] - base
                levels[n] = level
                # Served above minimum: becomes most-recently-used.
                self._lru.move_to_end(n)

        return [levels[n] for n in range(problem.num_users)]
