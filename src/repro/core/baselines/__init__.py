"""State-of-the-art baselines the paper compares against.

* :class:`~repro.core.baselines.firefly.FireflyAllocator` — the
  Adaptive Quality Control of Firefly (USENIX ATC '20), an LRU rate
  allocation (Section IV bullet 1).
* :class:`~repro.core.baselines.pavq.PavqAllocator` — the Practical
  Adaptive Variance-aware Quality allocation of Joseph & de Veciana
  (INFOCOM '12), modified per the paper to account for delay
  (Section IV bullet 2).
"""

from repro.core.baselines.firefly import FireflyAllocator
from repro.core.baselines.pavq import PavqAllocator
from repro.core.baselines.simple import MaxMinFairAllocator, UniformAllocator

__all__ = [
    "FireflyAllocator",
    "PavqAllocator",
    "UniformAllocator",
    "MaxMinFairAllocator",
]
