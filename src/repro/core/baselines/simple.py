"""Sanity baselines: the allocations a non-adaptive system would use.

Neither appears in the paper's comparison, but both are the natural
"no scheduler" reference points any evaluation should anchor to:

* :class:`UniformAllocator` — everyone gets the same level, the
  highest one that is feasible for all users simultaneously (a
  classroom configured once, no per-user adaptation);
* :class:`MaxMinFairAllocator` — lexicographic max-min on levels:
  repeatedly raise the currently-lowest user while feasible (rate
  fairness with no QoE model at all).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.allocation import QualityAllocator, SlotProblem
from repro.errors import InfeasibleAllocationError

_EPS = 1e-9


def _fits(problem: SlotProblem, levels: List[int]) -> bool:
    return problem.is_feasible(levels)


@dataclass
class UniformAllocator(QualityAllocator):
    """One shared level for every user (highest feasible)."""

    name: str = field(default="uniform", init=False)

    def allocate(self, problem: SlotProblem) -> List[int]:
        for level in range(problem.num_levels, 0, -1):
            candidate = [level] * problem.num_users
            if _fits(problem, candidate):
                return candidate
        if problem.allow_skip:
            return [0] * problem.num_users
        raise InfeasibleAllocationError(
            "no uniform level fits the constraints and skipping is disabled"
        )


@dataclass
class MaxMinFairAllocator(QualityAllocator):
    """Raise the lowest user first, repeatedly, while feasible."""

    name: str = field(default="max-min-fair", init=False)

    def allocate(self, problem: SlotProblem) -> List[int]:
        levels = [1] * problem.num_users
        if not _fits(problem, levels):
            if not problem.allow_skip:
                raise InfeasibleAllocationError(
                    "the all-minimum allocation does not fit and skipping "
                    "is disabled"
                )
            # Degrade to skips, preferring to keep the cheapest users.
            order = sorted(
                range(problem.num_users),
                key=lambda n: problem.users[n].sizes[0],
            )
            levels = [0] * problem.num_users
            for n in order:
                levels[n] = 1
                if not _fits(problem, levels):
                    levels[n] = 0

        frozen = [False] * problem.num_users
        while not all(frozen):
            # The lowest non-frozen user gets the next upgrade try.
            candidates = [
                n for n in range(problem.num_users)
                if not frozen[n] and levels[n] > 0
            ]
            if not candidates:
                break
            n = min(candidates, key=lambda i: (levels[i], i))
            if levels[n] >= problem.num_levels:
                frozen[n] = True
                continue
            levels[n] += 1
            if not _fits(problem, levels):
                levels[n] -= 1
                frozen[n] = True
        return levels
