"""Online scheduler: the state machine around the per-slot allocator.

The decomposition couples slots only through two running statistics
per user — the viewed-quality mean ``qbar_n(t-1)`` and the prediction
accuracy estimate ``delta_bar_n(t)``.  The scheduler owns those, turns
a slot's raw inputs (rate curves, delay models, throughput estimates)
into a :class:`~repro.core.allocation.SlotProblem`, delegates to any
:class:`~repro.core.allocation.QualityAllocator`, and folds the slot's
realized outcome back into the running state and the QoE ledgers.

Both the trace-driven simulator (Section IV) and the real-system
emulation (Sections V-VI) drive their allocation through this class,
so the algorithms are executed by identical code in both worlds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.allocation import QualityAllocator, SlotProblem, UserSlotState

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a layering cycle
    import numpy as np

    from repro.kernel.batch import SlotBatch
from repro.core.qoe import QoEWeights, UserQoELedger, system_qoe
from repro.errors import ConfigurationError
from repro.obs.registry import Counter, MetricsRegistry
from repro.prediction.accuracy import PredictionAccuracyTracker, RunningMean


def _state_int(state: Mapping[str, object], key: str) -> int:
    value = state.get(key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            f"scheduler user state {key!r} must be an int, got {value!r}"
        )
    return value


def _state_float(state: Mapping[str, object], key: str) -> float:
    value = state.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"scheduler user state {key!r} must be a number, got {value!r}"
        )
    return float(value)


class CollaborativeVrScheduler:
    """Per-episode scheduling state for a population of users.

    Parameters
    ----------
    num_users:
        Population size ``N``.
    allocator:
        Any quality allocator (Algorithm 1, a baseline, the oracle).
    weights:
        QoE trade-off weights.
    allow_skip:
        Propagated into every slot problem (see
        :class:`~repro.core.allocation.SlotProblem`).
    accuracy_prior:
        ``(prior_success, prior_count)`` for the delta estimators.
    known_delta:
        When provided, the scheduler uses these fixed per-user success
        probabilities instead of running estimates (the Section IV
        simulation assumes the server knows the network and prediction
        statistics perfectly).
    """

    def __init__(
        self,
        num_users: int,
        allocator: QualityAllocator,
        weights: QoEWeights,
        allow_skip: bool = False,
        accuracy_prior: Tuple[float, float] = (0.9, 5.0),
        known_delta: Optional[Sequence[float]] = None,
    ) -> None:
        if num_users < 1:
            raise ConfigurationError(f"num_users must be >= 1, got {num_users}")
        if known_delta is not None:
            if len(known_delta) != num_users:
                raise ConfigurationError(
                    f"known_delta must have {num_users} entries, got {len(known_delta)}"
                )
            for d in known_delta:
                if not 0.0 <= d <= 1.0:
                    raise ConfigurationError(f"delta must be in [0, 1], got {d}")
        self.num_users = num_users
        self.allocator = allocator
        self.weights = weights
        self.allow_skip = allow_skip
        self._known_delta = list(known_delta) if known_delta is not None else None
        self._qbar = [RunningMean() for _ in range(num_users)]
        self._accuracy = [
            PredictionAccuracyTracker(*accuracy_prior) for _ in range(num_users)
        ]
        self.ledgers: List[UserQoELedger] = [UserQoELedger() for _ in range(num_users)]
        self._t = 0
        self._slots_counter: Optional[Counter] = None
        self._allocated_counter: Optional[Counter] = None
        self._skipped_counter: Optional[Counter] = None

    def attach_registry(self, registry: MetricsRegistry) -> None:
        """Mirror scheduling outcomes onto a metrics registry.

        Pure bookkeeping — attaching a registry changes no scheduling
        decision.  Registers slot and per-user allocation counters
        that :meth:`record_outcomes` keeps current.
        """
        self._slots_counter = registry.counter(
            "repro_sched_slots_total", "Slots folded into the scheduler state"
        )
        self._allocated_counter = registry.counter(
            "repro_sched_user_slots_allocated_total",
            "User-slots allocated a positive quality level",
        )
        self._skipped_counter = registry.counter(
            "repro_sched_user_slots_skipped_total",
            "User-slots skipped (level 0)",
        )

    @property
    def current_slot(self) -> int:
        """1-based index of the *next* slot to be allocated."""
        return self._t + 1

    def delta(self, user: int) -> float:
        """Current success-probability estimate for a user."""
        if self._known_delta is not None:
            return self._known_delta[user]
        return self._accuracy[user].estimate()

    def qbar(self, user: int) -> float:
        """Running viewed-quality mean ``qbar_n(t-1)`` for a user."""
        return self._qbar[user].mean

    def build_slot_problem(
        self,
        sizes: Sequence[Sequence[float]],
        delay_fns: Sequence[Callable[[float], float]],
        caps_mbps: Sequence[float],
        budget_mbps: float,
        raw_caps_mbps: Optional[Sequence[float]] = None,
        router_of: Optional[Sequence[int]] = None,
        router_budgets_mbps: Optional[Sequence[float]] = None,
    ) -> SlotProblem:
        """Assemble the next slot's problem from raw per-user inputs."""
        if not (len(sizes) == len(delay_fns) == len(caps_mbps) == self.num_users):
            raise ConfigurationError(
                "sizes, delay_fns, and caps must all have one entry per user"
            )
        if raw_caps_mbps is not None and len(raw_caps_mbps) != self.num_users:
            raise ConfigurationError("raw caps must have one entry per user")
        users = tuple(
            UserSlotState(
                sizes=tuple(float(s) for s in sizes[n]),
                delay_of_rate=delay_fns[n],
                delta=self.delta(n),
                qbar=self.qbar(n),
                cap_mbps=float(caps_mbps[n]),
                raw_cap_mbps=(
                    float(raw_caps_mbps[n]) if raw_caps_mbps is not None else None
                ),
            )
            for n in range(self.num_users)
        )
        return SlotProblem(
            t=self.current_slot,
            users=users,
            budget_mbps=float(budget_mbps),
            weights=self.weights,
            allow_skip=self.allow_skip,
            router_of=tuple(router_of) if router_of is not None else None,
            router_budgets_mbps=(
                tuple(float(b) for b in router_budgets_mbps)
                if router_budgets_mbps is not None
                else None
            ),
        )

    def build_slot_batch(
        self,
        sizes: "np.ndarray",
        delays: "np.ndarray",
        caps_mbps: "np.ndarray",
        budget_mbps: float,
        router_of: Optional["np.ndarray"] = None,
        router_budgets_mbps: Optional["np.ndarray"] = None,
    ) -> "SlotBatch":
        """Assemble the next slot as a flat-array :class:`SlotBatch`.

        The array twin of :meth:`build_slot_problem` for callers that
        already hold ``(N, L)`` matrices: ``delays`` carries the
        pre-evaluated delay of sending ``sizes[n, k]`` to user ``n``
        (e.g. :func:`repro.kernel.batch.mm1_delay_matrix`), so no
        per-user closures are built.  ``delta``/``qbar`` come from the
        same running statistics the object path reads.
        """
        import numpy as np

        from repro.kernel.batch import SlotBatch

        sizes = np.asarray(sizes, dtype=float)
        if sizes.ndim != 2 or sizes.shape[0] != self.num_users:
            raise ConfigurationError(
                f"sizes must be ({self.num_users}, L), got {sizes.shape}"
            )
        delta = np.array([self.delta(n) for n in range(self.num_users)])
        qbar = np.array([self.qbar(n) for n in range(self.num_users)])
        return SlotBatch(
            t=self.current_slot,
            sizes=sizes,
            delays=np.asarray(delays, dtype=float),
            delta=delta,
            qbar=qbar,
            caps_mbps=np.asarray(caps_mbps, dtype=float),
            budget_mbps=float(budget_mbps),
            weights=self.weights,
            allow_skip=self.allow_skip,
            router_of=(
                np.asarray(router_of, dtype=np.int64)
                if router_of is not None
                else None
            ),
            router_budgets_mbps=(
                np.asarray(router_budgets_mbps, dtype=float)
                if router_budgets_mbps is not None
                else None
            ),
        )

    def allocate(self, problem: SlotProblem) -> List[int]:
        """Run the configured allocator on a slot problem."""
        return self.allocator.allocate(problem)

    def record_outcomes(
        self,
        levels: Sequence[int],
        indicators: Sequence[int],
        delays: Sequence[float],
    ) -> None:
        """Fold one slot's realized results into the running state.

        ``levels[n]`` is the allocated quality (0 = skipped),
        ``indicators[n]`` the realized ``1_n(t)``, ``delays[n]`` the
        realized delivery delay.
        """
        if not (len(levels) == len(indicators) == len(delays) == self.num_users):
            raise ConfigurationError(
                "levels, indicators, and delays must all have one entry per user"
            )
        for n in range(self.num_users):
            level = int(levels[n])
            indicator = int(indicators[n])
            delay = float(delays[n])
            self.ledgers[n].record(level, indicator, delay)
            self._qbar[n].update(float(level * (indicator if level > 0 else 0)))
            if level > 0:
                # Skipped slots carry no information about prediction
                # accuracy: nothing was delivered to cover the FoV.
                self._accuracy[n].record(indicator)
            if level > 0 and self._allocated_counter is not None:
                self._allocated_counter.inc()
            elif level == 0 and self._skipped_counter is not None:
                self._skipped_counter.inc()
        if self._slots_counter is not None:
            self._slots_counter.inc()
        self._t += 1

    def total_qoe(self) -> float:
        """System QoE (eq. (1)) accumulated so far."""
        return system_qoe(self.ledgers, self.weights)

    def reset_user(self, user: int) -> None:
        """Clear one user's running state without touching the others.

        The serving layer reuses scheduler seats across sessions
        (join/leave churn); a new occupant must not inherit the
        previous session's ``qbar``, accuracy estimate, or ledger.
        """
        if not 0 <= user < self.num_users:
            raise ConfigurationError(
                f"user index must be in [0, {self.num_users}), got {user}"
            )
        self._qbar[user].reset()
        self._accuracy[user].reset()
        self.ledgers[user].reset()

    def export_user(self, user: int) -> Dict[str, object]:
        """One user's running statistics as a JSON-friendly dict.

        Captures the viewed-quality mean, the accuracy posterior, and
        the full QoE ledger transcript — the cross-slot state a
        session-migration handoff must carry so the target shard's
        scheduler continues exactly where the source left off.
        """
        if not 0 <= user < self.num_users:
            raise ConfigurationError(
                f"user index must be in [0, {self.num_users}), got {user}"
            )
        qbar_count, qbar_mean = self._qbar[user].export_state()
        trials, successes = self._accuracy[user].export_state()
        return {
            "qbar_count": qbar_count,
            "qbar_mean": qbar_mean,
            "accuracy_trials": trials,
            "accuracy_successes": successes,
            "ledger": [list(row) for row in self.ledgers[user].export_state()],
        }

    def import_user(self, user: int, state: Mapping[str, object]) -> None:
        """Reinstate one user's state from :meth:`export_user` output."""
        if not 0 <= user < self.num_users:
            raise ConfigurationError(
                f"user index must be in [0, {self.num_users}), got {user}"
            )
        qbar_count = _state_int(state, "qbar_count")
        qbar_mean = _state_float(state, "qbar_mean")
        trials = _state_int(state, "accuracy_trials")
        successes = _state_int(state, "accuracy_successes")
        ledger_rows = state.get("ledger")
        if not isinstance(ledger_rows, (list, tuple)):
            raise ConfigurationError("scheduler user state 'ledger' must be a list")
        rows: List[Tuple[int, int, float]] = []
        for row in ledger_rows:
            if not isinstance(row, (list, tuple)) or len(row) != 3:
                raise ConfigurationError(
                    f"ledger rows must be (level, indicator, delay), got {row!r}"
                )
            rows.append((int(row[0]), int(row[1]), float(row[2])))
        self._qbar[user].restore_state(qbar_count, qbar_mean)
        self._accuracy[user].restore_state(trials, successes)
        self.ledgers[user].restore_state(rows)

    def reset(self) -> None:
        """Clear all per-episode state, including the allocator's."""
        for mean in self._qbar:
            mean.reset()
        for tracker in self._accuracy:
            tracker.reset()
        for ledger in self.ledgers:
            ledger.reset()
        self.allocator.reset()
        self._t = 0
