"""The per-slot offline optimum (the paper's "optimal" curve).

Section IV: "when the number of users is small, we can use the brute
force method to generate the optimal offline solution of problem
(5)-(7)".  Note the *per-slot* problem is what the paper solves
exactly — the full horizon problem couples slots through the variance
and is exponential in ``N * T``.  This allocator therefore shares the
:class:`~repro.core.allocation.SlotProblem` interface with Algorithm 1
and simply swaps in the exact branch-and-bound solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.allocation import QualityAllocator, SlotProblem
from repro.errors import ConfigurationError
from repro.knapsack import solve_exact


@dataclass
class OfflineOptimalAllocator(QualityAllocator):
    """Exact per-slot solver via branch-and-bound.

    Parameters
    ----------
    max_users:
        Guard rail: the search is exponential in the number of users,
        so refuse instances beyond this size instead of hanging.
    """

    max_users: int = 12
    name: str = field(default="offline-optimal", init=False)

    def allocate(self, problem: SlotProblem) -> List[int]:
        if problem.num_users > self.max_users:
            raise ConfigurationError(
                f"offline optimal is exponential in users; got {problem.num_users} "
                f"users but max_users={self.max_users}"
            )
        solution = solve_exact(problem.to_knapsack())
        return [k + 1 if k >= 0 else 0 for k in solution.options]
