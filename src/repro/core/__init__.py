"""The paper's primary contribution: QoE model, decomposition, Algorithm 1.

Public surface:

* :class:`~repro.core.qoe.QoEWeights`, :class:`~repro.core.qoe.UserQoELedger`
  — the QoE definition of Section II.
* :mod:`~repro.core.decomposition` — the Welford variance iteration
  (Appendix A) and the per-slot objective ``h_n(q)`` of eq. (9).
* :class:`~repro.core.allocation.SlotProblem`,
  :class:`~repro.core.allocation.DensityValueGreedyAllocator` —
  Algorithm 1 with its 1/2-approximation guarantee (Theorem 1).
* :class:`~repro.core.offline.OfflineOptimalAllocator` — the per-slot
  brute-force optimum of Section IV.
* :mod:`~repro.core.baselines` — Firefly AQC and modified PAVQ.
* :class:`~repro.core.scheduler.CollaborativeVrScheduler` — the online
  state machine tying estimators to the allocator.
"""

from repro.core.qoe import QoEWeights, UserQoELedger, system_qoe
from repro.core.decomposition import (
    slot_objective,
    slot_objective_curve,
    variance_penalty_term,
    welford_decomposition,
)
from repro.core.allocation import (
    DensityValueGreedyAllocator,
    DensityGreedyAllocator,
    QualityAllocator,
    SlotProblem,
    UserSlotState,
    ValueGreedyAllocator,
)
from repro.core.offline import OfflineOptimalAllocator
from repro.core.baselines import FireflyAllocator, PavqAllocator
from repro.core.scheduler import CollaborativeVrScheduler
from repro.core.horizon import horizon_optimal_qoe
from repro.core.extensions import LossAwareAllocator, delivery_success_probability

__all__ = [
    "QoEWeights",
    "UserQoELedger",
    "system_qoe",
    "slot_objective",
    "slot_objective_curve",
    "variance_penalty_term",
    "welford_decomposition",
    "SlotProblem",
    "UserSlotState",
    "QualityAllocator",
    "DensityValueGreedyAllocator",
    "DensityGreedyAllocator",
    "ValueGreedyAllocator",
    "OfflineOptimalAllocator",
    "FireflyAllocator",
    "PavqAllocator",
    "CollaborativeVrScheduler",
    "horizon_optimal_qoe",
    "LossAwareAllocator",
    "delivery_success_probability",
]
