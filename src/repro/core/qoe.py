"""The QoE definition of Section II.

For user ``n`` over a horizon ``T``::

    QoE_n(T) = sum_t ( q_n(t) 1_n(t)  -  alpha * d_n(f(q_n(t)))  -  beta * sigma_n^2(T) )

i.e. total successfully-viewed quality, minus the weighted total
delivery delay, minus ``beta * T`` times the variance of the viewed
quality.  :class:`UserQoELedger` accumulates one user's realized
history and evaluates every component; :func:`system_qoe` sums over
users (eq. (1)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class QoEWeights:
    """The trade-off weights ``alpha`` (delay) and ``beta`` (variance).

    Section II: a larger ``alpha`` suits delay-sensitive applications
    (multi-user gaming); a larger ``beta`` suits consistency-sensitive
    ones (museum touring).
    """

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ConfigurationError(f"alpha must be non-negative, got {self.alpha}")
        if self.beta < 0:
            raise ConfigurationError(f"beta must be non-negative, got {self.beta}")

    @classmethod
    def simulation_defaults(cls) -> "QoEWeights":
        """alpha=0.02, beta=0.5 — the Section IV simulation setting."""
        return cls(0.02, 0.5)

    @classmethod
    def system_defaults(cls) -> "QoEWeights":
        """alpha=0.1, beta=0.5 — the Section VI real-system setting."""
        return cls(0.1, 0.5)


class UserQoELedger:
    """Realized per-slot history of one user and its QoE components.

    Record each slot with :meth:`record`; query components at any
    horizon.  The ledger stores the *viewed* quality
    ``q_n(t) * 1_n(t)`` per slot plus the delivery delay, which is all
    the QoE definition needs.
    """

    def __init__(self) -> None:
        self._viewed: List[float] = []
        self._levels: List[int] = []
        self._delays: List[float] = []
        # Running sums keep mean/variance O(1) per query.
        self._sum_viewed = 0.0
        self._sum_viewed_sq = 0.0
        self._sum_delay = 0.0

    def record(self, level: int, indicator: int, delay: float) -> None:
        """Append one slot: allocated level, coverage 1_n(t), delay.

        ``level`` 0 means the slot was skipped (nothing delivered);
        the indicator is then forced to 0 and the delay must be 0.
        """
        if level < 0:
            raise ConfigurationError(f"level must be non-negative, got {level}")
        if indicator not in (0, 1):
            raise ConfigurationError(f"indicator must be 0 or 1, got {indicator}")
        if delay < 0:
            raise ConfigurationError(f"delay must be non-negative, got {delay}")
        if level == 0:
            indicator = 0
            if delay != 0:
                raise ConfigurationError("a skipped slot cannot incur delivery delay")
        viewed = float(level * indicator)
        self._viewed.append(viewed)
        self._levels.append(level)
        self._delays.append(delay)
        self._sum_viewed += viewed
        self._sum_viewed_sq += viewed * viewed
        self._sum_delay += delay

    @property
    def horizon(self) -> int:
        """Number of recorded slots ``T``."""
        return len(self._viewed)

    @property
    def viewed_qualities(self) -> Sequence[float]:
        """The per-slot ``q_n(t) * 1_n(t)`` series."""
        return tuple(self._viewed)

    @property
    def allocated_levels(self) -> Sequence[int]:
        return tuple(self._levels)

    @property
    def delays(self) -> Sequence[float]:
        return tuple(self._delays)

    def mean_viewed_quality(self) -> float:
        """``q_bar_n(T)``: mean successfully-viewed quality (0 if empty)."""
        return self._sum_viewed / self.horizon if self.horizon else 0.0

    def mean_allocated_level(self) -> float:
        """Mean of the allocated (not necessarily viewed) levels."""
        return sum(self._levels) / self.horizon if self.horizon else 0.0

    def mean_delay(self) -> float:
        """Average delivery delay per slot."""
        return self._sum_delay / self.horizon if self.horizon else 0.0

    def quality_variance(self) -> float:
        """``sigma_n^2(T)``: population variance of viewed quality."""
        t = self.horizon
        if t == 0:
            return 0.0
        mean = self._sum_viewed / t
        return max(self._sum_viewed_sq / t - mean * mean, 0.0)

    def qoe(self, weights: QoEWeights) -> float:
        """``QoE_n(T)`` per the Section II definition (realized)."""
        t = self.horizon
        if t == 0:
            return 0.0
        return (
            self._sum_viewed
            - weights.alpha * self._sum_delay
            - weights.beta * t * self.quality_variance()
        )

    def qoe_per_slot(self, weights: QoEWeights) -> float:
        """``QoE_n(T) / T`` — the per-slot average used in the figures."""
        t = self.horizon
        return self.qoe(weights) / t if t else 0.0

    def reset(self) -> None:
        self.__init__()

    def export_state(self) -> Tuple[Tuple[int, int, float], ...]:
        """The per-slot history as ``(level, indicator, delay)`` rows.

        The indicator is recovered from the stored viewed quality
        (``viewed = level * indicator``, so it is 1 exactly when the
        slot's viewed quality is positive) — together the rows are a
        lossless transcript of every :meth:`record` call.
        """
        return tuple(
            (level, 1 if viewed > 0 else 0, delay)
            for level, viewed, delay in zip(
                self._levels, self._viewed, self._delays
            )
        )

    def restore_state(
        self, rows: Sequence[Tuple[int, int, float]]
    ) -> None:
        """Rebuild the ledger from :meth:`export_state` output.

        Replays the rows through :meth:`record`, so the running sums
        — hence mean, variance, and QoE at any horizon — match the
        original ledger bit-for-bit (the migration handoff's variance
        accumulators survive the transfer).
        """
        self.reset()
        for level, indicator, delay in rows:
            self.record(int(level), int(indicator), float(delay))


def system_qoe(ledgers: Sequence[UserQoELedger], weights: QoEWeights) -> float:
    """``QoE(T) = sum_n QoE_n(T)`` — the objective (1) of the paper."""
    return sum(ledger.qoe(weights) for ledger in ledgers)
