"""Exact horizon optimisation for single-user instances.

The full-horizon problem (1)-(3) couples slots through the variance
term and is exponential in general.  For a *single user* with known
future bandwidth, however, a sequence's QoE depends on its levels only
through the sufficient statistics ``(sum q, sum q^2)`` plus an
additive delay cost, so an exact dynamic program runs in
``O(T * L * |states|)`` with ``|states| = O(L^2 T^2)`` — practical for
tens of slots.  This module provides that solver; it is the reference
"QoE*(T)" used to validate the eq. (8) decomposition and is exposed
publicly because it is the only tractable exact horizon oracle the
model admits.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.core.qoe import QoEWeights
from repro.errors import ConfigurationError


def horizon_optimal_qoe(
    sizes: Sequence[float],
    bandwidth_of_slot: Callable[[int], float],
    horizon: int,
    weights: QoEWeights,
    delay: Callable[[float, float], float],
) -> Tuple[float, List[int]]:
    """Exact single-user ``QoE*(T)`` and one optimal level sequence.

    Parameters
    ----------
    sizes:
        ``f^R(q)`` for q = 1..L (Mbps-equivalents).
    bandwidth_of_slot:
        ``t -> B(t)`` for t = 1..horizon (1-based).
    horizon:
        Number of slots ``T``.
    weights:
        QoE weights (alpha, beta).
    delay:
        ``(rate, bandwidth) -> delay`` (e.g. the M/M/1 model).

    Returns
    -------
    (optimal QoE, optimal level sequence)

    Notes
    -----
    Assumes perfect prediction (``1_n(t) = 1``): the oracle bounds what
    any online policy could achieve with the same delivery success.
    Levels whose size exceeds the slot bandwidth are excluded (they
    violate constraint (3)).
    """
    if horizon < 1:
        raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
    if not sizes:
        raise ConfigurationError("need at least one quality level")
    num_levels = len(sizes)

    # state (sum_q, sum_q2) -> (best -alpha*delay total, backpointer)
    states: Dict[Tuple[int, int], Tuple[float, Tuple, int]] = {
        (0, 0): (0.0, None, 0)
    }
    for t in range(1, horizon + 1):
        bandwidth = bandwidth_of_slot(t)
        feasible = [
            level
            for level in range(1, num_levels + 1)
            if sizes[level - 1] <= bandwidth + 1e-9
        ]
        if not feasible:
            raise ConfigurationError(
                f"slot {t}: no level fits bandwidth {bandwidth}"
            )
        new_states: Dict[Tuple[int, int], Tuple[float, Tuple, int]] = {}
        for (sum_q, sum_q2), (score, _, _) in states.items():
            for level in feasible:
                key = (sum_q + level, sum_q2 + level * level)
                candidate = score - weights.alpha * delay(
                    sizes[level - 1], bandwidth
                )
                if key not in new_states or candidate > new_states[key][0]:
                    new_states[key] = (candidate, (sum_q, sum_q2), level)
        states = new_states

    best_key = None
    best_value = float("-inf")
    for (sum_q, sum_q2), (score, _, _) in states.items():
        value = (
            sum_q + score - weights.beta * (sum_q2 - sum_q * sum_q / horizon)
        )
        if value > best_value:
            best_value = value
            best_key = (sum_q, sum_q2)

    # Backtrack one optimal sequence.  The backpointers of the final
    # DP layer only reach one step back, so we re-run the DP layers
    # keeping full per-layer tables; for the modest horizons this
    # solver targets, recomputing is simpler than storing paths.
    sequence = _backtrack(sizes, bandwidth_of_slot, horizon, weights, delay, best_key)
    return best_value, sequence


def _backtrack(
    sizes: Sequence[float],
    bandwidth_of_slot: Callable[[int], float],
    horizon: int,
    weights: QoEWeights,
    delay: Callable[[float, float], float],
    target: Tuple[int, int],
) -> List[int]:
    """Recover a level sequence reaching ``target`` with max delay score."""
    layers: List[Dict[Tuple[int, int], Tuple[float, Tuple[int, int], int]]] = []
    states: Dict[Tuple[int, int], Tuple[float, Tuple[int, int], int]] = {
        (0, 0): (0.0, (0, 0), 0)
    }
    for t in range(1, horizon + 1):
        bandwidth = bandwidth_of_slot(t)
        new_states: Dict[Tuple[int, int], Tuple[float, Tuple[int, int], int]] = {}
        for (sum_q, sum_q2), (score, _, _) in states.items():
            for level in range(1, len(sizes) + 1):
                if sizes[level - 1] > bandwidth + 1e-9:
                    continue
                key = (sum_q + level, sum_q2 + level * level)
                candidate = score - weights.alpha * delay(
                    sizes[level - 1], bandwidth
                )
                if key not in new_states or candidate > new_states[key][0]:
                    new_states[key] = (candidate, (sum_q, sum_q2), level)
        layers.append(new_states)
        states = new_states

    sequence: List[int] = []
    key = target
    for t in range(horizon, 0, -1):
        _, prev_key, level = layers[t - 1][key]
        sequence.append(level)
        key = prev_key
    sequence.reverse()
    return sequence
