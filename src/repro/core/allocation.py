"""Per-slot quality allocation — Algorithm 1 of the paper.

:class:`SlotProblem` carries everything the per-slot problem (5)-(7)
needs: each user's rate curve, delay predictor, prediction accuracy,
running viewed-quality mean, and the two throughput constraints.
:class:`DensityValueGreedyAllocator` solves it with the paper's
combined density/value greedy, guaranteed to reach at least half the
per-slot optimum under the model's concavity/convexity assumptions
(Theorem 1).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

from repro.core.decomposition import skip_objective, slot_objective_curve
from repro.core.qoe import QoEWeights
from repro.errors import ConfigurationError
from repro.knapsack import (
    ItemCurve,
    SeparableKnapsack,
    combined_greedy,
    density_greedy,
    value_greedy,
)


@dataclass(frozen=True)
class UserSlotState:
    """One user's inputs to the per-slot problem.

    Attributes
    ----------
    sizes:
        ``(f^R(1), ..., f^R(L))`` — Mbps-equivalent size per level for
        the content this user needs this slot.
    delay_of_rate:
        Maps a sending rate to the expected delivery delay
        (``d_n``): the M/M/1 model in the simulator, the polynomial
        predictor in the real system.
    delta:
        Prediction success probability estimate ``delta_bar_n(t)``.
    qbar:
        Running mean of viewed quality ``qbar_n(t-1)``.
    cap_mbps:
        Per-user throughput ``B_n(t)`` (estimate or ground truth).
        When the scheduler runs on estimates this is the
        safety-discounted value a careful allocator should respect.
    raw_cap_mbps:
        The undiscounted estimate.  Heuristics that trust their
        throughput estimation at face value (Firefly's AQC) read this
        one; defaults to ``cap_mbps``.
    """

    sizes: Tuple[float, ...]
    delay_of_rate: Callable[[float], float]
    delta: float
    qbar: float
    cap_mbps: float
    raw_cap_mbps: float = None

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ConfigurationError("a user needs at least one quality level")
        if not 0.0 <= self.delta <= 1.0:
            raise ConfigurationError(f"delta must be in [0, 1], got {self.delta}")
        if self.qbar < 0:
            raise ConfigurationError(f"qbar must be non-negative, got {self.qbar}")
        if self.cap_mbps < 0:
            raise ConfigurationError(f"cap must be non-negative, got {self.cap_mbps}")
        if self.raw_cap_mbps is None:
            object.__setattr__(self, "raw_cap_mbps", self.cap_mbps)
        elif self.raw_cap_mbps < 0:
            raise ConfigurationError(
                f"raw cap must be non-negative, got {self.raw_cap_mbps}"
            )


@dataclass(frozen=True)
class SlotProblem:
    """The per-slot problem (5)-(7) for all users.

    ``allow_skip`` enables the quality-0 degradation path (delivering
    nothing to a user); the paper's model always delivers at least
    level 1, but the real-system emulation needs the escape hatch when
    throughput estimates overshoot.
    """

    t: int
    users: Tuple[UserSlotState, ...]
    budget_mbps: float
    weights: QoEWeights
    allow_skip: bool = False
    #: Optional shared-medium topology: router index per user plus a
    #: budget per router.  The paper folds all air-time into the one
    #: server budget B(t); router-aware allocation is the natural
    #: refinement for the two-router setup of Section VI.
    router_of: Tuple[int, ...] = None
    router_budgets_mbps: Tuple[float, ...] = None

    def __post_init__(self) -> None:
        if self.t < 1:
            raise ConfigurationError(f"slot index must be >= 1, got {self.t}")
        if not self.users:
            raise ConfigurationError("a slot problem needs at least one user")
        if self.budget_mbps < 0:
            raise ConfigurationError(
                f"budget must be non-negative, got {self.budget_mbps}"
            )
        if (self.router_of is None) != (self.router_budgets_mbps is None):
            raise ConfigurationError(
                "router_of and router_budgets_mbps must be provided together"
            )
        if self.router_of is not None and len(self.router_of) != len(self.users):
            raise ConfigurationError("router_of must have one entry per user")

    @property
    def num_users(self) -> int:
        return len(self.users)

    @property
    def num_levels(self) -> int:
        return len(self.users[0].sizes)

    def objective_curve(self, n: int) -> Tuple[float, ...]:
        """``(h_n(1), ..., h_n(L))`` for user ``n`` (eq. (9))."""
        user = self.users[n]
        return slot_objective_curve(
            len(user.sizes),
            self.t,
            user.qbar,
            user.delta,
            self.weights.alpha,
            self.weights.beta,
            lambda level: user.delay_of_rate(user.sizes[level - 1]),
        )

    def skip_value(self, n: int) -> float:
        """``h_n(0)`` for user ``n``."""
        return skip_objective(self.t, self.users[n].qbar, self.weights.beta)

    def to_knapsack(self) -> SeparableKnapsack:
        """Translate into the generic separable knapsack instance.

        Option ``k`` of item ``n`` corresponds to quality level
        ``k + 1``; the skip option (when enabled) is level 0.
        """
        items = [
            ItemCurve.from_sequences(
                self.objective_curve(n), user.sizes, cap=user.cap_mbps
            )
            for n, user in enumerate(self.users)
        ]
        skip_values = tuple(self.skip_value(n) for n in range(self.num_users))
        return SeparableKnapsack(
            items,
            self.budget_mbps,
            allow_skip=self.allow_skip,
            skip_values=skip_values if self.allow_skip else tuple(),
            group_of=self.router_of,
            group_budgets=self.router_budgets_mbps,
        )

    def objective_value(self, levels: Sequence[int]) -> float:
        """Total ``sum_n h_n(q_n)`` of an allocation (levels, 0 = skip)."""
        if len(levels) != self.num_users:
            raise ConfigurationError(
                f"expected {self.num_users} levels, got {len(levels)}"
            )
        total = 0.0
        for n, level in enumerate(levels):
            if level == 0:
                total += self.skip_value(n)
            else:
                total += self.objective_curve(n)[level - 1]
        return total

    def total_rate(self, levels: Sequence[int]) -> float:
        """Total sending rate of an allocation."""
        return sum(
            self.users[n].sizes[level - 1] if level > 0 else 0.0
            for n, level in enumerate(levels)
        )

    def is_feasible(self, levels: Sequence[int]) -> bool:
        """Check constraints (6)-(7), plus router budgets when present."""
        for n, level in enumerate(levels):
            if level < 0 or level > len(self.users[n].sizes):
                return False
            if level == 0 and not self.allow_skip:
                return False
            if level > 0 and self.users[n].sizes[level - 1] > self.users[n].cap_mbps + 1e-9:
                return False
        if self.total_rate(levels) > self.budget_mbps + 1e-9:
            return False
        if self.router_of is not None:
            totals = [0.0] * len(self.router_budgets_mbps)
            for n, level in enumerate(levels):
                if level > 0:
                    totals[self.router_of[n]] += self.users[n].sizes[level - 1]
            for total, budget in zip(totals, self.router_budgets_mbps):
                if total > budget + 1e-9:
                    return False
        return True


def _options_to_levels(options: Sequence[int]) -> List[int]:
    """Map knapsack option indices back to quality levels."""
    return [k + 1 if k >= 0 else 0 for k in options]


class QualityAllocator(abc.ABC):
    """Interface shared by Algorithm 1, the baselines, and the oracle."""

    #: Human-readable name used in reports and figures.
    name: str = "allocator"

    @abc.abstractmethod
    def allocate(self, problem: SlotProblem) -> List[int]:
        """Pick a quality level (0..L; 0 = skip) for every user."""

    def reset(self) -> None:
        """Clear any cross-slot internal state (default: stateless)."""


@dataclass
class DensityValueGreedyAllocator(QualityAllocator):
    """Algorithm 1: the better of density-greedy and value-greedy.

    Stateless across slots — all the coupling lives in the
    ``qbar``/``delta`` fields of the :class:`SlotProblem`, which the
    :class:`~repro.core.scheduler.CollaborativeVrScheduler` maintains.

    ``strategy`` selects the greedy implementation: ``"heap"`` (the
    O(log N)-per-upgrade fast path, default) or ``"reference"`` (the
    direct Algorithm 1 loop kept as the oracle).  Both produce
    bit-identical allocations.
    """

    name: str = field(default="density-value-greedy", init=False)
    strategy: str = "heap"

    def allocate(self, problem: SlotProblem) -> List[int]:
        solution = combined_greedy(problem.to_knapsack(), strategy=self.strategy)
        return _options_to_levels(solution.options)


@dataclass
class DensityGreedyAllocator(QualityAllocator):
    """Density-greedy half of Algorithm 1 (ablation)."""

    name: str = field(default="density-greedy", init=False)
    strategy: str = "heap"

    def allocate(self, problem: SlotProblem) -> List[int]:
        solution = density_greedy(problem.to_knapsack(), strategy=self.strategy)
        return _options_to_levels(solution.options)


@dataclass
class ValueGreedyAllocator(QualityAllocator):
    """Value-greedy half of Algorithm 1 (ablation)."""

    name: str = field(default="value-greedy", init=False)
    strategy: str = "heap"

    def allocate(self, problem: SlotProblem) -> List[int]:
        solution = value_greedy(problem.to_knapsack(), strategy=self.strategy)
        return _options_to_levels(solution.options)
