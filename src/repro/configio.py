"""Configuration serialisation.

Experiments should be reproducible from an artifact: these helpers
round-trip :class:`~repro.simulation.simulator.SimulationConfig` and
:class:`~repro.system.experiment.ExperimentConfig` through plain
dictionaries and JSON files, including the nested
:class:`~repro.core.qoe.QoEWeights`.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Dict, Type, TypeVar, Union

from repro.core.qoe import QoEWeights
from repro.errors import ConfigurationError
from repro.simulation.simulator import SimulationConfig
from repro.system.experiment import ExperimentConfig

PathLike = Union[str, pathlib.Path]
ConfigT = TypeVar("ConfigT", SimulationConfig, ExperimentConfig)

#: Registry used when loading: the JSON carries a "kind" tag.
_KINDS: Dict[str, type] = {
    "simulation": SimulationConfig,
    "system": ExperimentConfig,
}


def _kind_of(config: Union[SimulationConfig, ExperimentConfig]) -> str:
    for kind, cls in _KINDS.items():
        if isinstance(config, cls):
            return kind
    raise ConfigurationError(f"unsupported config type {type(config).__name__}")


def config_to_dict(config: Union[SimulationConfig, ExperimentConfig]) -> Dict[str, Any]:
    """Flatten a config (and its weights) into a JSON-safe dict."""
    payload = dataclasses.asdict(config)
    weights = payload.pop("weights")
    payload["alpha"] = weights["alpha"]
    payload["beta"] = weights["beta"]
    # Tuples become lists under asdict; normalise explicitly for JSON.
    for key, value in list(payload.items()):
        if isinstance(value, tuple):
            payload[key] = list(value)
    payload["kind"] = _kind_of(config)
    return payload


def config_from_dict(payload: Dict[str, Any]) -> Union[SimulationConfig, ExperimentConfig]:
    """Rebuild a config from :func:`config_to_dict` output."""
    data = dict(payload)
    try:
        kind = data.pop("kind")
    except KeyError:
        raise ConfigurationError("config payload is missing its 'kind' tag") from None
    try:
        cls = _KINDS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown config kind {kind!r}; expected one of {sorted(_KINDS)}"
        ) from None
    try:
        alpha = data.pop("alpha")
        beta = data.pop("beta")
    except KeyError:
        raise ConfigurationError("config payload is missing alpha/beta") from None
    field_names = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - field_names
    if unknown:
        raise ConfigurationError(
            f"unknown config fields for {kind}: {sorted(unknown)}"
        )
    return cls(weights=QoEWeights(alpha=alpha, beta=beta), **data)


def save_config(
    config: Union[SimulationConfig, ExperimentConfig], path: PathLike
) -> None:
    """Write a config as JSON."""
    with open(path, "w") as handle:
        json.dump(config_to_dict(config), handle, indent=2, sort_keys=True)


def load_config(path: PathLike) -> Union[SimulationConfig, ExperimentConfig]:
    """Read a config written by :func:`save_config`."""
    with open(path) as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ConfigurationError(f"{path}: expected a JSON object")
    return config_from_dict(payload)
