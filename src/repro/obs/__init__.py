"""Unified observability: metrics registry, tracer, flight recorder.

The layer has four public pieces, all zero-dependency:

* :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges,
  and bounded-bucket histograms, rendered as Prometheus text
  exposition or one JSON snapshot;
* :class:`~repro.obs.tracer.Tracer` — per-slot span trees (slot →
  stage → per-user allocation) on the monotonic clock, streamed to a
  JSONL sink under a sampling knob;
* :class:`~repro.obs.flight.FlightRecorder` — a fixed ring of recent
  slot spans dumped automatically on anomalies (deadline miss,
  admission reject, write-watermark drop);
* :class:`~repro.obs.http.ObsHttpServer` — ``/metrics``, ``/healthz``
  and ``/snapshot`` over plain asyncio sockets.

:class:`~repro.obs.config.Obs` bundles the first three per process;
``repro obs`` (:mod:`repro.obs.cli`) tails, summarizes, diffs, and
scrapes what they produce.
"""

from repro.obs.buildinfo import (
    BUILD_INFO_METRIC,
    config_fingerprint,
    register_build_info,
)
from repro.obs.cluster import (
    COORDINATOR_SHARD,
    MERGE_CONFLICTS_METRIC,
    SHARD_LABEL,
    merge_conflicts,
    merge_registries,
)
from repro.obs.config import DEFAULT_SAMPLE_EVERY, Obs, ObsConfig
from repro.obs.flight import (
    AnyFlightRecorder,
    FlightDump,
    FlightRecorder,
    NullFlightRecorder,
    TRIGGER_ADMISSION_REJECT,
    TRIGGER_DEADLINE_MISS,
    TRIGGER_MIGRATION_STALL,
    TRIGGER_SHARD_KILL,
    TRIGGER_SHARD_RESPAWN,
    TRIGGER_SLO_BREACH,
    TRIGGER_WRITE_DROP,
    TRIGGERS,
)
from repro.obs.http import ObsHttpServer, PROMETHEUS_CONTENT_TYPE
from repro.obs.promtext import ExpositionSummary, validate_exposition
from repro.obs.registry import (
    BucketHistogram,
    Counter,
    DEFAULT_LATENCY_BUCKETS_S,
    Gauge,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.slo import (
    SLO_BREACHES_METRIC,
    SLO_BURN_METRIC,
    SLO_KINDS,
    SloConfig,
    SloEngine,
    SloObjective,
    SloSample,
    SloStatus,
    default_slo_config,
    evaluate_sample,
    load_slo_config,
    sample_registry,
    sample_snapshot,
)
from repro.obs.spans import (
    SPAN_SCHEMA_VERSION,
    SPAN_STREAM_KIND,
    Span,
    read_span_stream,
    read_span_stream_tolerant,
    write_span_stream,
)
from repro.obs.stitch import (
    MIGRATION_SPAN_NAME,
    MigrationEvent,
    SessionTimeline,
    ShardSegment,
    UserSlotSample,
    format_timeline,
    stitch_spans,
)
from repro.obs.tracer import (
    AnyTracer,
    NullTracer,
    SlotSpanBuilder,
    Tracer,
    stage_latency_table,
)

__all__ = [
    "AnyFlightRecorder",
    "AnyTracer",
    "BUILD_INFO_METRIC",
    "BucketHistogram",
    "COORDINATOR_SHARD",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_S",
    "DEFAULT_SAMPLE_EVERY",
    "ExpositionSummary",
    "FlightDump",
    "FlightRecorder",
    "Gauge",
    "MERGE_CONFLICTS_METRIC",
    "MIGRATION_SPAN_NAME",
    "MetricFamily",
    "MetricsRegistry",
    "MigrationEvent",
    "NullFlightRecorder",
    "NullTracer",
    "Obs",
    "ObsConfig",
    "ObsHttpServer",
    "PROMETHEUS_CONTENT_TYPE",
    "SHARD_LABEL",
    "SLO_BREACHES_METRIC",
    "SLO_BURN_METRIC",
    "SLO_KINDS",
    "SPAN_SCHEMA_VERSION",
    "SPAN_STREAM_KIND",
    "SessionTimeline",
    "ShardSegment",
    "SloConfig",
    "SloEngine",
    "SloObjective",
    "SloSample",
    "SloStatus",
    "SlotSpanBuilder",
    "Span",
    "TRIGGER_ADMISSION_REJECT",
    "TRIGGER_DEADLINE_MISS",
    "TRIGGER_MIGRATION_STALL",
    "TRIGGER_SHARD_KILL",
    "TRIGGER_SHARD_RESPAWN",
    "TRIGGER_SLO_BREACH",
    "TRIGGER_WRITE_DROP",
    "TRIGGERS",
    "Tracer",
    "UserSlotSample",
    "config_fingerprint",
    "default_slo_config",
    "evaluate_sample",
    "format_timeline",
    "load_slo_config",
    "merge_conflicts",
    "merge_registries",
    "read_span_stream",
    "read_span_stream_tolerant",
    "register_build_info",
    "sample_registry",
    "sample_snapshot",
    "stage_latency_table",
    "stitch_spans",
    "validate_exposition",
    "write_span_stream",
]
