"""Unified observability: metrics registry, tracer, flight recorder.

The layer has four public pieces, all zero-dependency:

* :class:`~repro.obs.registry.MetricsRegistry` — counters, gauges,
  and bounded-bucket histograms, rendered as Prometheus text
  exposition or one JSON snapshot;
* :class:`~repro.obs.tracer.Tracer` — per-slot span trees (slot →
  stage → per-user allocation) on the monotonic clock, streamed to a
  JSONL sink under a sampling knob;
* :class:`~repro.obs.flight.FlightRecorder` — a fixed ring of recent
  slot spans dumped automatically on anomalies (deadline miss,
  admission reject, write-watermark drop);
* :class:`~repro.obs.http.ObsHttpServer` — ``/metrics``, ``/healthz``
  and ``/snapshot`` over plain asyncio sockets.

:class:`~repro.obs.config.Obs` bundles the first three per process;
``repro obs`` (:mod:`repro.obs.cli`) tails, summarizes, diffs, and
scrapes what they produce.
"""

from repro.obs.config import DEFAULT_SAMPLE_EVERY, Obs, ObsConfig
from repro.obs.flight import (
    AnyFlightRecorder,
    FlightDump,
    FlightRecorder,
    NullFlightRecorder,
    TRIGGER_ADMISSION_REJECT,
    TRIGGER_DEADLINE_MISS,
    TRIGGER_WRITE_DROP,
    TRIGGERS,
)
from repro.obs.http import ObsHttpServer, PROMETHEUS_CONTENT_TYPE
from repro.obs.promtext import ExpositionSummary, validate_exposition
from repro.obs.registry import (
    BucketHistogram,
    Counter,
    DEFAULT_LATENCY_BUCKETS_S,
    Gauge,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.spans import (
    SPAN_SCHEMA_VERSION,
    SPAN_STREAM_KIND,
    Span,
    read_span_stream,
    write_span_stream,
)
from repro.obs.tracer import (
    AnyTracer,
    NullTracer,
    SlotSpanBuilder,
    Tracer,
    stage_latency_table,
)

__all__ = [
    "AnyFlightRecorder",
    "AnyTracer",
    "BucketHistogram",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_S",
    "DEFAULT_SAMPLE_EVERY",
    "ExpositionSummary",
    "FlightDump",
    "FlightRecorder",
    "Gauge",
    "MetricFamily",
    "MetricsRegistry",
    "NullFlightRecorder",
    "NullTracer",
    "Obs",
    "ObsConfig",
    "ObsHttpServer",
    "PROMETHEUS_CONTENT_TYPE",
    "SPAN_SCHEMA_VERSION",
    "SPAN_STREAM_KIND",
    "SlotSpanBuilder",
    "Span",
    "TRIGGER_ADMISSION_REJECT",
    "TRIGGER_DEADLINE_MISS",
    "TRIGGER_WRITE_DROP",
    "TRIGGERS",
    "Tracer",
    "read_span_stream",
    "stage_latency_table",
    "validate_exposition",
    "write_span_stream",
]
