"""The ``repro obs`` command family: trace-file and endpoint tooling.

* ``repro obs tail FILE``       — the last N slot spans, one line each;
* ``repro obs summarize FILE``  — per-stage latency stats + misses;
* ``repro obs diff A B``        — stage-latency deltas between traces;
* ``repro obs stitch FILES...`` — join per-shard + coordinator streams
  into per-session cross-shard timelines;
* ``repro obs slo TARGET``      — evaluate an SLO config against a
  ``/snapshot`` document (file or URL), nonzero on breach;
* ``repro obs scrape URL``      — fetch and validate a ``/metrics``
  page (``--json`` for ``/healthz`` / ``/snapshot``), the CI gate.

Exit codes mirror the lint contract: ``0`` success, ``1`` the target
was reachable but invalid (malformed exposition / malformed trace
content / a breaching SLO), ``2`` usage error (missing file,
unreachable endpoint), ``3`` the trace stream ended mid-line (a
truncated final record — typically a killed writer) and the readable
prefix was processed.
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.error
import urllib.request
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Tuple

from repro.errors import ObservabilityError
from repro.obs.promtext import validate_exposition
from repro.obs.slo import (
    default_slo_config,
    evaluate_sample,
    load_slo_config,
    sample_snapshot,
)
from repro.obs.spans import Span, read_span_stream_tolerant
from repro.obs.stitch import format_timeline, stitch_spans
from repro.obs.tracer import stage_latency_table

EXIT_OK = 0
EXIT_INVALID = 1
EXIT_USAGE = 2
#: The stream's final record was cut mid-line (killed writer); the
#: readable prefix was still processed.
EXIT_TRUNCATED = 3


def add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``obs`` subcommands to a (sub)parser."""
    sub = parser.add_subparsers(dest="obs_command", required=True)

    tail = sub.add_parser("tail", help="print the last N slot spans")
    tail.add_argument("trace", help="span JSONL file written by the tracer")
    tail.add_argument("-n", "--lines", type=int, default=10,
                      help="spans to show (default: 10)")

    summarize = sub.add_parser(
        "summarize", help="per-stage latency stats for one trace file"
    )
    summarize.add_argument("trace", help="span JSONL file")
    summarize.add_argument("--json", action="store_true",
                           help="emit the summary as JSON")

    diff = sub.add_parser(
        "diff", help="stage-latency deltas between two trace files"
    )
    diff.add_argument("before", help="baseline span JSONL file")
    diff.add_argument("after", help="candidate span JSONL file")

    stitch = sub.add_parser(
        "stitch",
        help="join per-shard and coordinator streams into session timelines",
    )
    stitch.add_argument(
        "traces", nargs="+",
        help="span JSONL files (shard streams + the coordinator stream)",
    )
    stitch.add_argument("--json", action="store_true",
                        help="emit the timelines as JSON")

    slo = sub.add_parser(
        "slo", help="evaluate SLOs against a /snapshot document"
    )
    slo.add_argument(
        "target",
        help="snapshot JSON file, or the URL of a /snapshot endpoint",
    )
    slo.add_argument("--config", default=None,
                     help="SLO config JSON (default: the built-in set)")
    slo.add_argument("--seats", type=int, default=1,
                     help="seats per shard, for user-slot objectives")
    slo.add_argument("--json", action="store_true",
                     help="emit the evaluation as JSON")
    slo.add_argument("--timeout", type=float, default=10.0,
                     help="request timeout in seconds (default: 10)")

    scrape = sub.add_parser(
        "scrape", help="fetch an observability endpoint and validate it"
    )
    scrape.add_argument("url", help="endpoint URL (e.g. http://host:port/metrics)")
    scrape.add_argument("--json", action="store_true",
                        help="expect a JSON body instead of Prometheus text")
    scrape.add_argument("--timeout", type=float, default=10.0,
                        help="request timeout in seconds (default: 10)")
    scrape.add_argument("--quiet", action="store_true",
                        help="suppress the page echo, print the verdict only")


def run_obs_command(
    args: argparse.Namespace,
    stdout: Optional[TextIO] = None,
    stderr: Optional[TextIO] = None,
) -> int:
    """Execute ``repro obs <subcommand>`` from parsed arguments."""
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    command = args.obs_command
    if command == "tail":
        return _cmd_tail(args, out, err)
    if command == "summarize":
        return _cmd_summarize(args, out, err)
    if command == "diff":
        return _cmd_diff(args, out, err)
    if command == "stitch":
        return _cmd_stitch(args, out, err)
    if command == "slo":
        return _cmd_slo(args, out, err)
    return _cmd_scrape(args, out, err)


# ---------------------------------------------------------------------------
# Trace-file commands
# ---------------------------------------------------------------------------


def _load_trace(path_text: str, err: TextIO) -> Optional[Tuple[List[Span], int]]:
    """Read a span stream; None (after printing) on usage errors.

    Returns ``(spans, skipped)``.  A truncated *final* line — the
    signature of a writer killed mid-record — is skipped with a
    warning (``skipped`` counts it) so a post-mortem can still read
    the prefix; malformed content anywhere else raises, and the
    caller maps it to EXIT_INVALID.
    """
    path = Path(path_text)
    if not path.is_file():
        print(f"repro obs: error: no such trace file: {path}", file=err)
        return None
    with open(path, "r", encoding="utf-8") as handle:
        _, spans, skipped = read_span_stream_tolerant(handle)
    if skipped:
        print(
            f"repro obs: warning: {path}: skipped {skipped} truncated "
            "final line (writer likely killed mid-record)",
            file=err,
        )
    return spans, skipped


def _span_line(span: Span) -> str:
    slot = span.attrs.get("slot", "?")
    hit = span.attrs.get("deadline_hit")
    stages = " ".join(
        f"{child.name}={child.duration_s * 1e3:.3f}ms"
        for child in span.children
        if child.name != "user"
    )
    users = sum(len(child.find("user")) for child in span.children)
    users += len(span.find("user"))
    marker = "" if hit in (None, True) else "  MISS"
    return (
        f"slot {slot:>6}  {span.duration_s * 1e3:8.3f}ms  "
        f"users={users}  {stages}{marker}"
    )


def _cmd_tail(args: argparse.Namespace, out: TextIO, err: TextIO) -> int:
    if args.lines < 1:
        print("repro obs: error: -n must be >= 1", file=err)
        return EXIT_USAGE
    try:
        loaded = _load_trace(args.trace, err)
        if loaded is None:
            return EXIT_USAGE
        spans, skipped = loaded
    except ObservabilityError as exc:
        print(f"repro obs: invalid trace: {exc}", file=err)
        return EXIT_INVALID
    for span in spans[-args.lines:]:
        print(_span_line(span), file=out)
    return EXIT_TRUNCATED if skipped else EXIT_OK


def _quantile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(int(q * len(ordered)), len(ordered) - 1)
    return ordered[rank]


def _summarize_spans(spans: List[Span]) -> Dict[str, object]:
    stages = stage_latency_table(spans)
    misses = sum(
        1 for span in spans if span.attrs.get("deadline_hit") is False
    )
    dump_stage: Dict[str, Dict[str, float]] = {}
    for name, samples in stages.items():
        dump_stage[name] = {
            "count": float(len(samples)),
            "p50_ms": _quantile(samples, 0.50) * 1e3,
            "p90_ms": _quantile(samples, 0.90) * 1e3,
            "p99_ms": _quantile(samples, 0.99) * 1e3,
            "max_ms": max(samples) * 1e3 if samples else 0.0,
        }
    return {
        "spans": len(spans),
        "deadline_misses": misses,
        "stages": dump_stage,
    }


def _cmd_summarize(args: argparse.Namespace, out: TextIO, err: TextIO) -> int:
    try:
        loaded = _load_trace(args.trace, err)
        if loaded is None:
            return EXIT_USAGE
        spans, skipped = loaded
    except ObservabilityError as exc:
        print(f"repro obs: invalid trace: {exc}", file=err)
        return EXIT_INVALID
    summary = _summarize_spans(spans)
    if args.json:
        print(json.dumps(summary, sort_keys=True), file=out)
        return EXIT_TRUNCATED if skipped else EXIT_OK
    print(
        f"{summary['spans']} slot span(s), "
        f"{summary['deadline_misses']} deadline miss(es)\n",
        file=out,
    )
    stages = summary["stages"]
    assert isinstance(stages, dict)
    header = f"{'stage':>10}  {'count':>6}  {'p50 ms':>9}  {'p99 ms':>9}  {'max ms':>9}"
    print(header, file=out)
    for name in sorted(stages):
        row = stages[name]
        print(
            f"{name:>10}  {int(row['count']):>6}  {row['p50_ms']:>9.3f}  "
            f"{row['p99_ms']:>9.3f}  {row['max_ms']:>9.3f}",
            file=out,
        )
    return EXIT_TRUNCATED if skipped else EXIT_OK


def _cmd_diff(args: argparse.Namespace, out: TextIO, err: TextIO) -> int:
    sides: List[Dict[str, object]] = []
    truncated = 0
    for path_text in (args.before, args.after):
        try:
            loaded = _load_trace(path_text, err)
            if loaded is None:
                return EXIT_USAGE
            spans, skipped = loaded
            truncated += skipped
        except ObservabilityError as exc:
            print(f"repro obs: invalid trace {path_text}: {exc}", file=err)
            return EXIT_INVALID
        sides.append(_summarize_spans(spans))
    before, after = sides
    before_stages = before["stages"]
    after_stages = after["stages"]
    assert isinstance(before_stages, dict) and isinstance(after_stages, dict)
    print(
        f"spans: {before['spans']} -> {after['spans']}; deadline misses: "
        f"{before['deadline_misses']} -> {after['deadline_misses']}\n",
        file=out,
    )
    print(
        f"{'stage':>10}  {'p50 ms (a)':>11}  {'p50 ms (b)':>11}  "
        f"{'delta %':>8}  {'p99 ms (a)':>11}  {'p99 ms (b)':>11}",
        file=out,
    )
    for name in sorted(set(before_stages) | set(after_stages)):
        b = before_stages.get(name, {"p50_ms": 0.0, "p99_ms": 0.0})
        a = after_stages.get(name, {"p50_ms": 0.0, "p99_ms": 0.0})
        delta = (
            (a["p50_ms"] - b["p50_ms"]) / b["p50_ms"] * 100.0
            if b["p50_ms"] > 0
            else 0.0
        )
        print(
            f"{name:>10}  {b['p50_ms']:>11.3f}  {a['p50_ms']:>11.3f}  "
            f"{delta:>+7.1f}%  {b['p99_ms']:>11.3f}  {a['p99_ms']:>11.3f}",
            file=out,
        )
    return EXIT_TRUNCATED if truncated else EXIT_OK


# ---------------------------------------------------------------------------
# Cross-shard stitching
# ---------------------------------------------------------------------------


def _cmd_stitch(args: argparse.Namespace, out: TextIO, err: TextIO) -> int:
    streams: List[List[Span]] = []
    truncated = 0
    for path_text in args.traces:
        try:
            loaded = _load_trace(path_text, err)
            if loaded is None:
                return EXIT_USAGE
            spans, skipped = loaded
            truncated += skipped
        except ObservabilityError as exc:
            print(f"repro obs: invalid trace {path_text}: {exc}", file=err)
            return EXIT_INVALID
        streams.append(spans)
    timelines = stitch_spans(streams)
    if args.json:
        print(
            json.dumps(
                {"sessions": [t.to_dict() for t in timelines]},
                sort_keys=True,
            ),
            file=out,
        )
        return EXIT_TRUNCATED if truncated else EXIT_OK
    if not timelines:
        print("no attributed sessions found", file=out)
        return EXIT_TRUNCATED if truncated else EXIT_OK
    for timeline in timelines:
        for line in format_timeline(timeline):
            print(line, file=out)
    migrated = sum(1 for t in timelines if t.migrations)
    print(
        f"\n{len(timelines)} session(s), {migrated} migrated",
        file=out,
    )
    return EXIT_TRUNCATED if truncated else EXIT_OK


# ---------------------------------------------------------------------------
# SLO evaluation
# ---------------------------------------------------------------------------


def _cmd_slo(args: argparse.Namespace, out: TextIO, err: TextIO) -> int:
    if args.seats < 1:
        print("repro obs: error: --seats must be >= 1", file=err)
        return EXIT_USAGE
    try:
        config = (
            load_slo_config(Path(args.config))
            if args.config is not None
            else default_slo_config()
        )
    except ObservabilityError as exc:
        print(f"repro obs: error: {exc}", file=err)
        return EXIT_USAGE

    if args.target.startswith(("http://", "https://")):
        try:
            with urllib.request.urlopen(
                args.target, timeout=args.timeout
            ) as response:
                body = response.read().decode("utf-8", errors="replace")
        except (urllib.error.URLError, OSError, ValueError) as exc:
            print(
                f"repro obs: error: cannot scrape {args.target}: {exc}",
                file=err,
            )
            return EXIT_USAGE
    else:
        path = Path(args.target)
        if not path.is_file():
            print(
                f"repro obs: error: no such snapshot file: {path}", file=err
            )
            return EXIT_USAGE
        body = path.read_text(encoding="utf-8")

    try:
        snapshot = json.loads(body)
    except json.JSONDecodeError as exc:
        print(f"repro obs: invalid snapshot JSON: {exc}", file=err)
        return EXIT_INVALID
    if not isinstance(snapshot, dict):
        print("repro obs: invalid snapshot: not a JSON object", file=err)
        return EXIT_INVALID
    try:
        sample = sample_snapshot(snapshot)
    except ObservabilityError as exc:
        print(f"repro obs: invalid snapshot: {exc}", file=err)
        return EXIT_INVALID

    statuses = evaluate_sample(config, sample, seats=args.seats)
    breaching = [status.name for status in statuses if status.breached]
    if args.json:
        print(
            json.dumps(
                {
                    "objectives": [status.to_dict() for status in statuses],
                    "breaching": breaching,
                },
                sort_keys=True,
            ),
            file=out,
        )
        return EXIT_INVALID if breaching else EXIT_OK
    print(
        f"{'objective':>20}  {'kind':>20}  {'target':>7}  "
        f"{'error':>8}  {'burn':>7}  state",
        file=out,
    )
    for status in statuses:
        state = "BREACH" if status.breached else "ok"
        print(
            f"{status.name:>20}  {status.kind:>20}  {status.target:>7.3f}  "
            f"{status.error_ratio:>8.4f}  {status.burn:>6.2f}x  {state}",
            file=out,
        )
    if breaching:
        print(f"\nbreaching: {', '.join(breaching)}", file=out)
        return EXIT_INVALID
    print("\nall objectives within budget", file=out)
    return EXIT_OK


# ---------------------------------------------------------------------------
# Endpoint scraping
# ---------------------------------------------------------------------------


def _cmd_scrape(args: argparse.Namespace, out: TextIO, err: TextIO) -> int:
    if not args.url.startswith(("http://", "https://")):
        print(f"repro obs: error: not an http(s) URL: {args.url}", file=err)
        return EXIT_USAGE
    try:
        with urllib.request.urlopen(args.url, timeout=args.timeout) as response:
            status = int(response.status)
            body = response.read().decode("utf-8", errors="replace")
    except urllib.error.HTTPError as exc:
        # The endpoint answered, just not with a page we can use.
        print(f"repro obs: endpoint returned HTTP {exc.code}", file=err)
        return EXIT_INVALID
    except (urllib.error.URLError, OSError, ValueError) as exc:
        print(f"repro obs: error: cannot scrape {args.url}: {exc}", file=err)
        return EXIT_USAGE
    if status != 200:
        print(f"repro obs: endpoint returned HTTP {status}", file=err)
        return EXIT_INVALID
    if args.json:
        try:
            json.loads(body)
        except json.JSONDecodeError as exc:
            print(f"repro obs: invalid JSON body: {exc}", file=err)
            return EXIT_INVALID
        if not args.quiet:
            print(body.strip(), file=out)
        print(f"valid JSON ({len(body)} bytes)", file=out)
        return EXIT_OK
    try:
        summary = validate_exposition(body)
    except ObservabilityError as exc:
        print(f"repro obs: malformed exposition: {exc}", file=err)
        return EXIT_INVALID
    if not args.quiet:
        print(body.rstrip(), file=out)
    print(
        f"valid exposition: {len(summary.families)} famil"
        f"{'y' if len(summary.families) == 1 else 'ies'}, "
        f"{summary.samples} sample(s)",
        file=out,
    )
    return EXIT_OK
