"""Per-slot tracing: span builders, a JSONL sink, and a sampling knob.

The slot loop owns the clock (it already reads ``loop.time()`` to
enforce the deadline), so the tracer never reads one itself: stage
boundaries are handed in as monotonic offsets and the tracer only
assembles the span tree.  That keeps the instrumentation provably
inert — no syscalls, no RNG, no awaits — and its cost at a handful of
dict/list allocations per slot.

Sampling (``sample_every``) applies to the *sink*, not to span
construction: every slot's span is always built and offered to the
flight recorder (an anomaly dump must contain the offending slot even
when tracing is sampled down), but only every Nth span is serialized
to the JSONL file, which is where the real cost lives.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path
from typing import IO, Dict, List, Optional, Union

from repro.errors import ObservabilityError
from repro.obs.registry import Counter, MetricsRegistry
from repro.obs.spans import AttrValue, Span, stream_header


def _in_event_loop() -> bool:
    """True when called from a running asyncio event-loop thread."""
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return False
    return True


class SlotSpanBuilder:
    """Accumulates one slot's span tree stage by stage."""

    __slots__ = ("span", "_allocation")

    def __init__(self, slot: int, start_s: float) -> None:
        self.span = Span(
            name="slot", start_s=start_s, duration_s=0.0, attrs={"slot": slot}
        )
        self._allocation: Optional[Span] = None

    def stage(
        self, name: str, start_s: float, end_s: float, **attrs: AttrValue
    ) -> Span:
        """Record one pipeline stage from its boundary clock reads."""
        span = self.span.child(
            name, start_s=start_s, duration_s=max(end_s - start_s, 0.0), **attrs
        )
        if name == "allocate":
            self._allocation = span
        return span

    def user(self, seat: int, **attrs: AttrValue) -> Span:
        """Record one seat's allocation under the allocate stage.

        Falls back to the slot root when no allocate stage has been
        recorded (the simulator's condensed pipeline).
        """
        parent = self._allocation if self._allocation is not None else self.span
        return parent.child("user", parent.start_s, 0.0, seat=seat, **attrs)

    def finish(self, end_s: float, **attrs: AttrValue) -> Span:
        """Close the root span and return it."""
        self.span.duration_s = max(end_s - self.span.start_s, 0.0)
        self.span.attrs.update(attrs)
        return self.span


class Tracer:
    """Builds slot spans and writes a sampled stream to a JSONL sink.

    ``sample_every=1`` writes every slot, ``n`` writes slots 0, n,
    2n, ...; the path is opened lazily on the first write so a tracer
    with no traffic leaves no file.  :meth:`close` flushes and is
    idempotent.

    File I/O never runs on a live event loop: when :meth:`emit` is
    called with a loop running (the serving path), the serialized
    lines are queued and written later by :meth:`aflush` — which hands
    the actual ``write`` to ``asyncio.to_thread`` — or by
    :meth:`close`.  With no loop (the simulator, tests, offline
    analysis) writes happen inline and the file is immediately
    readable.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        sample_every: int = 1,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if sample_every < 1:
            raise ObservabilityError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.path = Path(path) if path is not None else None
        self.sample_every = sample_every
        self._handle: Optional[IO[str]] = None
        self._pending: List[str] = []
        self._built = 0
        self._spans_written: Optional[Counter] = None
        self._spans_sampled_out: Optional[Counter] = None
        if registry is not None:
            self._spans_written = registry.counter(
                "repro_obs_spans_written_total",
                "Slot spans serialized to the trace sink",
            )
            self._spans_sampled_out = registry.counter(
                "repro_obs_spans_sampled_out_total",
                "Slot spans built but not written (sampling)",
            )

    @property
    def enabled(self) -> bool:
        return True

    def slot(self, slot: int, start_s: float) -> SlotSpanBuilder:
        """Start the span tree for one slot."""
        return SlotSpanBuilder(slot, start_s)

    def emit(self, span: Span) -> bool:
        """Offer a finished slot span to the sink; True when accepted.

        On an event-loop thread the serialized line is queued (see
        the class docstring); otherwise it is written inline.
        """
        index = self._built
        self._built += 1
        if self.path is None or index % self.sample_every != 0:
            if self._spans_sampled_out is not None:
                self._spans_sampled_out.inc()
            return False
        line = json.dumps(span.to_dict()) + "\n"
        if _in_event_loop():
            self._pending.append(line)
        else:
            self._write_lines([line])
        if self._spans_written is not None:
            self._spans_written.inc()
        return True

    def _write_lines(self, lines: List[str]) -> None:
        """Blocking append to the sink; lazily opens it with a header."""
        if self.path is None or not lines:
            return
        if self._handle is None:
            self._handle = open(self.path, "w", encoding="utf-8")
            self._handle.write(json.dumps(stream_header()) + "\n")
        for line in lines:
            self._handle.write(line)

    def flush(self) -> None:
        """Drain queued spans to the sink (blocking; sync contexts)."""
        pending, self._pending = self._pending, []
        self._write_lines(pending)

    async def aflush(self) -> None:
        """Drain queued spans without blocking the event loop."""
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        await asyncio.to_thread(self._write_lines, pending)

    def close(self) -> None:
        self.flush()
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class NullTracer:
    """Tracing disabled: builders are still handed out (the flight
    recorder path needs none), but nothing is retained or written."""

    @property
    def enabled(self) -> bool:
        return False

    def slot(self, slot: int, start_s: float) -> SlotSpanBuilder:
        return SlotSpanBuilder(slot, start_s)

    def emit(self, span: Span) -> bool:
        return False

    def flush(self) -> None:
        return None

    async def aflush(self) -> None:
        return None

    def close(self) -> None:
        return None


AnyTracer = Union[Tracer, NullTracer]


def stage_latency_table(spans: List[Span]) -> Dict[str, List[float]]:
    """Per-stage duration samples (seconds) across a span stream."""
    stages: Dict[str, List[float]] = {}
    for span in spans:
        stages.setdefault("slot", []).append(span.duration_s)
        for child in span.children:
            if child.name != "user":
                stages.setdefault(child.name, []).append(child.duration_s)
    return stages
