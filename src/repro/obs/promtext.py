"""Prometheus text-exposition parsing and validation.

The CI loopback smoke job scrapes the live ``/metrics`` page mid-run
and must fail on malformed output, so the validator here is strict
about the parts scrapers actually depend on: ``HELP``/``TYPE``
comment shape, sample-line grammar, samples only for declared
families (modulo the ``_bucket``/``_sum``/``_count`` suffixes of
histograms), numeric values, and cumulative ``le`` buckets that never
decrease and end at ``+Inf``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ObservabilityError

_METRIC_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


@dataclass(frozen=True)
class ExpositionSummary:
    """What a valid exposition page contained."""

    families: Dict[str, str]
    samples: int

    def family_names(self) -> List[str]:
        return sorted(self.families)


def _parse_value(token: str, line_no: int) -> float:
    if token in ("+Inf", "-Inf", "NaN"):
        return {"+Inf": float("inf"), "-Inf": float("-inf")}.get(
            token, float("nan")
        )
    try:
        return float(token)
    except ValueError:
        raise ObservabilityError(
            f"line {line_no}: non-numeric sample value {token!r}"
        ) from None


def _parse_labels(raw: str, line_no: int) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    if not raw.strip():
        return labels
    depth_safe_parts: List[str] = []
    current: List[str] = []
    in_string = False
    escaped = False
    for char in raw:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_string = not in_string
            current.append(char)
            continue
        if char == "," and not in_string:
            depth_safe_parts.append("".join(current))
            current = []
            continue
        current.append(char)
    if "".join(current).strip():
        depth_safe_parts.append("".join(current))
    for part in depth_safe_parts:
        match = _LABEL_PAIR_RE.match(part.strip())
        if match is None:
            raise ObservabilityError(
                f"line {line_no}: malformed label pair {part.strip()!r}"
            )
        name = match.group("name")
        if name in labels:
            raise ObservabilityError(
                f"line {line_no}: duplicate label {name!r}"
            )
        labels[name] = match.group("value")
    return labels


def _base_family(name: str, families: Dict[str, str]) -> str:
    """Map a sample name to its declared family (histogram suffixes)."""
    if name in families:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if families.get(base) in ("histogram", "summary"):
                return base
    raise ObservabilityError(f"sample {name!r} has no TYPE declaration")


def validate_exposition(text: str) -> ExpositionSummary:
    """Validate a Prometheus text page; raise on any malformation.

    Returns an :class:`ExpositionSummary` with the declared families
    and the number of sample lines.
    """
    families: Dict[str, str] = {}
    helped: Dict[str, bool] = {}
    samples = 0
    # (family, label-values-minus-le) -> last cumulative bucket value.
    bucket_state: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            if not parts or not parts[0]:
                raise ObservabilityError(f"line {line_no}: malformed HELP")
            helped[parts[0]] = True
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split()
            if len(parts) != 2 or parts[1] not in _TYPES:
                raise ObservabilityError(f"line {line_no}: malformed TYPE")
            if parts[0] in families:
                raise ObservabilityError(
                    f"line {line_no}: duplicate TYPE for {parts[0]!r}"
                )
            families[parts[0]] = parts[1]
            continue
        if line.startswith("#"):
            # Other comments are legal and ignored.
            continue
        match = _METRIC_LINE_RE.match(line)
        if match is None:
            raise ObservabilityError(
                f"line {line_no}: malformed sample line {line!r}"
            )
        name = match.group("name")
        labels = _parse_labels(match.group("labels") or "", line_no)
        value = _parse_value(match.group("value"), line_no)
        family = _base_family(name, families)
        kind = families[family]
        if kind == "counter" and value < 0:
            raise ObservabilityError(
                f"line {line_no}: counter {name!r} is negative"
            )
        if name.endswith("_bucket") and kind == "histogram":
            if "le" not in labels:
                raise ObservabilityError(
                    f"line {line_no}: histogram bucket without le label"
                )
            series = (
                family,
                tuple(sorted(
                    (k, v) for k, v in labels.items() if k != "le"
                )),
            )
            previous = bucket_state.get(series)
            if previous is not None and value < previous:
                raise ObservabilityError(
                    f"line {line_no}: bucket counts decrease for {family!r}"
                )
            bucket_state[series] = value
        samples += 1
    _check_inf_buckets(text, families)
    return ExpositionSummary(families=families, samples=samples)


def _check_inf_buckets(text: str, families: Dict[str, str]) -> None:
    """Every histogram with buckets must close them with le="+Inf"."""
    seen_buckets: Dict[str, bool] = {}
    seen_inf: Dict[str, bool] = {}
    for line in text.splitlines():
        match = _METRIC_LINE_RE.match(line.strip())
        if match is None:
            continue
        name = match.group("name")
        if not name.endswith("_bucket"):
            continue
        base = name[: -len("_bucket")]
        if families.get(base) != "histogram":
            continue
        seen_buckets[base] = True
        if 'le="+Inf"' in (match.group("labels") or ""):
            seen_inf[base] = True
    for base in seen_buckets:
        if base not in seen_inf:
            raise ObservabilityError(
                f"histogram {base!r} has buckets but no +Inf bucket"
            )
