"""Declarative SLOs evaluated as windowed burn rates over the registry.

The paper's QoE promises become three service-level objectives:

* ``deadline_hit_rate`` — the fraction of slots whose pipeline beat
  the 16.7 ms deadline (Section III ties QoE to this directly);
* ``quality_floor`` — constraint (7): the fraction of user-slots *not*
  forced to the degraded minimum level;
* ``migration_downtime`` — the fraction of user-slots *not* spent
  detached awaiting resume or migration.

Each objective has a target good-fraction; its *error budget* is
``1 - target``.  The engine keeps a sliding window of cumulative
counter samples (indexed by slot number — no clocks, so evaluation is
deterministic and RL007-clean) and reports the *burn rate*: the error
fraction inside the window divided by the budget.  Burn 1.0 means the
window exactly spends its budget; above ``burn_threshold`` the
objective is breaching and the flight recorder captures the ring.

Everything here only *reads* counters and writes its own gauges —
planning never sees it, so an enabled SLO engine stays bit-inert.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Dict, List, Mapping, Tuple

from repro.errors import ObservabilityError
from repro.obs.registry import Counter, MetricsRegistry

#: Objective kinds the engine knows how to measure.
SLO_KINDS = ("deadline_hit_rate", "quality_floor", "migration_downtime")

#: Gauge family: current burn rate per objective.
SLO_BURN_METRIC = "repro_slo_burn_rate"

#: Counter family: breach transitions per objective (edge-triggered).
SLO_BREACHES_METRIC = "repro_slo_breaches_total"


@dataclass(frozen=True)
class SloObjective:
    """One objective: a target good-fraction over a sliding window."""

    name: str
    kind: str
    target: float
    window_slots: int = 120
    burn_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ObservabilityError(
                f"unknown SLO kind {self.kind!r}; expected one of {SLO_KINDS}"
            )
        if not 0.0 <= self.target < 1.0:
            raise ObservabilityError(
                f"SLO target must be in [0, 1), got {self.target}"
            )
        if self.window_slots < 1:
            raise ObservabilityError(
                f"SLO window must be >= 1 slot, got {self.window_slots}"
            )
        if self.burn_threshold <= 0:
            raise ObservabilityError(
                f"SLO burn threshold must be > 0, got {self.burn_threshold}"
            )

    @property
    def budget(self) -> float:
        """The error budget: allowed bad fraction."""
        return 1.0 - self.target

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "window_slots": self.window_slots,
            "burn_threshold": self.burn_threshold,
        }


@dataclass(frozen=True)
class SloConfig:
    """The declarative SLO set (JSON schema: ``{"objectives": [...]}``)."""

    objectives: Tuple[SloObjective, ...]

    def __post_init__(self) -> None:
        names = [objective.name for objective in self.objectives]
        if len(set(names)) != len(names):
            raise ObservabilityError(f"duplicate SLO names in {names}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "objectives": [obj.to_dict() for obj in self.objectives]
        }

    @classmethod
    def from_dict(cls, raw: object) -> "SloConfig":
        if not isinstance(raw, dict):
            raise ObservabilityError("SLO config must be a JSON object")
        objectives_raw = raw.get("objectives")
        if not isinstance(objectives_raw, list) or not objectives_raw:
            raise ObservabilityError(
                "SLO config needs a non-empty 'objectives' list"
            )
        objectives: List[SloObjective] = []
        for entry in objectives_raw:
            if not isinstance(entry, dict):
                raise ObservabilityError("each SLO objective must be an object")
            try:
                objectives.append(
                    SloObjective(
                        name=str(entry["name"]),
                        kind=str(entry["kind"]),
                        target=float(entry["target"]),
                        window_slots=int(entry.get("window_slots", 120)),
                        burn_threshold=float(entry.get("burn_threshold", 1.0)),
                    )
                )
            except KeyError as exc:
                raise ObservabilityError(
                    f"SLO objective missing field {exc}"
                ) from exc
        return cls(objectives=tuple(objectives))


def default_slo_config() -> SloConfig:
    """The paper-derived default: deadline, quality floor, downtime."""
    return SloConfig(
        objectives=(
            SloObjective("slot_deadline", "deadline_hit_rate", target=0.99),
            SloObjective("quality_floor", "quality_floor", target=0.95),
            SloObjective(
                "migration_downtime", "migration_downtime", target=0.98
            ),
        )
    )


def load_slo_config(path: Path) -> SloConfig:
    """Parse an SLO config JSON file."""
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ObservabilityError(f"cannot read SLO config {path}: {exc}") from exc
    return SloConfig.from_dict(raw)


# ----------------------------------------------------------------------
# Counter sampling
# ----------------------------------------------------------------------
#: Counter families the engine samples, in sample-tuple order.
_SAMPLE_METRICS = (
    "repro_serve_slots_total",
    "repro_serve_deadline_hits_total",
    "repro_serve_degraded_user_slots_total",
    "repro_serve_detached_user_slots_total",
)


@dataclass(frozen=True)
class SloSample:
    """Cumulative counter values at one evaluation point."""

    slots: float = 0.0
    deadline_hits: float = 0.0
    degraded_user_slots: float = 0.0
    detached_user_slots: float = 0.0


def sample_registry(registry: MetricsRegistry) -> SloSample:
    """Read the SLO input counters (missing families read as 0).

    Shard-labelled children (a federated merge) are summed, so the
    same sampler serves both a single shard and the cluster view.
    """
    totals = {name: 0.0 for name in _SAMPLE_METRICS}
    for family in registry.families():
        if family.name not in totals:
            continue
        for _values, child in family.children():
            if isinstance(child, Counter):
                totals[family.name] += child.value
    return SloSample(
        slots=totals[_SAMPLE_METRICS[0]],
        deadline_hits=totals[_SAMPLE_METRICS[1]],
        degraded_user_slots=totals[_SAMPLE_METRICS[2]],
        detached_user_slots=totals[_SAMPLE_METRICS[3]],
    )


def sample_snapshot(snapshot: Mapping[str, object]) -> SloSample:
    """:func:`sample_registry` over a ``/snapshot`` JSON document."""
    totals = {name: 0.0 for name in _SAMPLE_METRICS}
    families = snapshot.get("families")
    if not isinstance(families, list):
        raise ObservabilityError("snapshot has no 'families' list")
    for family in families:
        if not isinstance(family, dict):
            continue
        name = family.get("name")
        if name not in totals:
            continue
        metrics = family.get("metrics", [])
        if not isinstance(metrics, list):
            continue
        for metric in metrics:
            if isinstance(metric, dict) and isinstance(
                metric.get("value"), (int, float)
            ):
                totals[str(name)] += float(metric["value"])
    return SloSample(
        slots=totals[_SAMPLE_METRICS[0]],
        deadline_hits=totals[_SAMPLE_METRICS[1]],
        degraded_user_slots=totals[_SAMPLE_METRICS[2]],
        detached_user_slots=totals[_SAMPLE_METRICS[3]],
    )


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SloStatus:
    """One objective's state after an evaluation."""

    name: str
    kind: str
    target: float
    window_slots: int
    burn_threshold: float
    error_ratio: float
    burn: float
    breached: bool
    newly_breached: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "window_slots": self.window_slots,
            "burn_threshold": self.burn_threshold,
            "error_ratio": self.error_ratio,
            "burn": self.burn,
            "breached": self.breached,
        }


def _error_fraction(
    objective: SloObjective, delta: SloSample, seats: int
) -> float:
    """Bad fraction of the window for one objective (0 when no data)."""
    if objective.kind == "deadline_hit_rate":
        total = delta.slots
        bad = delta.slots - delta.deadline_hits
    elif objective.kind == "quality_floor":
        total = delta.slots * max(seats, 1)
        bad = delta.degraded_user_slots
    else:  # migration_downtime
        total = delta.slots * max(seats, 1)
        bad = delta.detached_user_slots
    if total <= 0:
        return 0.0
    return min(max(bad / total, 0.0), 1.0)


def _status(
    objective: SloObjective,
    delta: SloSample,
    seats: int,
    previously_breached: bool,
) -> SloStatus:
    error_ratio = _error_fraction(objective, delta, seats)
    burn = error_ratio / objective.budget if objective.budget > 0 else 0.0
    breached = burn > objective.burn_threshold
    return SloStatus(
        name=objective.name,
        kind=objective.kind,
        target=objective.target,
        window_slots=objective.window_slots,
        burn_threshold=objective.burn_threshold,
        error_ratio=error_ratio,
        burn=burn,
        breached=breached,
        newly_breached=breached and not previously_breached,
    )


def evaluate_sample(
    config: SloConfig, sample: SloSample, seats: int = 1
) -> List[SloStatus]:
    """One-shot evaluation of cumulative counters (whole-run window).

    Used by ``repro obs slo`` against a saved or scraped snapshot,
    where no sliding window exists — the run *is* the window.
    """
    return [
        _status(objective, sample, seats, previously_breached=False)
        for objective in config.objectives
    ]


class SloEngine:
    """Sliding-window burn-rate evaluator bound to one registry.

    ``evaluate(slot)`` is called once per executed slot by the slot
    loop; it samples the registry, updates the per-objective burn
    gauges, counts breach *transitions*, and returns the statuses so
    the caller can fire the flight recorder on ``newly_breached``.
    """

    def __init__(
        self,
        config: SloConfig,
        registry: MetricsRegistry,
        seats: int = 1,
    ) -> None:
        self.config = config
        self.registry = registry
        self.seats = max(int(seats), 1)
        self._burn = registry.gauge_family(
            SLO_BURN_METRIC,
            "Current error-budget burn rate per SLO objective",
            ("objective",),
        )
        self._breaches = registry.counter_family(
            SLO_BREACHES_METRIC,
            "Burn-rate breach transitions per SLO objective",
            ("objective",),
        )
        self._max_window = max(
            objective.window_slots for objective in config.objectives
        )
        self._history: Deque[Tuple[int, SloSample]] = deque()
        self._breached: Dict[str, bool] = {
            objective.name: False for objective in config.objectives
        }
        for objective in config.objectives:
            self._burn.gauge_child(objective=objective.name).set(0.0)

    def _window_base(self, slot: int, window_slots: int) -> SloSample:
        """Newest sample at or before the window's left edge.

        No such sample (the run is younger than the window) means the
        window reaches back to slot 0: the base is all-zeros.
        """
        base = SloSample()
        for sample_slot, sample in self._history:
            if sample_slot <= slot - window_slots:
                base = sample
            else:
                break
        return base

    @staticmethod
    def _delta(current: SloSample, base: SloSample) -> SloSample:
        return SloSample(
            slots=current.slots - base.slots,
            deadline_hits=current.deadline_hits - base.deadline_hits,
            degraded_user_slots=(
                current.degraded_user_slots - base.degraded_user_slots
            ),
            detached_user_slots=(
                current.detached_user_slots - base.detached_user_slots
            ),
        )

    def evaluate(self, slot: int) -> List[SloStatus]:
        """Evaluate every objective at (0-based) executed-slot count."""
        current = sample_registry(self.registry)
        statuses: List[SloStatus] = []
        for objective in self.config.objectives:
            base = self._window_base(slot, objective.window_slots)
            status = _status(
                objective,
                self._delta(current, base),
                self.seats,
                self._breached[objective.name],
            )
            self._breached[objective.name] = status.breached
            self._burn.gauge_child(objective=objective.name).set(status.burn)
            if status.newly_breached:
                self._breaches.counter_child(objective=objective.name).inc()
            statuses.append(status)
        self._history.append((slot, current))
        while (
            len(self._history) > 1
            and self._history[1][0] <= slot - self._max_window
        ):
            self._history.popleft()
        return statuses

    def status(self) -> Dict[str, object]:
        """Point-in-time rollup for ``/healthz``."""
        current = sample_registry(self.registry)
        last_slot = self._history[-1][0] if self._history else 0
        statuses = [
            _status(
                objective,
                self._delta(
                    current,
                    self._window_base(last_slot, objective.window_slots),
                ),
                self.seats,
                self._breached[objective.name],
            )
            for objective in self.config.objectives
        ]
        return {
            "objectives": [status.to_dict() for status in statuses],
            "breaching": [
                status.name for status in statuses if status.breached
            ],
        }


__all__ = [
    "SLO_KINDS",
    "SLO_BURN_METRIC",
    "SLO_BREACHES_METRIC",
    "SloObjective",
    "SloConfig",
    "SloSample",
    "SloStatus",
    "SloEngine",
    "default_slo_config",
    "load_slo_config",
    "evaluate_sample",
    "sample_registry",
    "sample_snapshot",
]
