"""Self-identifying scrape output: the ``repro_build_info`` gauge.

Prometheus convention for build metadata is a constant ``1`` gauge
whose labels carry the identity — joinable against any other series
and free at scrape time.  Every registry in the system (each serve
shard, the cluster coordinator, the bench harness) registers one so a
saved exposition or bench JSON says exactly which code and config
produced it.
"""

from __future__ import annotations

import hashlib
import platform

from repro.obs.registry import Gauge, MetricsRegistry

#: Family name of the build-identity gauge.
BUILD_INFO_METRIC = "repro_build_info"

#: Label names, in declaration order.
BUILD_INFO_LABELS = ("version", "python", "config_hash", "shard")


def _version() -> str:
    """The package version, resolved lazily.

    ``repro/__init__`` defines ``__version__`` *after* importing its
    subpackages, so a module-level import here would be circular.
    """
    import repro

    return str(getattr(repro, "__version__", "unknown"))


def config_fingerprint(config: object) -> str:
    """A short stable hash of a config's ``repr`` (frozen dataclasses).

    Twelve hex characters are plenty to tell two configs apart in a
    dashboard while keeping label cardinality tiny.
    """
    digest = hashlib.sha256(repr(config).encode("utf-8")).hexdigest()
    return digest[:12]


def register_build_info(
    registry: MetricsRegistry,
    *,
    shard: int = -1,
    config_hash: str = "",
) -> Gauge:
    """Register (idempotently) the build-info gauge and set it to 1.

    ``shard`` is the shard index for sharded servers, ``-1`` for
    standalone processes and the coordinator (mirroring
    ``ServeConfig.shard_index``).
    """
    family = registry.gauge_family(
        BUILD_INFO_METRIC,
        "Constant 1; labels identify the build, runtime, and config.",
        BUILD_INFO_LABELS,
    )
    gauge = family.gauge_child(
        version=_version(),
        python=platform.python_version(),
        config_hash=config_hash,
        shard=str(shard),
    )
    gauge.set(1.0)
    return gauge
