"""Structured spans: the unit the tracer, flight recorder, and CLI share.

A *slot span* is the full accounting of one transmission slot: the
slot pipeline as the root, one child span per pipeline stage, and —
under the allocation stage — one grandchild per user with the
planner's decision for that seat.  Spans carry monotonic-clock
offsets, never wall-clock timestamps, so two spans from one run are
comparable and RL007 stays satisfied.

The JSONL wire format is one header line (``kind`` and
``schema_version``) followed by one JSON object per slot span, which
is what ``repro obs tail | summarize | diff`` and the flight-recorder
dumps all read and write.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, IO, Iterator, List, Tuple, Union

from repro.errors import ObservabilityError

#: Version of the span JSONL schema (bump on incompatible change).
SPAN_SCHEMA_VERSION = 1

#: ``kind`` value of the header line of a span JSONL file.
SPAN_STREAM_KIND = "repro.obs.spans"

AttrValue = Union[str, int, float, bool]


@dataclass
class Span:
    """One timed node in a slot's span tree."""

    name: str
    start_s: float
    duration_s: float
    attrs: Dict[str, AttrValue] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    def child(
        self, name: str, start_s: float, duration_s: float, **attrs: AttrValue
    ) -> "Span":
        """Append and return a child span."""
        span = Span(name=name, start_s=start_s, duration_s=duration_s,
                    attrs=dict(attrs))
        self.children.append(span)
        return span

    def find(self, name: str) -> List["Span"]:
        """All direct children with a given name."""
        return [span for span in self.children if span.name == name]

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    @classmethod
    def from_dict(cls, raw: object) -> "Span":
        if not isinstance(raw, dict):
            raise ObservabilityError(f"span must be an object, got {type(raw).__name__}")
        try:
            name = raw["name"]
            start_s = raw["start_s"]
            duration_s = raw["duration_s"]
        except KeyError as exc:
            raise ObservabilityError(f"span missing field {exc}") from exc
        if not isinstance(name, str):
            raise ObservabilityError("span name must be a string")
        if not isinstance(start_s, (int, float)) or not isinstance(
            duration_s, (int, float)
        ):
            raise ObservabilityError(f"span {name!r} timing must be numeric")
        attrs_raw = raw.get("attrs", {})
        if not isinstance(attrs_raw, dict):
            raise ObservabilityError(f"span {name!r} attrs must be an object")
        children_raw = raw.get("children", [])
        if not isinstance(children_raw, list):
            raise ObservabilityError(f"span {name!r} children must be a list")
        return cls(
            name=name,
            start_s=float(start_s),
            duration_s=float(duration_s),
            attrs={str(key): value for key, value in attrs_raw.items()},
            children=[cls.from_dict(child) for child in children_raw],
        )


def stream_header(kind: str = SPAN_STREAM_KIND) -> Dict[str, object]:
    """The JSONL header object for a span stream."""
    return {"kind": kind, "schema_version": SPAN_SCHEMA_VERSION}


def write_span_stream(handle: IO[str], spans: List[Span], kind: str =
                      SPAN_STREAM_KIND) -> None:
    """Write a complete span stream (header + one span per line)."""
    handle.write(json.dumps(stream_header(kind)) + "\n")
    for span in spans:
        handle.write(json.dumps(span.to_dict()) + "\n")


def read_span_stream(handle: IO[str]) -> Tuple[Dict[str, object], List[Span]]:
    """Parse a span JSONL stream, validating the header.

    Returns ``(header, spans)``; raises
    :class:`~repro.errors.ObservabilityError` on a missing or
    incompatible header and on any malformed line.
    """
    header_line = handle.readline()
    if not header_line.strip():
        raise ObservabilityError("span stream is empty (no header line)")
    header = _parse_line(header_line, 1)
    kind = header.get("kind")
    if not isinstance(kind, str) or not kind.startswith("repro.obs."):
        raise ObservabilityError(f"not a span stream (kind={kind!r})")
    version = header.get("schema_version")
    if version != SPAN_SCHEMA_VERSION:
        raise ObservabilityError(
            f"unsupported span schema_version {version!r} "
            f"(expected {SPAN_SCHEMA_VERSION})"
        )
    spans: List[Span] = []
    for number, line in enumerate(handle, start=2):
        if not line.strip():
            continue
        spans.append(Span.from_dict(_parse_line(line, number)))
    return header, spans


def read_span_stream_tolerant(
    handle: IO[str],
) -> Tuple[Dict[str, object], List[Span], int]:
    """:func:`read_span_stream`, forgiving a truncated *final* line.

    A crash-time flight dump (or a tracer killed mid-write) leaves at
    most one partial line, and it is always the last one.  This reader
    skips that line and reports it in the third return value so the
    CLI can warn and exit with a distinct code; corruption anywhere
    *before* the final line still raises — that is damage, not
    truncation.
    """
    header_line = handle.readline()
    if not header_line.strip():
        raise ObservabilityError("span stream is empty (no header line)")
    header = _parse_line(header_line, 1)
    kind = header.get("kind")
    if not isinstance(kind, str) or not kind.startswith("repro.obs."):
        raise ObservabilityError(f"not a span stream (kind={kind!r})")
    version = header.get("schema_version")
    if version != SPAN_SCHEMA_VERSION:
        raise ObservabilityError(
            f"unsupported span schema_version {version!r} "
            f"(expected {SPAN_SCHEMA_VERSION})"
        )
    numbered = [
        (number, line)
        for number, line in enumerate(handle, start=2)
        if line.strip()
    ]
    spans: List[Span] = []
    skipped = 0
    for index, (number, line) in enumerate(numbered):
        try:
            spans.append(Span.from_dict(_parse_line(line, number)))
        except ObservabilityError:
            if index != len(numbered) - 1:
                raise
            skipped = 1
    return header, spans, skipped


def _parse_line(line: str, number: int) -> Dict[str, object]:
    try:
        raw = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ObservabilityError(f"line {number}: invalid JSON: {exc}") from exc
    if not isinstance(raw, dict):
        raise ObservabilityError(f"line {number}: expected an object")
    return raw
