"""Cross-shard trace stitching: per-session timelines from N streams.

Every shard of a cluster writes its *own* span stream (see
:func:`repro.shard.config.derive_trace_path`), and the coordinator
writes a third stream holding one ``migration`` span per handoff.
None of those files alone answers the question a migration
post-mortem starts with — *what did this one session experience?* —
because the session's per-slot ``user`` spans are scattered across
the shard files under its stable trace identity.

The stitcher inverts that layout.  It walks every stream, groups the
``user`` spans by their ``trace`` attribute (minted once at admission,
carried — never re-minted — through resume and handoff), folds each
shard's samples into contiguous :class:`ShardSegment` windows, and
interleaves the coordinator's ``migration`` spans as explicit bridges
between the source and target segments.  The result is one
:class:`SessionTimeline` per session, ordered by slot, in which a
migrated session reads as: segment on shard A, ``migration`` bridge,
segment on shard B.

Slot numbers are comparable across shards only in lockstep clusters
(shared readiness gate, one slot per barrier round); that is the mode
migration chaos runs use, and the mode this module is specified for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.obs.spans import Span

#: ``name`` of the coordinator spans that bridge two shard segments.
MIGRATION_SPAN_NAME = "migration"


@dataclass(frozen=True)
class UserSlotSample:
    """One seat-slot observation of a session on one shard."""

    shard: int
    slot: int
    seat: int
    level: int


@dataclass(frozen=True)
class MigrationEvent:
    """One handoff, as recorded by the coordinator's trace stream."""

    slot: int
    source_shard: int
    target_shard: int
    reason: str
    seq: int
    client: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "migration",
            "slot": self.slot,
            "source_shard": self.source_shard,
            "target_shard": self.target_shard,
            "reason": self.reason,
            "seq": self.seq,
            "client": self.client,
        }


@dataclass(frozen=True)
class ShardSegment:
    """A session's contiguous residence window on one shard."""

    shard: int
    first_slot: int
    last_slot: int
    user_slots: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": "segment",
            "shard": self.shard,
            "first_slot": self.first_slot,
            "last_slot": self.last_slot,
            "user_slots": self.user_slots,
        }


@dataclass(frozen=True)
class SessionTimeline:
    """One session's cross-shard story, ordered by slot."""

    trace: str
    client: str
    segments: Tuple[ShardSegment, ...]
    migrations: Tuple[MigrationEvent, ...]

    @property
    def shards(self) -> Tuple[int, ...]:
        """Shards the session lived on, in residence order."""
        return tuple(segment.shard for segment in self.segments)

    def events(self) -> List[Dict[str, object]]:
        """Segments and migration bridges interleaved by slot.

        A migration sorts *after* the source segment it closes and
        *before* the target segment it opens: segments order by
        ``first_slot`` and the bridge carries the handoff slot, which
        is ≥ the source's first slot and ≤ the target's.
        """
        keyed: List[Tuple[Tuple[int, int, int], Dict[str, object]]] = []
        for segment in self.segments:
            keyed.append(
                ((segment.first_slot, 0, segment.shard), segment.to_dict())
            )
        for migration in self.migrations:
            # Bridges tie-break *after* the segment opening at the
            # same slot on the source, via the middle key component.
            keyed.append(
                ((migration.slot, 1, migration.seq), migration.to_dict())
            )
        keyed.sort(key=lambda item: item[0])
        return [event for _, event in keyed]

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace": self.trace,
            "client": self.client,
            "shards": list(self.shards),
            "events": self.events(),
        }


def _as_int(value: object, default: int = -1) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        return default
    return value


def collect_user_samples(spans: Sequence[Span]) -> List[Tuple[str, UserSlotSample]]:
    """``(trace, sample)`` pairs from one shard's slot-span stream.

    ``user`` spans without a trace identity (pre-v2 streams, plain
    single-server runs before admission) are skipped — they cannot be
    attributed to a session.
    """
    samples: List[Tuple[str, UserSlotSample]] = []
    for root in spans:
        if root.name != "slot":
            continue
        slot = _as_int(root.attrs.get("slot"))
        shard = _as_int(root.attrs.get("shard"))
        for span in root.walk():
            if span.name != "user":
                continue
            trace = span.attrs.get("trace")
            if not isinstance(trace, str) or not trace:
                continue
            samples.append(
                (
                    trace,
                    UserSlotSample(
                        shard=shard,
                        slot=slot,
                        seat=_as_int(span.attrs.get("seat")),
                        level=_as_int(span.attrs.get("level"), 0),
                    ),
                )
            )
    return samples


def collect_migrations(spans: Sequence[Span]) -> List[Tuple[str, MigrationEvent]]:
    """``(trace, migration)`` pairs from the coordinator's stream."""
    events: List[Tuple[str, MigrationEvent]] = []
    for span in spans:
        if span.name != MIGRATION_SPAN_NAME:
            continue
        trace = span.attrs.get("trace")
        if not isinstance(trace, str) or not trace:
            continue
        client = span.attrs.get("client")
        events.append(
            (
                trace,
                MigrationEvent(
                    slot=_as_int(span.attrs.get("slot")),
                    source_shard=_as_int(span.attrs.get("source_shard")),
                    target_shard=_as_int(span.attrs.get("target_shard")),
                    reason=str(span.attrs.get("reason", "")),
                    seq=_as_int(span.attrs.get("seq"), 0),
                    client=client if isinstance(client, str) else "",
                ),
            )
        )
    return events


def _segments(
    samples: List[UserSlotSample], migrations: List[MigrationEvent]
) -> Tuple[ShardSegment, ...]:
    """Fold one session's samples into ordered residence windows.

    Samples group per shard and order by first slot; when two shards'
    windows open at the same slot the migration chain breaks the tie
    (the handoff source precedes its target).
    """
    by_shard: Dict[int, List[UserSlotSample]] = {}
    for sample in samples:
        by_shard.setdefault(sample.shard, []).append(sample)

    # Chain order: source before target, in handoff sequence.
    chain_rank: Dict[int, int] = {}
    for migration in sorted(migrations, key=lambda m: m.seq):
        for shard in (migration.source_shard, migration.target_shard):
            if shard not in chain_rank:
                chain_rank[shard] = len(chain_rank)

    segments = [
        ShardSegment(
            shard=shard,
            first_slot=min(s.slot for s in shard_samples),
            last_slot=max(s.slot for s in shard_samples),
            user_slots=len(shard_samples),
        )
        for shard, shard_samples in by_shard.items()
    ]
    segments.sort(
        key=lambda seg: (
            seg.first_slot,
            chain_rank.get(seg.shard, len(chain_rank)),
            seg.shard,
        )
    )
    return tuple(segments)


def stitch_spans(
    streams: Sequence[Sequence[Span]],
) -> List[SessionTimeline]:
    """Join N span streams into per-session timelines.

    ``streams`` holds every file's parsed spans — shard streams and
    the coordinator stream in any order; the span *names* say which
    is which.  Timelines come back sorted by trace identity so the
    output is stable across input orderings.
    """
    samples: Dict[str, List[UserSlotSample]] = {}
    migrations: Dict[str, List[MigrationEvent]] = {}
    clients: Dict[str, str] = {}
    for stream in streams:
        for trace, sample in collect_user_samples(stream):
            samples.setdefault(trace, []).append(sample)
        for trace, event in collect_migrations(stream):
            migrations.setdefault(trace, []).append(event)
            if event.client and trace not in clients:
                clients[trace] = event.client

    timelines: List[SessionTimeline] = []
    for trace in sorted(set(samples) | set(migrations)):
        trace_migrations = sorted(
            migrations.get(trace, []), key=lambda m: m.seq
        )
        timelines.append(
            SessionTimeline(
                trace=trace,
                client=clients.get(trace, ""),
                segments=_segments(samples.get(trace, []), trace_migrations),
                migrations=tuple(trace_migrations),
            )
        )
    return timelines


def format_timeline(timeline: SessionTimeline) -> List[str]:
    """Human-readable lines for ``repro obs stitch`` text output."""
    label = timeline.client or "<unattributed>"
    lines = [f"session {label} trace={timeline.trace}"]
    for event in timeline.events():
        if event["kind"] == "segment":
            lines.append(
                f"  shard {event['shard']}: slots "
                f"{event['first_slot']}..{event['last_slot']} "
                f"({event['user_slots']} user-slot(s))"
            )
        else:
            lines.append(
                f"  migration @slot {event['slot']}: shard "
                f"{event['source_shard']} -> shard {event['target_shard']} "
                f"({event['reason']})"
            )
    return lines
