"""Central metrics registry: counters, gauges, bounded-bucket histograms.

One :class:`MetricsRegistry` holds every instrument a process exposes
— the serving slot loop, the admission policy, the tracer, the flight
recorder, and the in-process experiment all register here — and
renders the whole set either as Prometheus text exposition (for the
``/metrics`` endpoint) or as one JSON snapshot (for ``/snapshot`` and
offline diffing).  Zero dependencies, bounded memory: histograms keep
a fixed bucket vector plus exact count/sum/min/max, never the samples
themselves.

Instruments are cheap enough for the 1/60 s slot path: a counter
``inc`` is one float add, a histogram ``observe`` one bisect into a
static bucket list.
"""

from __future__ import annotations

import bisect
import json
import math
import re
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ObservabilityError
from repro.units import SLOT_DURATION_S

#: Valid Prometheus metric and label names.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds): log-ish spacing from 50 us to
#: 10 s, dense around the 1/60 s slot deadline.
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    SLOT_DURATION_S, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelValues = Tuple[str, ...]


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ObservabilityError(f"invalid metric name {name!r}")
    return name


def _check_labels(label_names: Sequence[str]) -> Tuple[str, ...]:
    for label in label_names:
        if not _LABEL_RE.match(label) or label.startswith("__"):
            raise ObservabilityError(f"invalid label name {label!r}")
    if len(set(label_names)) != len(label_names):
        raise ObservabilityError(f"duplicate label names in {label_names!r}")
    return tuple(label_names)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_label_set(
    label_names: Sequence[str], values: Sequence[str], extra: str = ""
) -> str:
    """Render ``{a="x",b="y"}`` (empty string for no labels)."""
    parts = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(label_names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """Monotonically increasing count (float-valued, like Prometheus)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter increments must be >= 0, got {amount}"
            )
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    @property
    def count(self) -> int:
        """The value as an int (for counters that only ever ``inc(1)``)."""
        return int(self._value)


class Gauge:
    """A value that can go up and down (queue depths, last-seen slots)."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class BucketHistogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    Memory is ``O(len(buckets))`` regardless of how many samples are
    observed — the fix for the unbounded store-and-sort recorder the
    serving layer started with.  Quantiles are answered by linear
    interpolation inside the owning bucket, clamped to the observed
    min/max so small-sample answers stay sane; the implicit ``+Inf``
    bucket uses the observed max as its upper edge.
    """

    __slots__ = ("_bounds", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(
        self, upper_bounds_s: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S
    ) -> None:
        bounds = [float(b) for b in upper_bounds_s]
        if not bounds:
            raise ObservabilityError("histogram needs at least one bucket")
        if sorted(bounds) != bounds or len(set(bounds)) != len(bounds):
            raise ObservabilityError(
                f"bucket bounds must be strictly increasing, got {bounds}"
            )
        if any(b <= 0 or math.isnan(b) or math.isinf(b) for b in bounds):
            raise ObservabilityError(
                f"bucket bounds must be finite and positive, got {bounds}"
            )
        self._bounds: Tuple[float, ...] = tuple(bounds)
        # One slot per finite bound plus the +Inf overflow bucket.
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = 0.0

    def observe(self, value: float) -> None:
        if value < 0:
            raise ObservabilityError(f"observations must be >= 0, got {value}")
        # Prometheus buckets are ``le`` (inclusive upper bounds).
        self._counts[bisect.bisect_left(self._bounds, value)] += 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def __len__(self) -> int:
        return self._count

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def bounds(self) -> Tuple[float, ...]:
        return self._bounds

    def min(self) -> float:
        return self._min if self._count else 0.0

    def max(self) -> float:
        return self._max if self._count else 0.0

    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def cumulative_counts(self) -> List[int]:
        """Cumulative count per bucket, ending with the total."""
        out: List[int] = []
        running = 0
        for count in self._counts:
            running += count
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Interpolated quantile (0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        if not self._count:
            return 0.0
        rank = q * self._count
        cumulative = 0
        lower = 0.0
        for index, count in enumerate(self._counts):
            upper = (
                self._bounds[index] if index < len(self._bounds) else self._max
            )
            if count and cumulative + count >= rank:
                fraction = (rank - cumulative) / count
                estimate = lower + (max(upper, lower) - lower) * fraction
                return min(max(estimate, self._min), self._max)
            cumulative += count
            lower = upper
        return self._max

    def fraction_below(self, threshold_s: float) -> float:
        """Approximate fraction of samples below a threshold (1.0 empty)."""
        if not self._count:
            return 1.0
        if threshold_s <= self._min:
            return 0.0
        if threshold_s > self._max:
            return 1.0
        below = 0.0
        lower = 0.0
        for index, count in enumerate(self._counts):
            upper = (
                self._bounds[index] if index < len(self._bounds) else self._max
            )
            if threshold_s >= upper:
                below += count
            elif threshold_s > lower:
                span = upper - lower
                below += count * ((threshold_s - lower) / span if span > 0 else 0.0)
            lower = upper
        return min(below / self._count, 1.0)


Instrument = Union[Counter, Gauge, BucketHistogram]


class MetricFamily:
    """All children of one named metric, keyed by label values."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: Tuple[str, ...],
        buckets_s: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = _check_name(name)
        self.kind = kind
        self.help = help_text
        self.label_names = _check_labels(label_names)
        self.buckets_s = buckets_s
        self._children: Dict[LabelValues, Instrument] = {}

    def _make(self) -> Instrument:
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return BucketHistogram(self.buckets_s or DEFAULT_LATENCY_BUCKETS_S)

    def labels(self, **labels: str) -> Instrument:
        """The child instrument for one label-value combination."""
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ObservabilityError(
                f"{self.name} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make()
        return child

    def counter_child(self, **labels: str) -> Counter:
        """:meth:`labels`, statically narrowed for counter families."""
        child = self.labels(**labels)
        if not isinstance(child, Counter):
            raise ObservabilityError(f"{self.name} is a {self.kind}, not a counter")
        return child

    def gauge_child(self, **labels: str) -> Gauge:
        child = self.labels(**labels)
        if not isinstance(child, Gauge):
            raise ObservabilityError(f"{self.name} is a {self.kind}, not a gauge")
        return child

    def histogram_child(self, **labels: str) -> BucketHistogram:
        child = self.labels(**labels)
        if not isinstance(child, BucketHistogram):
            raise ObservabilityError(
                f"{self.name} is a {self.kind}, not a histogram"
            )
        return child

    def adopt(self, values: LabelValues, instrument: Instrument) -> bool:
        """Insert an existing child under ``values`` (federated merges).

        Returns False (and leaves the family untouched) when the label
        set is already taken or the instrument kind does not match the
        family, so callers can count collisions instead of crashing a
        scrape.
        """
        if len(values) != len(self.label_names):
            return False
        expected = {
            "counter": Counter,
            "gauge": Gauge,
            "histogram": BucketHistogram,
        }[self.kind]
        if not isinstance(instrument, expected):
            return False
        key = tuple(str(value) for value in values)
        if key in self._children:
            return False
        self._children[key] = instrument
        return True

    def children(self) -> List[Tuple[LabelValues, Instrument]]:
        return sorted(self._children.items())


class MetricsRegistry:
    """Every instrument of one process, renderable as one page.

    Registration is idempotent: asking twice for the same name returns
    the same family (mismatched kind/labels raise), so independent
    subsystems can share a registry without coordination.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: Sequence[str],
        buckets_s: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is not None:
            if family.kind != kind or family.label_names != tuple(label_names):
                raise ObservabilityError(
                    f"metric {name!r} re-registered as {kind} "
                    f"{tuple(label_names)} (was {family.kind} "
                    f"{family.label_names})"
                )
            return family
        family = MetricFamily(
            name,
            kind,
            help_text,
            tuple(label_names),
            tuple(buckets_s) if buckets_s is not None else None,
        )
        self._families[name] = family
        return family

    def counter(self, name: str, help_text: str) -> Counter:
        """An unlabelled counter."""
        child = self._family(name, "counter", help_text, ()).labels()
        assert isinstance(child, Counter)
        return child

    def counter_family(
        self, name: str, help_text: str, label_names: Sequence[str]
    ) -> MetricFamily:
        """A labelled counter family (children via ``.labels(...)``)."""
        return self._family(name, "counter", help_text, label_names)

    def gauge(self, name: str, help_text: str) -> Gauge:
        child = self._family(name, "gauge", help_text, ()).labels()
        assert isinstance(child, Gauge)
        return child

    def gauge_family(
        self, name: str, help_text: str, label_names: Sequence[str]
    ) -> MetricFamily:
        return self._family(name, "gauge", help_text, label_names)

    def histogram(
        self,
        name: str,
        help_text: str,
        buckets_s: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> BucketHistogram:
        child = self._family(name, "histogram", help_text, (), buckets_s).labels()
        assert isinstance(child, BucketHistogram)
        return child

    def histogram_family(
        self,
        name: str,
        help_text: str,
        label_names: Sequence[str],
        buckets_s: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> MetricFamily:
        return self._family(name, "histogram", help_text, label_names, buckets_s)

    def families(self) -> List[MetricFamily]:
        """Registered families in registration order."""
        return list(self._families.values())

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render_prometheus(self) -> str:
        """The registry as Prometheus text exposition (version 0.0.4)."""
        lines: List[str] = []
        for family in self._families.values():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for values, child in family.children():
                label_set = format_label_set(family.label_names, values)
                if isinstance(child, (Counter, Gauge)):
                    lines.append(f"{family.name}{label_set} {child.value:g}")
                    continue
                cumulative = child.cumulative_counts()
                edges = [f"{bound:g}" for bound in child.bounds] + ["+Inf"]
                for edge, running in zip(edges, cumulative):
                    bucket_labels = format_label_set(
                        family.label_names, values, extra=f'le="{edge}"'
                    )
                    lines.append(
                        f"{family.name}_bucket{bucket_labels} {running}"
                    )
                lines.append(f"{family.name}_sum{label_set} {child.sum:g}")
                lines.append(f"{family.name}_count{label_set} {child.count}")
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> Dict[str, object]:
        """The registry as one JSON-serialisable dict."""
        families: List[Dict[str, object]] = []
        for family in self._families.values():
            metrics: List[Dict[str, object]] = []
            for values, child in family.children():
                labels = dict(zip(family.label_names, values))
                if isinstance(child, (Counter, Gauge)):
                    metrics.append({"labels": labels, "value": child.value})
                else:
                    metrics.append(
                        {
                            "labels": labels,
                            "count": child.count,
                            "sum": child.sum,
                            "min": child.min(),
                            "max": child.max(),
                            "buckets": [
                                [bound, running]
                                for bound, running in zip(
                                    list(child.bounds) + [float("inf")],
                                    child.cumulative_counts(),
                                )
                            ],
                        }
                    )
            families.append(
                {
                    "name": family.name,
                    "type": family.kind,
                    "help": family.help,
                    "metrics": metrics,
                }
            )
        return {"families": families}

    def render_json(self) -> str:
        """:meth:`snapshot` serialized (``inf`` bucket edges as strings)."""
        return json.dumps(_jsonify(self.snapshot()), sort_keys=False)


def _jsonify(value: object) -> object:
    """Replace non-finite floats so the snapshot is strict JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        return "+Inf" if value > 0 and math.isinf(value) else str(value)
    if isinstance(value, dict):
        return {key: _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    return value
