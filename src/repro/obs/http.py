"""Zero-dependency asyncio HTTP endpoint for live observability.

A tiny HTTP/1.1 server — GET only, ``Connection: close`` — good
enough for Prometheus scrapers, ``curl``, and the CI smoke job
without pulling a web framework into the tree:

* ``/metrics``  — the registry as Prometheus text exposition;
* ``/healthz``  — liveness JSON from a caller-supplied callable;
* ``/snapshot`` — the registry as one JSON document.

The endpoint runs on its own listener so a scrape can never occupy
the serving socket, and every handler only *reads* shared state —
a scrape cannot perturb the slot loop beyond the GIL.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable, Dict, Optional

from repro.errors import TransportError
from repro.obs.registry import MetricsRegistry

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Request-line size guard (a GET for our paths is far smaller).
_MAX_REQUEST_BYTES = 8192

HealthFn = Callable[[], Dict[str, object]]
RegistryFn = Callable[[], MetricsRegistry]


class ObsHttpServer:
    """Serves ``/metrics``, ``/healthz``, ``/snapshot`` for one registry.

    ``registry_fn`` (optional) supplies the registry rendered per
    request — the cluster endpoint uses it to rebuild the federated
    merge on every scrape while the request counter stays on the
    stable ``registry`` passed at construction.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        health_fn: Optional[HealthFn] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        registry_fn: Optional[RegistryFn] = None,
    ) -> None:
        self.registry = registry
        self.health_fn = health_fn
        self.registry_fn = registry_fn
        self.host = host
        self.configured_port = port
        self._listener: Optional[asyncio.AbstractServer] = None
        self._bound_port = 0
        self._requests = registry.counter_family(
            "repro_obs_http_requests_total",
            "Requests served by the observability endpoint",
            ("path", "status"),
        )

    @property
    def port(self) -> int:
        if self._bound_port == 0:
            raise TransportError("observability endpoint is not listening yet")
        return self._bound_port

    async def start(self) -> None:
        if self._listener is not None:
            return
        self._listener = await asyncio.start_server(
            self._on_connection, host=self.host, port=self.configured_port
        )
        if self._listener.sockets:
            self._bound_port = int(self._listener.sockets[0].getsockname()[1])

    async def stop(self) -> None:
        if self._listener is None:
            return
        self._listener.close()
        await self._listener.wait_closed()
        self._listener = None

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=5.0
            )
            if len(request_line) > _MAX_REQUEST_BYTES:
                raise TransportError("request line too long")
            # Drain headers until the blank line; we need none of them.
            while True:
                header = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if header in (b"\r\n", b"\n", b""):
                    break
            method, path = self._parse_request_line(request_line)
            status, content_type, body = self._respond(method, path)
            self._requests.counter_child(
                path=path.split("?", 1)[0], status=str(status)
            ).inc()
            writer.write(_render_response(status, content_type, body))
            await writer.drain()
        except (asyncio.TimeoutError, TransportError, ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    def _parse_request_line(raw: bytes) -> "tuple[str, str]":
        try:
            text = raw.decode("latin-1").strip()
        except UnicodeDecodeError as exc:
            raise TransportError(f"undecodable request line: {exc}") from exc
        parts = text.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise TransportError(f"malformed request line {text!r}")
        return parts[0].upper(), parts[1]

    def _respond(self, method: str, path: str) -> "tuple[int, str, bytes]":
        if method != "GET":
            return 405, "text/plain; charset=utf-8", b"method not allowed\n"
        route = path.split("?", 1)[0]
        if route == "/metrics":
            return (
                200,
                PROMETHEUS_CONTENT_TYPE,
                self._scrape_registry().render_prometheus().encode("utf-8"),
            )
        if route == "/healthz":
            payload: Dict[str, object] = {"status": "ok"}
            if self.health_fn is not None:
                payload.update(self.health_fn())
            return (
                200,
                "application/json; charset=utf-8",
                (json.dumps(payload) + "\n").encode("utf-8"),
            )
        if route == "/snapshot":
            return (
                200,
                "application/json; charset=utf-8",
                (self._scrape_registry().render_json() + "\n").encode("utf-8"),
            )
        return 404, "text/plain; charset=utf-8", b"not found\n"

    def _scrape_registry(self) -> MetricsRegistry:
        if self.registry_fn is not None:
            return self.registry_fn()
        return self.registry


_STATUS_TEXT = {200: "OK", 404: "Not Found", 405: "Method Not Allowed"}


def _render_response(status: int, content_type: str, body: bytes) -> bytes:
    reason = _STATUS_TEXT.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body
