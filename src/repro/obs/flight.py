"""Flight recorder: a ring of recent slot spans, dumped on anomalies.

Always-on tracing at 60 Hz is unaffordable in production and unneeded
in the steady state; what matters is the window *around* a failure.
The recorder therefore keeps the last ``capacity`` slot spans in a
fixed ring and, when an anomaly fires — a missed slot deadline, an
admission reject, a write-watermark frame drop — snapshots the ring
into an in-memory :class:`FlightDump` (and a JSONL file when a dump
directory is configured).  Dumps are capped per run so a pathological
run cannot fill a disk, and every trigger is counted in the registry
whether or not it produced a dump.

Dump files never get written on a live event loop: triggers fired
from the serving path (a loop is running) snapshot the ring in memory,
reserve the file path, and queue the serialized payload;
:meth:`FlightRecorder.aflush` — scheduled by the slot loop after the
deadline check — performs the actual write in a worker thread.  Sync
contexts (simulator, tests, CLI) write inline, so ``dump.path`` is
immediately readable there.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.errors import ObservabilityError
from repro.obs.registry import MetricFamily, MetricsRegistry
from repro.obs.spans import Span, stream_header

#: Anomaly triggers the serving path fires.
TRIGGER_DEADLINE_MISS = "deadline_miss"
TRIGGER_ADMISSION_REJECT = "admission_reject"
TRIGGER_WRITE_DROP = "write_drop"
TRIGGER_SESSION_RESUME_FAILED = "session_resume_failed"

#: Cluster-level triggers the shard coordinator/supervisor fire.
TRIGGER_SHARD_KILL = "shard_kill"
TRIGGER_MIGRATION_STALL = "migration_stall"
TRIGGER_SHARD_RESPAWN = "shard_respawn"

#: Fired by the SLO engine when an objective's burn rate breaches.
TRIGGER_SLO_BREACH = "slo_breach"

TRIGGERS = (
    TRIGGER_DEADLINE_MISS, TRIGGER_ADMISSION_REJECT, TRIGGER_WRITE_DROP,
    TRIGGER_SESSION_RESUME_FAILED, TRIGGER_SHARD_KILL,
    TRIGGER_MIGRATION_STALL, TRIGGER_SHARD_RESPAWN, TRIGGER_SLO_BREACH,
)


def _in_event_loop() -> bool:
    """True when called from a running asyncio event-loop thread."""
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return False
    return True


@dataclass(frozen=True)
class FlightDump:
    """One anomaly snapshot of the recent-slot ring."""

    trigger: str
    detail: str
    slot: int
    spans: Tuple[Span, ...]
    path: Optional[Path] = None

    def slot_numbers(self) -> List[int]:
        return [
            int(span.attrs.get("slot", -1))
            for span in self.spans
            if isinstance(span.attrs.get("slot"), int)
        ]


class FlightRecorder:
    """Fixed-size ring buffer of slot spans with triggered dumps."""

    def __init__(
        self,
        capacity: int = 120,
        out_dir: Optional[Union[str, Path]] = None,
        max_dumps: int = 8,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 1:
            raise ObservabilityError(f"capacity must be >= 1, got {capacity}")
        if max_dumps < 1:
            raise ObservabilityError(f"max_dumps must be >= 1, got {max_dumps}")
        self.capacity = capacity
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.max_dumps = max_dumps
        self._ring: Deque[Span] = deque(maxlen=capacity)
        self.dumps: List[FlightDump] = []
        self.suppressed = 0
        #: Dump files queued while an event loop was running:
        #: ``(path, serialized JSONL lines)``, drained by flush/aflush.
        self._pending: List[Tuple[Path, List[str]]] = []
        self._triggers: Optional[MetricFamily] = None
        if registry is not None:
            self._triggers = registry.counter_family(
                "repro_obs_flight_triggers_total",
                "Anomaly triggers seen by the flight recorder",
                ("trigger",),
            )

    @property
    def enabled(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self._ring)

    def record(self, span: Span) -> None:
        """Append one finished slot span to the ring."""
        self._ring.append(span)

    def trigger(
        self, trigger: str, detail: str = "", slot: int = -1
    ) -> Optional[FlightDump]:
        """Fire an anomaly: snapshot the ring unless the cap is hit."""
        if self._triggers is not None:
            self._triggers.counter_child(trigger=trigger).inc()
        if len(self.dumps) >= self.max_dumps:
            self.suppressed += 1
            return None
        dump = FlightDump(
            trigger=trigger,
            detail=detail,
            slot=slot,
            spans=tuple(self._ring),
            path=self._write(trigger, detail, slot),
        )
        self.dumps.append(dump)
        return dump

    def _write(self, trigger: str, detail: str, slot: int) -> Optional[Path]:
        if self.out_dir is None:
            return None
        path = self.out_dir / f"flight_{len(self.dumps):03d}_{trigger}.jsonl"
        header = stream_header("repro.obs.flight")
        header.update({"trigger": trigger, "detail": detail, "slot": slot})
        lines = [json.dumps(header) + "\n"]
        lines.extend(json.dumps(span.to_dict()) + "\n" for span in self._ring)
        if _in_event_loop():
            self._pending.append((path, lines))
        else:
            self._write_file(path, lines)
        return path

    def _write_file(self, path: Path, lines: List[str]) -> None:
        """Blocking dump-file write (worker thread or sync context)."""
        self.out_dir.mkdir(parents=True, exist_ok=True)  # type: ignore[union-attr]
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)

    def _drain(self, pending: List[Tuple[Path, List[str]]]) -> None:
        for path, lines in pending:
            self._write_file(path, lines)

    def flush(self) -> None:
        """Write queued dump files (blocking; sync contexts)."""
        pending, self._pending = self._pending, []
        self._drain(pending)

    async def aflush(self) -> None:
        """Write queued dump files without blocking the event loop."""
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        await asyncio.to_thread(self._drain, pending)

    def last_dump_for(self, trigger: str) -> Optional[FlightDump]:
        """The most recent dump fired by a given trigger, if any."""
        for dump in reversed(self.dumps):
            if dump.trigger == trigger:
                return dump
        return None

    def summary(self) -> Dict[str, object]:
        return {
            "ring_slots": len(self._ring),
            "capacity": self.capacity,
            "dumps": [
                {
                    "trigger": dump.trigger,
                    "detail": dump.detail,
                    "slot": dump.slot,
                    "spans": len(dump.spans),
                    "path": str(dump.path) if dump.path is not None else None,
                }
                for dump in self.dumps
            ],
            "suppressed": self.suppressed,
        }


class NullFlightRecorder:
    """Flight recording disabled: every call is a cheap no-op."""

    def __init__(self) -> None:
        self.dumps: List[FlightDump] = []
        self.suppressed = 0

    @property
    def enabled(self) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def record(self, span: Span) -> None:
        return None

    def trigger(
        self, trigger: str, detail: str = "", slot: int = -1
    ) -> Optional[FlightDump]:
        return None

    def last_dump_for(self, trigger: str) -> Optional[FlightDump]:
        return None

    def flush(self) -> None:
        return None

    async def aflush(self) -> None:
        return None

    def summary(self) -> Dict[str, object]:
        return {"ring_slots": 0, "capacity": 0, "dumps": [], "suppressed": 0}


AnyFlightRecorder = Union[FlightRecorder, NullFlightRecorder]
