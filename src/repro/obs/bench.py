"""Observability overhead benchmark: the cost of watching the loop.

Instrumentation that perturbs the system it measures is worse than no
instrumentation, so the acceptance bar for :mod:`repro.obs` is a hard
number: at the default trace sampling, full observability must add
less than :data:`MAX_OVERHEAD_PCT` to the slot pipeline.  The bench
runs the same seeded lockstep loopback serve twice — observability
disabled, then enabled — and compares the *mean* slot-pipeline
latency (exact under the bounded histogram, unlike quantiles, so the
comparison is not blurred by bucket interpolation).  Results append
to ``BENCH_obs.json`` via :func:`repro.perf.bench.persist_run`.
"""

from __future__ import annotations

import asyncio
from dataclasses import replace
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.obs.config import DEFAULT_SAMPLE_EVERY, ObsConfig
from repro.serve.config import serve_setup1
from repro.serve.loadgen import LoadGenConfig, run_serve_and_fleet

BENCH_OBS_FILE = "BENCH_obs.json"

#: Acceptance ceiling for the slot-pipeline overhead (percent).
MAX_OVERHEAD_PCT = 5.0


def _run_arm(
    users: int, slots: int, seed: int, obs_config: ObsConfig
) -> Dict[str, float]:
    """One lockstep loopback serve; mean/p50 slot latency in ms."""
    serve_config = replace(
        serve_setup1(
            max_users=users,
            duration_slots=slots + 1,
            seed=seed,
            expect_clients=users,
            lockstep=True,
        ),
        obs=obs_config,
    )
    fleet_config = LoadGenConfig(num_clients=users, seed=seed)
    result, _ = asyncio.run(run_serve_and_fleet(serve_config, fleet_config))
    slot_hist = result.metrics.stage_latency["slot"]
    return {
        "slots": float(result.metrics.slots),
        "mean_slot_ms": slot_hist.mean() * 1e3,
        "p50_slot_ms": slot_hist.quantile(0.50) * 1e3,
        "p99_slot_ms": slot_hist.quantile(0.99) * 1e3,
    }


def bench_obs(
    users: int = 8,
    slots: int = 120,
    seed: int = 0,
    repeats: int = 3,
    sample_every: int = DEFAULT_SAMPLE_EVERY,
) -> Dict[str, object]:
    """Measure the slot-pipeline cost of full observability.

    Each arm (obs off, obs on at ``sample_every``) runs ``repeats``
    full lockstep loopback serves; the reported latency per arm is
    the best (minimum-mean) run, the standard noise-robust treatment
    benchmarks in this repo use.
    """
    if users < 1:
        raise ConfigurationError(f"users must be >= 1, got {users}")
    if slots < 3:
        raise ConfigurationError(f"slots must be >= 3, got {slots}")
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    off_config = ObsConfig(enabled=False)
    on_config = ObsConfig(enabled=True, sample_every=sample_every)
    off_runs: List[Dict[str, float]] = []
    on_runs: List[Dict[str, float]] = []
    for _ in range(repeats):
        off_runs.append(_run_arm(users, slots, seed, off_config))
        on_runs.append(_run_arm(users, slots, seed, on_config))
    best_off = min(off_runs, key=lambda run: run["mean_slot_ms"])
    best_on = min(on_runs, key=lambda run: run["mean_slot_ms"])
    overhead_pct = (
        (best_on["mean_slot_ms"] - best_off["mean_slot_ms"])
        / best_off["mean_slot_ms"]
        * 100.0
        if best_off["mean_slot_ms"] > 0
        else 0.0
    )
    return {
        "kind": "obs",
        "users": int(users),
        "slots": int(slots),
        "repeats": int(repeats),
        "sample_every": int(sample_every),
        "off_mean_slot_ms": best_off["mean_slot_ms"],
        "on_mean_slot_ms": best_on["mean_slot_ms"],
        "off_p50_slot_ms": best_off["p50_slot_ms"],
        "on_p50_slot_ms": best_on["p50_slot_ms"],
        "off_p99_slot_ms": best_off["p99_slot_ms"],
        "on_p99_slot_ms": best_on["p99_slot_ms"],
        "overhead_pct": overhead_pct,
        "max_overhead_pct": MAX_OVERHEAD_PCT,
        "within_budget": bool(overhead_pct < MAX_OVERHEAD_PCT),
    }
