"""Observability configuration and the per-process ``Obs`` bundle.

An :class:`ObsConfig` is carried inside
:class:`~repro.serve.config.ServeConfig` (and can be handed to the
in-process experiment directly); :meth:`Obs.from_config` materializes
it into the three runtime pieces — one
:class:`~repro.obs.registry.MetricsRegistry`, one tracer, one flight
recorder — swapping in null implementations when disabled so the
instrumented hot paths stay branch-cheap.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.obs.flight import AnyFlightRecorder, FlightRecorder, NullFlightRecorder
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SloConfig
from repro.obs.tracer import AnyTracer, NullTracer, Tracer

#: Default trace sampling: one slot span written out of every N built.
DEFAULT_SAMPLE_EVERY = 16


@dataclass(frozen=True)
class ObsConfig:
    """Knobs of the observability layer.

    Parameters
    ----------
    enabled:
        Master switch for span building, tracing, and flight
        recording.  Metrics counters always run (they replaced the
        serving layer's original ad-hoc counters and cost one float
        add each); everything span-shaped is gated here.
    trace_path:
        JSONL sink for slot spans (``None`` = no trace file).
    sample_every:
        Write one slot span out of every N to ``trace_path`` (1 = all
        slots).  Span *construction* is not sampled — the flight
        recorder always sees every slot.
    flight_capacity:
        Slot spans kept in the flight-recorder ring.
    flight_dir:
        Directory for anomaly dump files (``None`` = in-memory only).
    flight_max_dumps:
        Dump cap per run; further triggers are counted, not dumped.
    http_host / http_port:
        Endpoint for ``/metrics``, ``/healthz`` and ``/snapshot``;
        ``http_port=None`` disables the listener, ``0`` binds an
        ephemeral port.
    slo:
        Declarative SLO set evaluated as windowed burn rates by the
        slot loop (``None`` = no SLO engine).  Evaluation only reads
        counters — an enabled engine stays bit-inert.
    """

    enabled: bool = True
    trace_path: Optional[str] = None
    sample_every: int = DEFAULT_SAMPLE_EVERY
    flight_capacity: int = 120
    flight_dir: Optional[str] = None
    flight_max_dumps: int = 8
    http_host: str = "127.0.0.1"
    http_port: Optional[int] = None
    slo: Optional[SloConfig] = None

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ConfigurationError(
                f"sample_every must be >= 1, got {self.sample_every}"
            )
        if self.flight_capacity < 1:
            raise ConfigurationError(
                f"flight_capacity must be >= 1, got {self.flight_capacity}"
            )
        if self.flight_max_dumps < 1:
            raise ConfigurationError(
                f"flight_max_dumps must be >= 1, got {self.flight_max_dumps}"
            )
        if self.http_port is not None and not 0 <= self.http_port <= 0xFFFF:
            raise ConfigurationError(
                f"http_port must be in [0, 65535], got {self.http_port}"
            )


class Obs:
    """One process's observability runtime: registry, tracer, flight."""

    def __init__(
        self,
        registry: MetricsRegistry,
        tracer: AnyTracer,
        flight: AnyFlightRecorder,
        active: bool,
    ) -> None:
        self.registry = registry
        self.tracer = tracer
        self.flight = flight
        #: When False the hot paths skip span construction entirely.
        self.active = active

    @classmethod
    def from_config(
        cls, config: ObsConfig, registry: Optional[MetricsRegistry] = None
    ) -> "Obs":
        registry = registry if registry is not None else MetricsRegistry()
        if not config.enabled:
            return cls(registry, NullTracer(), NullFlightRecorder(), False)
        tracer = Tracer(
            path=config.trace_path,
            sample_every=config.sample_every,
            registry=registry,
        )
        flight = FlightRecorder(
            capacity=config.flight_capacity,
            out_dir=config.flight_dir,
            max_dumps=config.flight_max_dumps,
            registry=registry,
        )
        return cls(registry, tracer, flight, True)

    @classmethod
    def disabled(cls, registry: Optional[MetricsRegistry] = None) -> "Obs":
        """A null bundle: counters work, spans cost nothing."""
        return cls(
            registry if registry is not None else MetricsRegistry(),
            NullTracer(),
            NullFlightRecorder(),
            False,
        )

    def flush(self) -> None:
        """Drain deferred trace/dump writes (blocking; sync contexts)."""
        self.tracer.flush()
        self.flight.flush()

    async def aflush(self) -> None:
        """Drain deferred trace/dump writes off the event loop."""
        await self.tracer.aflush()
        await self.flight.aflush()

    def close(self) -> None:
        self.flight.flush()
        self.tracer.close()

    async def aclose(self) -> None:
        """Flush and close without blocking the event loop."""
        await self.aflush()
        await asyncio.to_thread(self.tracer.close)
