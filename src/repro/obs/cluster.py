"""Federated metrics: merge per-shard registries into one exposition.

A sharded cluster runs one :class:`~repro.obs.registry.MetricsRegistry`
per shard process plus a small coordinator-local registry.  The
cluster ``/metrics`` endpoint must present all of them as a single
valid Prometheus page: one ``# TYPE`` line per family, every series
distinguishable by a ``shard`` label, and histogram buckets that stay
cumulative per series even when two shards configured different
bucket vectors for the same family name.

:func:`merge_registries` builds that page the cheap way — a fresh
merge registry whose families *adopt* the live child instruments by
reference (no copying, no double counting; the scrape happens on the
same event-loop thread that updates the instruments).  Merging is
conflict-safe: a family whose kind or label names disagree across
shards, or a label set that collides after shard-labelling, is skipped
and counted in ``repro_cluster_merge_conflicts_total`` instead of
failing the scrape.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ObservabilityError
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    MetricFamily,
    MetricsRegistry,
)

#: Label added to every merged series, valued with the source shard.
SHARD_LABEL = "shard"

#: Counter family recording families/series dropped during a merge.
MERGE_CONFLICTS_METRIC = "repro_cluster_merge_conflicts_total"

#: Shard-label value used for the coordinator's own registry.
COORDINATOR_SHARD = "coordinator"


def _register_like(
    merged: MetricsRegistry, family: MetricFamily, label_names: Sequence[str]
) -> MetricFamily:
    """Register ``family``'s shape (shard-labelled) on the merge registry."""
    if family.kind == "counter":
        return merged.counter_family(family.name, family.help, label_names)
    if family.kind == "gauge":
        return merged.gauge_family(family.name, family.help, label_names)
    return merged.histogram_family(
        family.name,
        family.help,
        label_names,
        buckets_s=family.buckets_s or DEFAULT_LATENCY_BUCKETS_S,
    )


def merge_registries(
    sources: Sequence[Tuple[str, MetricsRegistry]]
) -> MetricsRegistry:
    """One registry view over ``(shard_label, registry)`` sources.

    Families gain a trailing ``shard`` label (unless the source family
    already carries one — shard-aware families are merged as-is).
    Child instruments are adopted by reference, so the merged registry
    is a *view*: render it promptly, do not cache it across slots.
    """
    merged = MetricsRegistry()
    conflicts = merged.counter_family(
        MERGE_CONFLICTS_METRIC,
        "Metric families or series skipped during cluster merge.",
        ("metric",),
    )
    for shard_label, registry in sources:
        for family in registry.families():
            already_sharded = SHARD_LABEL in family.label_names
            label_names = (
                family.label_names
                if already_sharded
                else family.label_names + (SHARD_LABEL,)
            )
            try:
                target = _register_like(merged, family, label_names)
            except ObservabilityError:
                # Same name, different kind or label names on another
                # shard: keep the first registration, count the rest.
                conflicts.counter_child(metric=family.name).inc()
                continue
            for values, child in family.children():
                key = values if already_sharded else values + (shard_label,)
                if not target.adopt(key, child):
                    conflicts.counter_child(metric=family.name).inc()
    return merged


def merge_conflicts(merged: MetricsRegistry) -> List[Tuple[str, int]]:
    """``(metric, dropped_count)`` pairs recorded by the last merge."""
    out: List[Tuple[str, int]] = []
    for family in merged.families():
        if family.name != MERGE_CONFLICTS_METRIC:
            continue
        for values, child in family.children():
            if isinstance(child, Counter):
                out.append((values[0], child.count))
    return out
