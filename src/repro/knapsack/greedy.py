"""Greedy solvers — the generic form of the paper's Algorithm 1.

The paper allocates quality *increments* rather than whole items: all
users start at the lowest level and the algorithm repeatedly grants the
single most attractive one-level upgrade until budgets bind or no
upgrade improves the objective.  Two attractiveness orders are used:

* **density** — value gained per unit of extra weight
  (``eta_n`` in Algorithm 1), and
* **value** — raw value gained (``v_n`` in Algorithm 1).

Either order alone can be a factor-2 loser on adversarial instances
(see the worked examples in Section III of the paper); the *combined*
solver runs both and keeps the better result, which achieves at least
1/2 of the optimum when value curves are concave and weight curves are
convex (Theorem 1).

Two interchangeable implementations back every solver:

* ``strategy="reference"`` — the direct transcription of Algorithm 1:
  each round rescans every active item in increasing index order and
  grants the best upgrade, so one upgrade costs O(N).
* ``strategy="heap"`` — the fast path: each active item keeps exactly
  one max-heap entry keyed by the priority of its *next* upgrade, so
  one upgrade costs O(log N).  Because an item's priority depends only
  on its own curve (never on other items' choices), popped entries are
  always fresh; a stale-entry guard remains as a defensive invariant.

Both implementations grant the same upgrades in the same order — exact
priority ties break toward the lowest item index — and therefore
return bit-identical solutions (property-tested over random plain,
capped, grouped, and skip-allowed instances in
``tests/knapsack/test_heap_equivalence.py``).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Set, Tuple

from repro.errors import ConfigurationError
from repro.knapsack.problem import SeparableKnapsack, Solution

_EPS = 1e-9

#: Implementation names accepted by the ``strategy`` argument.
STRATEGIES = ("reference", "heap")


def _start_state(problem: SeparableKnapsack):
    """Shared warm-up: the base assignment and its running weights."""
    base = problem.base_solution()
    options: List[int] = list(base.options)
    return options, base.weight, problem.group_weights(options)


def _try_upgrade(
    problem: SeparableKnapsack,
    options: List[int],
    group_weights: List[float],
    total_weight: float,
    n: int,
) -> Tuple[float, bool, bool]:
    """``quality_verification(q, I)`` from Algorithm 1 for one upgrade.

    Attempts to move item ``n`` up one level.  Returns
    ``(total_weight, granted, still_active)``: a cap/budget violation
    (global or per-group) leaves ``options`` untouched and retires the
    item; a granted upgrade retires the item only when it reaches its
    top level.
    """
    item = problem.items[n]
    k = options[n]
    delta = item.weight_delta(k)
    new_weight = total_weight + delta
    group = problem.group_of[n] if problem.group_of is not None else None
    group_over = (
        group is not None
        and group_weights[group] + delta > problem.group_budgets[group] + _EPS
    )
    if (
        item.weights[k + 1] > item.cap + _EPS
        or new_weight > problem.budget + _EPS
        or group_over
    ):
        return total_weight, False, False
    options[n] = k + 1
    if group is not None:
        group_weights[group] += delta
    return new_weight, True, options[n] < item.max_option


def _greedy_reference(
    problem: SeparableKnapsack,
    score: Callable[[float, float], float],
) -> Solution:
    """Run the upgrade-greedy loop with an arbitrary marginal score.

    ``score(dv, dw)`` maps a (value delta, weight delta) pair to the
    priority of that upgrade; the loop always grants the currently
    highest-priority upgrade and stops as soon as the best available
    priority is negative (with concave values every later upgrade of
    every user would be worse, exactly as argued in the paper).

    Deterministic iteration order: each round scans the active items
    once in **increasing item index** and keeps the first strict
    maximum, so exact priority ties break toward the lowest index.
    The heap fast path reproduces this order bit-for-bit; the
    equivalence tests rely on this contract.
    """
    options, total_weight, group_weights = _start_state(problem)

    active: Set[int] = {
        n
        for n, item in enumerate(problem.items)
        # Items skipped at base (option -1) are never upgraded.
        if 0 <= options[n] < item.max_option
    }
    # Increasing-index scan order; retired items are skipped and the
    # list compacted once it is mostly dead, keeping one upgrade O(N)
    # without re-sorting the active set every round.
    order = sorted(active)

    while active:
        if len(order) > 2 * len(active):
            order = [n for n in order if n in active]
        best_n = -1
        best_score = float("-inf")
        for n in order:
            if n not in active:
                continue
            item = problem.items[n]
            k = options[n]
            s = score(item.value_delta(k), item.weight_delta(k))
            if s > best_score:
                best_score = s
                best_n = n
        if best_score < 0:
            # argmax is negative => every candidate upgrade loses value.
            break
        total_weight, _granted, still_active = _try_upgrade(
            problem, options, group_weights, total_weight, best_n
        )
        if not still_active:
            active.discard(best_n)

    return problem.evaluate(options)


def _greedy_heap(
    problem: SeparableKnapsack,
    score: Callable[[float, float], float],
) -> Solution:
    """Heap fast path: identical upgrade sequence, O(log N) per upgrade.

    Heap entries are ``(-priority, item, option)`` so the smallest
    tuple is the highest-priority upgrade with ties broken toward the
    lowest item index — exactly the reference scan order.  Each live
    item owns one entry for its current option; an entry whose option
    no longer matches (or whose item was retired) is stale and skipped.
    """
    options, total_weight, group_weights = _start_state(problem)

    live = [False] * problem.num_items
    heap: List[Tuple[float, int, int]] = []
    for n, item in enumerate(problem.items):
        if 0 <= options[n] < item.max_option:
            k = options[n]
            live[n] = True
            heap.append((-score(item.value_delta(k), item.weight_delta(k)), n, k))
    heapq.heapify(heap)

    while heap:
        neg_score, n, k = heapq.heappop(heap)
        if not live[n] or k != options[n]:
            continue  # stale entry (defensive; see module docstring)
        if -neg_score < 0:
            # Best fresh priority is negative: same stop as reference.
            break
        total_weight, _granted, still_active = _try_upgrade(
            problem, options, group_weights, total_weight, n
        )
        if still_active:
            item = problem.items[n]
            k = options[n]
            heapq.heappush(
                heap, (-score(item.value_delta(k), item.weight_delta(k)), n, k)
            )
        else:
            live[n] = False

    return problem.evaluate(options)


_IMPLEMENTATIONS = {
    "reference": _greedy_reference,
    "heap": _greedy_heap,
}


def _greedy(
    problem: SeparableKnapsack,
    score: Callable[[float, float], float],
    strategy: str = "heap",
) -> Solution:
    """Dispatch an upgrade-greedy run to the selected implementation."""
    try:
        impl = _IMPLEMENTATIONS[strategy]
    except KeyError:
        raise ConfigurationError(
            f"unknown greedy strategy {strategy!r}; expected one of {STRATEGIES}"
        ) from None
    return impl(problem, score)


def density_greedy(problem: SeparableKnapsack, strategy: str = "heap") -> Solution:
    """Upgrade-greedy ordered by marginal density ``dv / dw``."""
    return _greedy(problem, lambda dv, dw: dv / dw, strategy)


def value_greedy(problem: SeparableKnapsack, strategy: str = "heap") -> Solution:
    """Upgrade-greedy ordered by raw marginal value ``dv``."""
    return _greedy(problem, lambda dv, _dw: dv, strategy)


def combined_greedy(problem: SeparableKnapsack, strategy: str = "heap") -> Solution:
    """Algorithm 1: the better of density-greedy and value-greedy.

    Under concave value curves and convex weight curves this achieves
    at least half the optimal objective (Theorem 1 of the paper).
    """
    d = density_greedy(problem, strategy)
    v = value_greedy(problem, strategy)
    return d if d.value >= v.value else v
