"""Greedy solvers — the generic form of the paper's Algorithm 1.

The paper allocates quality *increments* rather than whole items: all
users start at the lowest level and the algorithm repeatedly grants the
single most attractive one-level upgrade until budgets bind or no
upgrade improves the objective.  Two attractiveness orders are used:

* **density** — value gained per unit of extra weight
  (``eta_n`` in Algorithm 1), and
* **value** — raw value gained (``v_n`` in Algorithm 1).

Either order alone can be a factor-2 loser on adversarial instances
(see the worked examples in Section III of the paper); the *combined*
solver runs both and keeps the better result, which achieves at least
1/2 of the optimum when value curves are concave and weight curves are
convex (Theorem 1).
"""

from __future__ import annotations

from typing import Callable, List, Set

from repro.knapsack.problem import SeparableKnapsack, Solution

_EPS = 1e-9


def _greedy(
    problem: SeparableKnapsack,
    score: Callable[[float, float], float],
) -> Solution:
    """Run the upgrade-greedy loop with an arbitrary marginal score.

    ``score(dv, dw)`` maps a (value delta, weight delta) pair to the
    priority of that upgrade; the loop always grants the currently
    highest-priority upgrade and stops as soon as the best available
    priority is negative (with concave values every later upgrade of
    every user would be worse, exactly as argued in the paper).
    """
    base = problem.base_solution()
    options: List[int] = list(base.options)
    total_weight = base.weight
    group_weights = problem.group_weights(options)

    active: Set[int] = set()
    for n, item in enumerate(problem.items):
        if options[n] < 0:
            continue  # skipped at base: never upgraded
        if options[n] < item.max_option:
            active.add(n)

    while active:
        best_n = -1
        best_score = float("-inf")
        for n in sorted(active):
            item = problem.items[n]
            k = options[n]
            s = score(item.value_delta(k), item.weight_delta(k))
            if s > best_score:
                best_score = s
                best_n = n
        if best_score < 0:
            # argmax is negative => every candidate upgrade loses value.
            break

        item = problem.items[best_n]
        options[best_n] += 1
        delta = item.weight_delta(options[best_n] - 1)
        new_weight = total_weight + delta
        group = (
            problem.group_of[best_n] if problem.group_of is not None else None
        )
        group_over = (
            group is not None
            and group_weights[group] + delta > problem.group_budgets[group] + _EPS
        )

        # quality_verification(q, I) from Algorithm 1: cap/budget
        # (global or per-group) violations revert the upgrade and
        # retire the user; reaching the top level retires the user
        # but keeps the upgrade.
        if (
            item.weights[options[best_n]] > item.cap + _EPS
            or new_weight > problem.budget + _EPS
            or group_over
        ):
            options[best_n] -= 1
            active.discard(best_n)
            continue
        total_weight = new_weight
        if group is not None:
            group_weights[group] += delta
        if options[best_n] == item.max_option:
            active.discard(best_n)

    return problem.evaluate(options)


def density_greedy(problem: SeparableKnapsack) -> Solution:
    """Upgrade-greedy ordered by marginal density ``dv / dw``."""
    return _greedy(problem, lambda dv, dw: dv / dw)


def value_greedy(problem: SeparableKnapsack) -> Solution:
    """Upgrade-greedy ordered by raw marginal value ``dv``."""
    return _greedy(problem, lambda dv, _dw: dv)


def combined_greedy(problem: SeparableKnapsack) -> Solution:
    """Algorithm 1: the better of density-greedy and value-greedy.

    Under concave value curves and convex weight curves this achieves
    at least half the optimal objective (Theorem 1 of the paper).
    """
    d = density_greedy(problem)
    v = value_greedy(problem)
    return d if d.value >= v.value else v
