"""Nonlinear knapsack substrate.

The per-slot problem (5)-(7) of the paper is a *separable nonlinear
knapsack*: each item (user) selects one option (quality level) from an
ordered menu; the objective is the sum of per-item concave value
curves; each option carries a weight from a convex increasing curve;
the weights are constrained per-item (``B_n(t)``) and globally
(``B(t)``).

This subpackage implements the problem representation and a family of
solvers independent of any VR semantics so that the algorithmic core of
the paper can be tested and benchmarked in isolation:

* :class:`~repro.knapsack.problem.SeparableKnapsack` — the problem.
* :func:`~repro.knapsack.greedy.density_greedy`,
  :func:`~repro.knapsack.greedy.value_greedy`,
  :func:`~repro.knapsack.greedy.combined_greedy` — Algorithm 1 of the
  paper in its generic form.
* :func:`~repro.knapsack.exact.solve_exact` — branch-and-bound exact
  solver (the paper's "brute force" offline optimum).
* :func:`~repro.knapsack.bounds.fractional_upper_bound` — the LP-style
  relaxation used in the proof of Theorem 1.
"""

from repro.knapsack.problem import ItemCurve, SeparableKnapsack, Solution
from repro.knapsack.greedy import (
    STRATEGIES,
    combined_greedy,
    density_greedy,
    value_greedy,
)
from repro.knapsack.exact import solve_exact, solve_dynamic_programming
from repro.knapsack.bounds import fractional_upper_bound

__all__ = [
    "ItemCurve",
    "SeparableKnapsack",
    "Solution",
    "STRATEGIES",
    "density_greedy",
    "value_greedy",
    "combined_greedy",
    "solve_exact",
    "solve_dynamic_programming",
    "fractional_upper_bound",
]
