"""Problem representation for the separable nonlinear knapsack.

An instance consists of ``N`` items.  Item ``n`` carries an *ordered
menu* of options ``0..K_n``; choosing option ``k`` yields value
``values[k]`` and consumes weight ``weights[k]``.  Option 0 is the
mandatory base: a solution always assigns every item at least its base
option (in the paper, quality level 1).  Feasibility requires

* ``weights[k_n] <= cap_n`` for every item (per-user throughput (3)),
* ``sum_n weights[k_n] <= budget`` (server throughput (2)).

The paper's guarantee (Theorem 1) additionally assumes the value curve
is concave and the weight curve is convex in the option index; those
structural properties are checked by :meth:`ItemCurve.is_concave` and
:meth:`ItemCurve.is_convex_weights` and exploited by the greedy
solvers, but the solvers remain correct (feasible output) without
them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError, InfeasibleAllocationError

_EPS = 1e-9


@dataclass(frozen=True)
class ItemCurve:
    """Value/weight menu for a single item.

    Parameters
    ----------
    values:
        ``values[k]`` is the objective contribution if option ``k`` is
        chosen.  Any real numbers; the paper's ``h_n`` may be negative.
    weights:
        ``weights[k]`` is the consumed weight; must be strictly
        increasing so that marginal densities are well defined.
    cap:
        Per-item weight cap (``B_n(t)``).  ``math.inf`` disables it.
    """

    values: Tuple[float, ...]
    weights: Tuple[float, ...]
    cap: float = math.inf

    def __post_init__(self) -> None:
        if len(self.values) != len(self.weights):
            raise ConfigurationError(
                "values and weights must have equal length; got "
                f"{len(self.values)} and {len(self.weights)}"
            )
        if not self.values:
            raise ConfigurationError("an item needs at least one option")
        for a, b in zip(self.weights, self.weights[1:]):
            if b <= a + _EPS:
                raise ConfigurationError(
                    "weights must be strictly increasing (convex rate "
                    f"curves are strictly increasing): {self.weights}"
                )
        if self.cap < 0:
            raise ConfigurationError(f"cap must be non-negative, got {self.cap}")

    @classmethod
    def from_sequences(
        cls,
        values: Sequence[float],
        weights: Sequence[float],
        cap: float = math.inf,
    ) -> "ItemCurve":
        """Build an item curve from arbitrary sequences."""
        return cls(tuple(float(v) for v in values), tuple(float(w) for w in weights), float(cap))

    @property
    def num_options(self) -> int:
        """Number of options, including the base option 0."""
        return len(self.values)

    @property
    def max_option(self) -> int:
        """Largest option index."""
        return len(self.values) - 1

    def max_option_under_cap(self) -> int:
        """Largest option whose weight respects the per-item cap.

        Returns -1 when even the base option exceeds the cap.
        """
        best = -1
        for k, w in enumerate(self.weights):
            if w <= self.cap + _EPS:
                best = k
        return best

    def value_delta(self, k: int) -> float:
        """Value gained by moving from option ``k`` to ``k + 1``."""
        return self.values[k + 1] - self.values[k]

    def weight_delta(self, k: int) -> float:
        """Weight added by moving from option ``k`` to ``k + 1``."""
        return self.weights[k + 1] - self.weights[k]

    def density(self, k: int) -> float:
        """Marginal value per unit weight for the ``k -> k+1`` upgrade."""
        return self.value_delta(k) / self.weight_delta(k)

    def is_concave(self, tol: float = 1e-7) -> bool:
        """True when the value curve has non-increasing increments."""
        deltas = [self.value_delta(k) for k in range(self.max_option)]
        return all(b <= a + tol for a, b in zip(deltas, deltas[1:]))

    def is_convex_weights(self, tol: float = 1e-7) -> bool:
        """True when the weight curve has non-decreasing increments."""
        deltas = [self.weight_delta(k) for k in range(self.max_option)]
        return all(b >= a - tol for a, b in zip(deltas, deltas[1:]))

    def has_decreasing_density(self, tol: float = 1e-7) -> bool:
        """True when marginal densities are non-increasing.

        This is the property (implied by concave values + convex
        weights with positive increments) that makes the greedy sweep
        of Algorithm 1 well ordered.
        """
        dens = [self.density(k) for k in range(self.max_option)]
        return all(b <= a + tol for a, b in zip(dens, dens[1:]))


@dataclass(frozen=True)
class Solution:
    """A (not necessarily optimal) assignment of options to items."""

    options: Tuple[int, ...]
    value: float
    weight: float

    def __iter__(self):
        return iter(self.options)


@dataclass
class SeparableKnapsack:
    """A separable nonlinear knapsack instance.

    Parameters
    ----------
    items:
        One :class:`ItemCurve` per item.
    budget:
        Global weight budget (``B(t)``).
    allow_skip:
        When True, an item may be dropped entirely (option ``-1``),
        contributing zero weight and the value ``skip_values[n]``.
        The paper's model always delivers at least level 1; the system
        emulation enables skipping to survive estimate overshoot.
    skip_values:
        Per-item value of skipping (default 0 for every item).
    group_of:
        Optional group index per item.  With ``group_budgets`` this
        adds one shared-budget constraint per group — in the VR
        system, the per-router air-time that the paper's single
        ``B(t)`` aggregates away.
    group_budgets:
        Weight budget of each group (indexed by the values appearing
        in ``group_of``).
    """

    items: List[ItemCurve]
    budget: float
    allow_skip: bool = False
    skip_values: Sequence[float] = field(default_factory=tuple)
    group_of: Sequence[int] = None
    group_budgets: Sequence[float] = None

    def __post_init__(self) -> None:
        if not self.items:
            raise ConfigurationError("a knapsack instance needs at least one item")
        if self.budget < 0:
            raise ConfigurationError(f"budget must be non-negative, got {self.budget}")
        if self.skip_values and len(self.skip_values) != len(self.items):
            raise ConfigurationError(
                "skip_values must have one entry per item when provided"
            )
        if self.allow_skip and not self.skip_values:
            self.skip_values = tuple(0.0 for _ in self.items)
        if (self.group_of is None) != (self.group_budgets is None):
            raise ConfigurationError(
                "group_of and group_budgets must be provided together"
            )
        if self.group_of is not None:
            if len(self.group_of) != len(self.items):
                raise ConfigurationError(
                    "group_of must have one entry per item"
                )
            for g in self.group_of:
                if not 0 <= g < len(self.group_budgets):
                    raise ConfigurationError(
                        f"group index {g} outside 0..{len(self.group_budgets) - 1}"
                    )
            for budget in self.group_budgets:
                if budget < 0:
                    raise ConfigurationError(
                        f"group budgets must be non-negative, got {budget}"
                    )

    @property
    def num_groups(self) -> int:
        """Number of group constraints (0 when ungrouped)."""
        return len(self.group_budgets) if self.group_budgets is not None else 0

    def solve(self, order: str = "combined", strategy: str = "heap") -> Solution:
        """Solve with Algorithm 1's greedy family.

        ``order`` picks the attractiveness order — ``"density"``,
        ``"value"``, or ``"combined"`` (the paper's Algorithm 1, the
        better of the two).  ``strategy`` picks the implementation:
        ``"heap"`` is the O(log N)-per-upgrade fast path, and
        ``"reference"`` the direct O(N)-per-upgrade transcription kept
        as the equivalence oracle.  Both strategies return bit-identical
        solutions.
        """
        # Imported here because the greedy module imports this one.
        from repro.knapsack import greedy

        try:
            solver = {
                "density": greedy.density_greedy,
                "value": greedy.value_greedy,
                "combined": greedy.combined_greedy,
            }[order]
        except KeyError:
            raise ConfigurationError(
                f"unknown greedy order {order!r}; expected "
                "'density', 'value', or 'combined'"
            ) from None
        return solver(self, strategy=strategy)

    def group_weights(self, options: Sequence[int]) -> List[float]:
        """Total weight per group under an assignment."""
        if self.group_of is None:
            return []
        totals = [0.0] * len(self.group_budgets)
        for n, k in enumerate(options):
            totals[self.group_of[n]] += self.option_weight(n, k)
        return totals

    @property
    def num_items(self) -> int:
        return len(self.items)

    def base_weight(self) -> float:
        """Total weight when every item sits at its base option."""
        return sum(item.weights[0] for item in self.items)

    def base_is_feasible(self) -> bool:
        """True when assigning option 0 everywhere satisfies all caps."""
        if self.base_weight() > self.budget + _EPS:
            return False
        return all(item.weights[0] <= item.cap + _EPS for item in self.items)

    def option_value(self, n: int, k: int) -> float:
        """Value of item ``n`` at option ``k`` (-1 means skipped)."""
        if k < 0:
            if not self.allow_skip:
                raise ConfigurationError("skip option used but allow_skip is False")
            return float(self.skip_values[n])
        return self.items[n].values[k]

    def option_weight(self, n: int, k: int) -> float:
        """Weight of item ``n`` at option ``k`` (-1 means skipped)."""
        if k < 0:
            return 0.0
        return self.items[n].weights[k]

    def evaluate(self, options: Sequence[int]) -> Solution:
        """Evaluate an assignment, without checking feasibility."""
        if len(options) != self.num_items:
            raise ConfigurationError(
                f"expected {self.num_items} options, got {len(options)}"
            )
        value = sum(self.option_value(n, k) for n, k in enumerate(options))
        weight = sum(self.option_weight(n, k) for n, k in enumerate(options))
        return Solution(tuple(int(k) for k in options), value, weight)

    def is_feasible(self, options: Sequence[int]) -> bool:
        """True when the assignment satisfies caps, budget, and groups."""
        total = 0.0
        for n, k in enumerate(options):
            if k < -1 or k > self.items[n].max_option:
                return False
            if k == -1 and not self.allow_skip:
                return False
            w = self.option_weight(n, k)
            if k >= 0 and w > self.items[n].cap + _EPS:
                return False
            total += w
        if total > self.budget + _EPS:
            return False
        if self.group_of is not None:
            for g, weight in enumerate(self.group_weights(options)):
                if weight > self.group_budgets[g] + _EPS:
                    return False
        return True

    def base_solution(self) -> Solution:
        """The all-base assignment, degrading to skips when necessary.

        When the base assignment is infeasible and skipping is allowed,
        items with the worst base density are skipped until the budget
        holds.  When skipping is not allowed, raises
        :class:`InfeasibleAllocationError`.
        """
        options = [0] * self.num_items
        for n, item in enumerate(self.items):
            if item.weights[0] > item.cap + _EPS:
                if not self.allow_skip:
                    raise InfeasibleAllocationError(
                        f"item {n}: base weight {item.weights[0]} exceeds cap {item.cap}"
                    )
                options[n] = -1
        if self.is_feasible(options):
            return self.evaluate(options)
        if not self.allow_skip:
            total = sum(self.option_weight(n, k) for n, k in enumerate(options))
            raise InfeasibleAllocationError(
                f"base weight {total} exceeds budget {self.budget} "
                "(or a group budget)"
            )
        # Shed the least valuable base deliveries first: smallest
        # (value gain over skipping) per unit of base weight.  A shed
        # item relieves the global budget and its group's budget.
        candidates = [
            (
                (self.items[n].values[0] - float(self.skip_values[n]))
                / self.items[n].weights[0],
                n,
            )
            for n, k in enumerate(options)
            if k == 0
        ]
        candidates.sort()
        for _, n in candidates:
            if self.is_feasible(options):
                break
            # Shed only where it helps: when the global budget is
            # over, or this item's own group is over.
            total = sum(self.option_weight(i, k) for i, k in enumerate(options))
            helps = total > self.budget + _EPS
            if not helps and self.group_of is not None:
                group_weight = self.group_weights(options)[self.group_of[n]]
                helps = group_weight > self.group_budgets[self.group_of[n]] + _EPS
            if helps:
                options[n] = -1
        if not self.is_feasible(options):
            raise InfeasibleAllocationError(
                f"cannot satisfy budget {self.budget} even with all items skipped"
            )
        return self.evaluate(options)
