"""Exact solvers for the separable nonlinear knapsack.

Two implementations are provided:

* :func:`solve_exact` — depth-first branch-and-bound over the option
  menus.  This is the paper's "brute force" offline optimum
  (Section IV uses it for the 5-user simulations), made practical for
  slightly larger instances by budget and value-bound pruning.
* :func:`solve_dynamic_programming` — pseudo-polynomial DP over a
  discretised weight axis; useful as an independent cross-check and
  for instances too large for branch-and-bound.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError, InfeasibleAllocationError
from repro.knapsack.problem import SeparableKnapsack, Solution

_EPS = 1e-9


def _allowed_options(problem: SeparableKnapsack, n: int) -> List[int]:
    """Options available to item ``n`` after applying its cap.

    Includes the skip option (-1) when the problem allows it.  Options
    are returned best-weight-first (lightest first) so that the DFS
    finds a feasible incumbent quickly.
    """
    item = problem.items[n]
    top = item.max_option_under_cap()
    options = list(range(top + 1))
    if problem.allow_skip:
        options = [-1] + options
    if not options:
        raise InfeasibleAllocationError(
            f"item {n}: no option satisfies cap {item.cap} and skipping is disabled"
        )
    return options


def solve_exact(problem: SeparableKnapsack) -> Solution:
    """Find the optimal assignment by branch-and-bound.

    Raises
    ------
    InfeasibleAllocationError
        When no assignment satisfies the caps and budget.
    """
    n_items = problem.num_items
    menus = [_allowed_options(problem, n) for n in range(n_items)]

    # Suffix bound: best per-item value ignoring the shared budget, and
    # minimal per-item weight, for items n..N-1.
    best_value_suffix = [0.0] * (n_items + 1)
    min_weight_suffix = [0.0] * (n_items + 1)
    for n in range(n_items - 1, -1, -1):
        best_value_suffix[n] = best_value_suffix[n + 1] + max(
            problem.option_value(n, k) for k in menus[n]
        )
        min_weight_suffix[n] = min_weight_suffix[n + 1] + min(
            problem.option_weight(n, k) for k in menus[n]
        )

    best: List[Optional[Tuple[float, Tuple[int, ...]]]] = [None]
    assignment = [0] * n_items
    group_weights = [0.0] * problem.num_groups

    def dfs(n: int, weight: float, value: float) -> None:
        if weight > problem.budget + _EPS:
            return
        if best[0] is not None:
            if value + best_value_suffix[n] <= best[0][0] + _EPS:
                return
        if weight + min_weight_suffix[n] > problem.budget + _EPS:
            return
        if n == n_items:
            if best[0] is None or value > best[0][0]:
                best[0] = (value, tuple(assignment))
            return
        group = problem.group_of[n] if problem.group_of is not None else None
        # Explore highest-value options first to tighten the incumbent.
        ordered = sorted(menus[n], key=lambda k: -problem.option_value(n, k))
        for k in ordered:
            w = problem.option_weight(n, k)
            if group is not None:
                if group_weights[group] + w > problem.group_budgets[group] + _EPS:
                    continue
                group_weights[group] += w
            assignment[n] = k
            dfs(n + 1, weight + w, value + problem.option_value(n, k))
            if group is not None:
                group_weights[group] -= w
        assignment[n] = 0

    dfs(0, 0.0, 0.0)
    if best[0] is None:
        raise InfeasibleAllocationError(
            f"no feasible assignment within budget {problem.budget}"
        )
    return problem.evaluate(best[0][1])


def solve_dynamic_programming(
    problem: SeparableKnapsack,
    resolution: int = 1000,
) -> Solution:
    """Approximately exact solve by DP over a discretised weight axis.

    Weights are scaled so the budget spans ``resolution`` integer
    units and rounded *up*, so every assignment the DP declares
    feasible is feasible in the original instance (the converse may
    fail for coarse resolutions: the DP optimum can be slightly below
    the true optimum, by at most the value affected by one weight unit
    per item).

    Parameters
    ----------
    resolution:
        Number of integer budget units; higher is tighter but slower.
        Runtime is ``O(num_items * num_options * resolution)``.
    """
    if problem.num_groups:
        raise ConfigurationError(
            "the weight-axis DP does not support group budgets; use solve_exact"
        )
    if problem.budget <= 0:
        # Degenerate: only zero-weight assignments are feasible.
        return solve_exact(problem)
    scale = resolution / problem.budget
    menus = [_allowed_options(problem, n) for n in range(problem.num_items)]
    int_weights = [
        [int(math.ceil(problem.option_weight(n, k) * scale - _EPS)) for k in menus[n]]
        for n in range(problem.num_items)
    ]

    NEG = float("-inf")
    # dp[w] = best value using a prefix of items with total weight w.
    dp: List[float] = [NEG] * (resolution + 1)
    dp[0] = 0.0
    choice: List[List[int]] = []  # choice[n][w] = option index chosen

    for n in range(problem.num_items):
        ndp = [NEG] * (resolution + 1)
        nchoice = [-2] * (resolution + 1)
        for w in range(resolution + 1):
            if dp[w] == NEG:
                continue
            for ki, k in enumerate(menus[n]):
                nw = w + int_weights[n][ki]
                if nw > resolution:
                    continue
                nv = dp[w] + problem.option_value(n, k)
                if nv > ndp[nw]:
                    ndp[nw] = nv
                    nchoice[nw] = k
        dp = ndp
        choice.append(nchoice)

    best_w = max(range(resolution + 1), key=lambda w: dp[w])
    if dp[best_w] == NEG:
        raise InfeasibleAllocationError(
            f"no feasible assignment within budget {problem.budget} at resolution {resolution}"
        )

    # Backtrack.
    options = [0] * problem.num_items
    w = best_w
    for n in range(problem.num_items - 1, -1, -1):
        k = choice[n][w]
        options[n] = k
        ki = menus[n].index(k)
        w -= int_weights[n][ki]
    return problem.evaluate(options)
