"""Relaxation bounds for the separable nonlinear knapsack.

The proof of Theorem 1 compares the greedy solutions against ``V_p``,
the optimum when the *last* upgrade may be granted fractionally.  When
every item has non-increasing marginal density (concave values +
convex, strictly increasing weights), ``V_p`` is computed exactly by
sweeping all upgrades in global density order and cutting the final
one to fit the residual budget.  That sweep is implemented here and
used both as a certified upper bound in tests of Theorem 1 and as the
pruning bound of the branch-and-bound exact solver.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.knapsack.problem import SeparableKnapsack


def _upgrade_pool(problem: SeparableKnapsack) -> List[Tuple[float, float, float]]:
    """Collect every cap-respecting upgrade as (density, dv, dw)."""
    pool: List[Tuple[float, float, float]] = []
    for item in problem.items:
        top = item.max_option_under_cap()
        for k in range(max(top, 0)):
            dv = item.value_delta(k)
            dw = item.weight_delta(k)
            if dv > 0:
                pool.append((dv / dw, dv, dw))
    return pool


def fractional_upper_bound(problem: SeparableKnapsack) -> float:
    """Upper bound on the optimal value via the fractional relaxation.

    Requires (and is only a *certified* bound under) non-increasing
    per-item marginal densities; with that property the global density
    sweep dominates every feasible integral assignment, mirroring
    ``V_p >= OPT`` in the paper's proof.  For inputs violating the
    property the function falls back to the looser bound
    ``base value + sum of positive value deltas``.
    """
    base = problem.base_solution()
    residual = problem.budget - base.weight
    pool = _upgrade_pool(problem)

    well_ordered = all(
        item.has_decreasing_density()
        for item in problem.items
        if item.max_option_under_cap() > 0
    )
    if not well_ordered:
        return base.value + sum(dv for _, dv, _w in pool)

    bound = base.value
    for _density, dv, dw in sorted(pool, reverse=True):
        if residual <= 0:
            break
        if dw <= residual:
            bound += dv
            residual -= dw
        else:
            bound += dv * residual / dw
            residual = 0.0
    return bound
