"""Random Theorem-1-class instance generators.

Used by the approximation-ratio studies (benchmarks, CLI) and by the
property-based tests: items have concave value curves and convex,
strictly increasing weight curves — exactly the structure under which
Theorem 1 guarantees the combined greedy at least half the optimum.
"""

from __future__ import annotations

import math

import numpy as np

from repro.knapsack.problem import ItemCurve, SeparableKnapsack


def random_concave_convex_item(
    rng: np.random.Generator,
    num_options: int = 6,
    cap: float = math.inf,
) -> ItemCurve:
    """One random item with Theorem-1 structure.

    Value deltas are positive and non-increasing (concavity); weight
    deltas are positive and non-decreasing (convexity).
    """
    value_deltas = np.sort(rng.uniform(0.05, 2.0, size=num_options - 1))[::-1]
    weight_deltas = np.sort(rng.uniform(0.5, 5.0, size=num_options - 1))
    values = [float(rng.uniform(0.0, 1.0))]
    weights = [float(rng.uniform(0.5, 3.0))]
    for dv, dw in zip(value_deltas, weight_deltas):
        values.append(values[-1] + float(dv))
        weights.append(weights[-1] + float(dw))
    return ItemCurve.from_sequences(values, weights, cap=cap)


def random_instance(
    rng: np.random.Generator,
    num_items: int = 4,
    num_options: int = 5,
    tightness: float = 0.5,
    with_caps: bool = False,
    num_groups: int = 0,
    allow_skip: bool = False,
) -> SeparableKnapsack:
    """A random Theorem-1-class knapsack instance.

    ``tightness`` interpolates the budget between the all-base weight
    (0.0) and the all-max weight (1.0).  ``num_groups > 0`` adds that
    many shared-budget group constraints (the per-router air-time of
    the real system) with random membership; ``allow_skip`` enables
    the option ``-1`` degradation path with random skip values.

    The extra draws for groups and skips happen *after* the base
    draws, so callers that keep the defaults see exactly the same
    random stream as before these knobs existed.
    """
    caps = (
        [float(rng.uniform(3.0, 25.0)) for _ in range(num_items)]
        if with_caps
        else [math.inf] * num_items
    )
    items = [
        random_concave_convex_item(rng, num_options, cap=caps[i])
        for i in range(num_items)
    ]
    base = sum(item.weights[0] for item in items)
    top = sum(item.weights[-1] for item in items)
    budget = base + tightness * (top - base)

    group_of = None
    group_budgets = None
    if num_groups > 0:
        group_of = [int(g) for g in rng.integers(0, num_groups, size=num_items)]
        group_budgets = []
        for g in range(num_groups):
            members = [i for i in range(num_items) if group_of[i] == g]
            g_base = sum(items[i].weights[0] for i in members)
            g_top = sum(items[i].weights[-1] for i in members)
            # A per-group tightness around the global one keeps some
            # groups binding and others slack.
            g_tight = float(rng.uniform(0.5, 1.2)) * tightness
            group_budgets.append(g_base + min(g_tight, 1.0) * (g_top - g_base))

    skip_values = (
        tuple(float(rng.uniform(-1.0, 1.0)) for _ in range(num_items))
        if allow_skip
        else tuple()
    )
    return SeparableKnapsack(
        items,
        budget,
        allow_skip=allow_skip,
        skip_values=skip_values,
        group_of=group_of,
        group_budgets=group_budgets,
    )
