"""Exception hierarchy for the library.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything produced by this package with a single
``except`` clause while still letting programming errors (``TypeError``
etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed with inconsistent parameters."""


class InfeasibleAllocationError(ReproError):
    """No feasible quality allocation exists for the given budgets.

    Raised by allocators when even the minimum quality level for every
    user exceeds the available throughput and degradation to "skip"
    (quality 0) has been disabled.
    """


class TraceError(ReproError):
    """A trace is malformed, empty, or exhausted."""


class SimulationError(ReproError):
    """The simulator reached an invalid internal state."""


class TransportError(ReproError):
    """The emulated transport was used incorrectly."""


class FrameCorruptError(TransportError):
    """A complete frame arrived but its body cannot be decoded.

    Framing stayed intact (the length prefix was honoured), so the
    stream is still synchronized: the receiver may quarantine the
    frame — drop it, count it — and keep reading.  Contrast with a
    plain :class:`TransportError`, which on the wire path means the
    framing itself is lost and the connection must go down.
    """


class ObservabilityError(ReproError):
    """The observability layer was misused or fed malformed data."""
