"""Shared unit conventions for the whole library.

The paper unifies the units of content size and network throughput "by
fixing each time slot duration" (Section II).  We adopt the same
convention throughout:

* **Rates and sizes** are expressed in *Mbps-equivalents*: the size of a
  piece of content is reported as the constant sending rate (in Mbps)
  required to deliver it within exactly one time slot.  With this
  convention the constraints (2)-(3) of the paper compare sizes and
  throughputs directly, with no conversion factors.
* **Delays** produced by the M/M/1 model (eq. 13) are dimensionless
  multiples of a slot's transmission budget; they convert to seconds by
  multiplying with :data:`SLOT_DURATION_S`.
* **Time** is slot-indexed (``t = 1, 2, ...`` as in the paper) unless a
  variable is explicitly suffixed ``_s`` for seconds.

These constants mirror the experimental configuration in Sections IV
and VI of the paper.
"""

from __future__ import annotations

#: Target display rate used throughout the paper (Section II).
TARGET_FPS: int = 60

#: Slot duration in seconds.  The paper quotes "15ms under 66 FPS" in
#: Section IV; we keep the canonical 60 FPS slot of ~16.7 ms as the
#: default and expose the 15 ms variant for the trace expansion code.
SLOT_DURATION_S: float = 1.0 / TARGET_FPS

#: Slot duration quoted in the trace-expansion passage of Section IV.
TRACE_SLOT_DURATION_S: float = 0.015

#: Number of quality levels (Section IV and VI: six CRF values).
DEFAULT_NUM_LEVELS: int = 6

#: CRF values used to encode the tiles (Section VI), ordered from the
#: *highest* quality (lowest CRF) to the lowest quality.
CRF_VALUES: tuple = (15, 19, 23, 27, 31, 35)

#: Network trace clamp bounds from Section IV (Mbps).
TRACE_MIN_MBPS: float = 20.0
TRACE_MAX_MBPS: float = 100.0

#: Per-user server budget rule from Section IV: the total bandwidth of
#: the server is 36 Mbps times the number of users.
SERVER_MBPS_PER_USER: float = 36.0

#: Length of each simulated network trace in seconds (Section IV).
TRACE_LENGTH_S: float = 300.0

#: QoE weights used by the trace-based simulation (Section IV).
SIM_ALPHA: float = 0.02
SIM_BETA: float = 0.5

#: QoE weights used by the real-system experiments (Section VI).
SYSTEM_ALPHA: float = 0.1
SYSTEM_BETA: float = 0.5

#: Throttle guidelines randomly assigned to users in the real-system
#: experiments (Section VI), in Mbps.
THROTTLE_GUIDELINES_MBPS: tuple = (40.0, 45.0, 50.0, 55.0, 60.0)

#: Server caps for the two real-system setups (Section VI), in Mbps.
SETUP1_SERVER_MBPS: float = 400.0
SETUP2_SERVER_MBPS: float = 800.0

#: Number of parallel hardware decoders per client (Section VI).
CLIENT_DECODERS: int = 5

#: Fraction of the panorama covered by the field of view (Section II:
#: "a user just needs to see about 20% of the panoramic view").
FOV_FRACTION: float = 0.20


def mbps_to_bits_per_slot(rate_mbps: float, slot_s: float = SLOT_DURATION_S) -> float:
    """Convert a rate in Mbps into the number of bits sent in one slot."""
    return rate_mbps * 1e6 * slot_s


def bits_per_slot_to_mbps(bits: float, slot_s: float = SLOT_DURATION_S) -> float:
    """Convert a per-slot bit count into its Mbps-equivalent rate."""
    return bits / (1e6 * slot_s)
