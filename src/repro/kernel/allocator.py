"""Drop-in allocator backed by the array kernel.

:class:`ArrayAllocator` satisfies the
:class:`~repro.core.allocation.QualityAllocator` interface, so every
caller of the object pipeline (scheduler, simulator, system
emulation, serve slot loop) can switch to the vectorized solver with
a config flag and get bit-identical allocations.  Whenever the fast
path cannot run — ragged level menus, or a priority structure the
sorted sweep refuses — it falls back to the object heap solver, so
correctness never depends on the vectorization applying.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.allocation import (
    QualityAllocator,
    SlotProblem,
    _options_to_levels,
)
from repro.errors import ConfigurationError
from repro.kernel.batch import SlotBatch
from repro.kernel.solver import solve_batch
from repro.knapsack import combined_greedy


@dataclass
class ArrayAllocator(QualityAllocator):
    """Algorithm 1 on flat arrays; bit-identical to the heap solver.

    ``fallbacks`` counts the slots that had to take the object-solver
    path (diagnostic only — results are identical either way).
    """

    name: str = field(default="density-value-greedy-array", init=False)
    fallbacks: int = field(default=0, init=False)

    def allocate(self, problem: SlotProblem) -> List[int]:
        try:
            batch = SlotBatch.from_problem(problem)
        except ConfigurationError:
            return self._fallback(problem)
        levels = solve_batch(batch)
        if levels is None:
            return self._fallback(problem)
        return [int(level) for level in levels]

    def allocate_batch(self, batch: SlotBatch) -> Optional[np.ndarray]:
        """Array-native entry point: levels per user, or ``None``.

        ``None`` means the sorted sweep refused this batch; callers
        that build batches directly must route the slot through an
        object :class:`~repro.core.allocation.SlotProblem` instead.
        """
        return solve_batch(batch)

    def _fallback(self, problem: SlotProblem) -> List[int]:
        self.fallbacks += 1
        solution = combined_greedy(problem.to_knapsack(), strategy="heap")
        return _options_to_levels(solution.options)

    def reset(self) -> None:
        self.fallbacks = 0
