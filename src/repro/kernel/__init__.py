"""Array-native slot kernel: vectorized predict → allocate → encode.

One slot of the collaborative-VR pipeline, expressed as flat numpy
arrays instead of ``N`` per-user objects:

- :class:`~repro.kernel.batch.SlotBatch` — the ``(N, L)`` view of a
  slot's sizes/delays/statistics, with a vectorized eq. (9) gain
  matrix and :func:`~repro.kernel.batch.mm1_delay_matrix`.
- :func:`~repro.kernel.solver.solve_arrays` /
  :func:`~repro.kernel.solver.solve_batch` — Algorithm 1 as a sorted
  sweep over candidate upgrades, bit-identical to the object heap
  solver whenever its fast-path preconditions hold (and refusing —
  returning ``None`` — when they do not, so callers fall back).
- :class:`~repro.kernel.allocator.ArrayAllocator` — drop-in
  :class:`~repro.core.allocation.QualityAllocator` backed by the
  array solver with automatic object-solver fallback.
- :class:`~repro.kernel.predict.BatchMotionPredictor` — all users'
  linear-regression motion fits in one sweep.
- :class:`~repro.kernel.coverage.BatchCoverage` — vectorized FoV
  coverage indicators sharing the scalar evaluator's exact caches.

See the "Slot kernel" section of ``benchmarks/perf/README.md`` for
layout and performance notes.
"""

from repro.kernel.allocator import ArrayAllocator
from repro.kernel.batch import SlotBatch, mm1_delay_matrix
from repro.kernel.coverage import BatchCoverage
from repro.kernel.predict import BatchMotionPredictor
from repro.kernel.solver import ArraySolution, solve_arrays, solve_batch

__all__ = [
    "ArrayAllocator",
    "ArraySolution",
    "BatchCoverage",
    "BatchMotionPredictor",
    "SlotBatch",
    "mm1_delay_matrix",
    "solve_arrays",
    "solve_batch",
]
