"""Flat-array view of one slot's allocation inputs.

The object pipeline builds a :class:`~repro.core.allocation.SlotProblem`
out of ``N`` per-user dataclasses and evaluates eq. (9) one closure
call at a time.  :class:`SlotBatch` carries the same information as a
handful of ``(N, L)`` / ``(N,)`` numpy arrays, so the gain matrix, the
M/M/1 delays, and the greedy candidate sort are each one vectorized
sweep.  All arithmetic matches the scalar path bit-for-bit:
``gain_matrix()[n, q-1] == slot_objective(q, ...)`` exactly (the
scalar objective squares via multiplication for this reason), and
:func:`mm1_delay_matrix` replicates
:meth:`~repro.simulation.delaymodel.MM1DelayModel.delay` branch by
branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.allocation import SlotProblem
from repro.core.qoe import QoEWeights
from repro.errors import ConfigurationError

_EPS = 1e-9


def mm1_delay_matrix(
    rates: np.ndarray,
    bandwidth_mbps: np.ndarray,
    max_delay: float = 100.0,
) -> np.ndarray:
    """Vectorized eq. (13): ``d = min(f / (B - f), max_delay)``.

    ``rates`` is ``(N, L)`` and ``bandwidth_mbps`` is ``(N,)``; the
    result matches ``MM1DelayModel(max_delay).delay(rates[n, k], B[n])``
    bit-for-bit, including the zero-bandwidth and saturation guards.
    """
    if max_delay <= 0:
        raise ConfigurationError(f"max_delay must be positive, got {max_delay}")
    rates = np.asarray(rates, dtype=float)
    bandwidth = np.asarray(bandwidth_mbps, dtype=float)[:, None]
    if np.any(rates < 0):
        raise ConfigurationError("rates must be non-negative")
    with np.errstate(divide="ignore", invalid="ignore"):
        queueing = rates / (bandwidth - rates)
    delays = np.minimum(queueing, max_delay)
    # rate >= bandwidth diverges (or goes negative past the pole).
    delays = np.where(rates >= bandwidth, max_delay, delays)
    # Dead link: max_delay when anything is sent, 0 when idle.
    dead = bandwidth <= 0
    delays = np.where(dead & (rates > 0), max_delay, delays)
    delays = np.where(dead & (rates <= 0), 0.0, delays)
    return delays


@dataclass(frozen=True)
class SlotBatch:
    """All users' per-slot inputs as flat arrays.

    Attributes mirror :class:`~repro.core.allocation.SlotProblem` /
    :class:`~repro.core.allocation.UserSlotState` field by field;
    ``sizes`` and ``delays`` are ``(N, L)``, the per-user statistics
    are ``(N,)``.  Rows of ``sizes`` must be strictly increasing — the
    same contract :class:`~repro.knapsack.problem.ItemCurve` enforces.
    """

    t: int
    sizes: np.ndarray
    delays: np.ndarray
    delta: np.ndarray
    qbar: np.ndarray
    caps_mbps: np.ndarray
    budget_mbps: float
    weights: QoEWeights
    allow_skip: bool = False
    router_of: Optional[np.ndarray] = None
    router_budgets_mbps: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.t < 1:
            raise ConfigurationError(f"slot index must be >= 1, got {self.t}")
        if self.sizes.ndim != 2 or self.sizes.shape[1] < 1:
            raise ConfigurationError(
                f"sizes must be (N, L) with L >= 1, got {self.sizes.shape}"
            )
        if self.delays.shape != self.sizes.shape:
            raise ConfigurationError(
                f"delays shape {self.delays.shape} != sizes shape {self.sizes.shape}"
            )
        n = self.sizes.shape[0]
        for name in ("delta", "qbar", "caps_mbps"):
            if getattr(self, name).shape != (n,):
                raise ConfigurationError(
                    f"{name} must have shape ({n},), got {getattr(self, name).shape}"
                )
        if self.budget_mbps < 0:
            raise ConfigurationError(
                f"budget must be non-negative, got {self.budget_mbps}"
            )
        if np.any(self.delta < 0.0) or np.any(self.delta > 1.0):
            raise ConfigurationError("delta must be in [0, 1]")
        if self.sizes.shape[1] > 1 and np.any(
            np.diff(self.sizes, axis=1) <= _EPS
        ):
            raise ConfigurationError("size rows must be strictly increasing")
        if (self.router_of is None) != (self.router_budgets_mbps is None):
            raise ConfigurationError(
                "router_of and router_budgets_mbps must be provided together"
            )
        if self.router_of is not None and self.router_of.shape != (n,):
            raise ConfigurationError("router_of must have one entry per user")

    @property
    def num_users(self) -> int:
        return int(self.sizes.shape[0])

    @property
    def num_levels(self) -> int:
        return int(self.sizes.shape[1])

    @classmethod
    def from_problem(cls, problem: SlotProblem) -> "SlotBatch":
        """Flatten a :class:`SlotProblem` (rectangular level menus only).

        Raises :class:`~repro.errors.ConfigurationError` when users
        disagree on the number of levels; the
        :class:`~repro.kernel.allocator.ArrayAllocator` catches that
        and falls back to the object solver.
        """
        num_levels = problem.num_levels
        for user in problem.users:
            if len(user.sizes) != num_levels:
                raise ConfigurationError(
                    "SlotBatch requires a rectangular level menu; got "
                    f"{len(user.sizes)} levels vs {num_levels}"
                )
        sizes = np.array([user.sizes for user in problem.users], dtype=float)
        # Delay closures are the one per-user part that cannot be
        # flattened generically; evaluate them on the same python
        # floats the object path feeds them.
        delays = np.array(
            [
                [user.delay_of_rate(user.sizes[k]) for k in range(num_levels)]
                for user in problem.users
            ],
            dtype=float,
        )
        return cls(
            t=problem.t,
            sizes=sizes,
            delays=delays,
            delta=np.array([user.delta for user in problem.users], dtype=float),
            qbar=np.array([user.qbar for user in problem.users], dtype=float),
            caps_mbps=np.array(
                [user.cap_mbps for user in problem.users], dtype=float
            ),
            budget_mbps=problem.budget_mbps,
            weights=problem.weights,
            allow_skip=problem.allow_skip,
            router_of=(
                np.array(problem.router_of, dtype=np.int64)
                if problem.router_of is not None
                else None
            ),
            router_budgets_mbps=(
                np.array(problem.router_budgets_mbps, dtype=float)
                if problem.router_budgets_mbps is not None
                else None
            ),
        )

    def gain_matrix(self) -> np.ndarray:
        """``(N, L)`` matrix of eq. (9): entry ``[n, q-1]`` is ``h_n(q)``.

        Bit-identical to
        :func:`repro.core.decomposition.slot_objective` evaluated per
        entry — same operation order, squares via multiplication.
        """
        levels = np.arange(1, self.num_levels + 1, dtype=float)[None, :]
        ratio = (self.t - 1) / self.t
        delta = self.delta[:, None]
        qbar = self.qbar[:, None]
        deviation = levels - qbar
        variance_penalty = delta * ratio * (deviation * deviation) + (
            1.0 - delta
        ) * ratio * (qbar * qbar)
        return (
            delta * levels
            - self.weights.alpha * self.delays
            - self.weights.beta * variance_penalty
        )

    def skip_values(self) -> np.ndarray:
        """``(N,)`` vector of ``h_n(0)`` — the value of skipping."""
        ratio = (self.t - 1) / self.t
        return -self.weights.beta * ratio * (self.qbar * self.qbar)

    def nbytes(self) -> int:
        """Memory footprint of the batch arrays (documentation aid)."""
        total = self.sizes.nbytes + self.delays.nbytes
        total += self.delta.nbytes + self.qbar.nbytes + self.caps_mbps.nbytes
        if self.router_of is not None:
            total += self.router_of.nbytes
        if self.router_budgets_mbps is not None:
            total += self.router_budgets_mbps.nbytes
        return int(total)
