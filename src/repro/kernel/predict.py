"""Batched linear-regression motion prediction across users.

:class:`~repro.prediction.motion.LinearMotionPredictor` fits one user
at a time; a 10k-user slot pays 10k python fits.
:class:`BatchMotionPredictor` keeps every user's sliding window in one
``(N, window, 6)`` ring buffer and fits all users of equal history
length in a single vectorized sweep, using exactly the arithmetic of
the per-user predictor (same closed-form slope, same unwrap/clamp/wrap
post-processing) so predictions agree bit-for-bit — property-tested
in ``tests/kernel/test_batch_predictor.py``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.prediction.motion import _ANGULAR_AXES, _PITCH_AXIS, _unwrap_deg


class BatchMotionPredictor:
    """Across-user batched twin of ``LinearMotionPredictor``.

    Users are addressed by index ``0..num_users-1``; each keeps an
    independent sliding window, observed and predicted for the whole
    population at once.  Users with no observations predict NaN rows
    (the per-user predictor returns ``None``); a single observation
    predicts the last pose unchanged, like the scalar fallback.
    """

    def __init__(self, num_users: int, window: int = 10, horizon: int = 1) -> None:
        if num_users < 1:
            raise ConfigurationError(f"num_users must be >= 1, got {num_users}")
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        if horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
        self.num_users = num_users
        self.window = window
        self.horizon = horizon
        self._buffer = np.zeros((num_users, window, 6), dtype=float)
        self._counts = np.zeros(num_users, dtype=np.int64)
        self._starts = np.zeros(num_users, dtype=np.int64)

    @property
    def num_observations(self) -> np.ndarray:
        """Window fill per user (capped at ``window``)."""
        return self._counts.copy()

    def observe(
        self, vectors: np.ndarray, mask: Optional[np.ndarray] = None
    ) -> None:
        """Record this slot's measured pose vectors.

        ``vectors`` is ``(num_users, 6)``; ``mask`` selects the users
        that actually reported (all of them by default) — unmasked
        users keep their window untouched, like a scalar predictor
        that simply was not called.
        """
        vectors = np.asarray(vectors, dtype=float)
        if vectors.shape != (self.num_users, 6):
            raise ConfigurationError(
                f"vectors must be ({self.num_users}, 6), got {vectors.shape}"
            )
        if mask is None:
            users = np.arange(self.num_users, dtype=np.int64)
        else:
            users = np.nonzero(np.asarray(mask, dtype=bool))[0]
        if users.size == 0:
            return
        full = self._counts[users] >= self.window
        slots = np.where(full, self._starts[users], self._counts[users])
        self._buffer[users, slots] = vectors[users]
        self._counts[users] = np.minimum(self._counts[users] + 1, self.window)
        self._starts[users] = np.where(
            full, (self._starts[users] + 1) % self.window, self._starts[users]
        )

    def reset_user(self, user: int) -> None:
        """Forget one user's history (teleport / seat reuse)."""
        if not 0 <= user < self.num_users:
            raise ConfigurationError(
                f"user index must be in [0, {self.num_users}), got {user}"
            )
        self._counts[user] = 0
        self._starts[user] = 0

    def reset(self) -> None:
        """Forget all history."""
        self._counts[:] = 0
        self._starts[:] = 0

    def _ordered_history(self, users: np.ndarray, length: int) -> np.ndarray:
        """``(G, length, 6)`` windows in observation order."""
        offsets = (self._starts[users, None] + np.arange(length, dtype=np.int64)) % self.window
        return self._buffer[users[:, None], offsets]

    def predict(self, horizon: Optional[int] = None) -> np.ndarray:
        """``(num_users, 6)`` predicted pose vectors for the next slot.

        Rows of users with no observations are NaN.  Bit-identical to
        calling ``LinearMotionPredictor.predict`` per user.
        """
        h = self.horizon if horizon is None else horizon
        if h < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {h}")
        out = np.full((self.num_users, 6), np.nan, dtype=float)
        singles = np.nonzero(self._counts == 1)[0]
        if singles.size:
            out[singles] = self._buffer[singles, 0]
        for length in np.unique(self._counts[self._counts >= 2]).tolist():
            users = np.nonzero(self._counts == length)[0]
            data = self._ordered_history(users, length)
            out[users] = self._fit(data, length, h)
        return out

    @staticmethod
    def _fit(data: np.ndarray, length: int, horizon: int) -> np.ndarray:
        """Vectorized least-squares fit, one group of equal windows.

        The arithmetic mirrors ``LinearMotionPredictor.predict`` line
        by line (same intermediate expressions, same reduction
        lengths), which is what makes the results bit-identical.
        """
        times = np.arange(length, dtype=float)
        target_t = float(length - 1 + horizon)
        t_mean = times.mean()
        centered_t = times - t_mean
        denom = float((centered_t ** 2).sum())
        predicted = np.empty((data.shape[0], 6), dtype=float)
        for axis in range(6):
            series = data[:, :, axis]
            if axis in _ANGULAR_AXES:
                series = _unwrap_deg(series)
            s_mean = series.mean(axis=-1)
            slope = (centered_t * (series - s_mean[:, None])).sum(axis=-1) / denom
            predicted[:, axis] = s_mean + slope * (target_t - t_mean)
        predicted[:, _PITCH_AXIS] = np.minimum(
            np.maximum(predicted[:, _PITCH_AXIS], -90.0), 90.0
        )
        for axis in _ANGULAR_AXES:
            predicted[:, axis] = (predicted[:, axis] + 180.0) % 360.0 - 180.0
        return predicted
