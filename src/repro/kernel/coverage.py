"""Vectorized FoV-coverage indicators over a user population.

The scalar :class:`~repro.prediction.fov.CoverageEvaluator` answers
one user at a time: tile-overlap queries through an exact
yaw-bucket / pitch-row memo, then a cell-proximity plus
tile-subset check.  :class:`BatchCoverage` evaluates all ``N`` users
of a slot at once: the bucket keys are computed with array
arithmetic (replicating the scalar key derivation bit-for-bit), the
distinct keys of the slot — a handful, the key space is tiny — are
resolved through the evaluator's own memo, and the subset check runs
on tile *bitmasks* (the paper's grid has four tiles, so a mask is one
small integer).

When the evaluator's exact bucket does not exist (cache disabled or
non-integral geometry), the batch path degrades to calling the scalar
evaluator per user — slower, never different.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

import numpy as np

from repro.content.projection import FieldOfView
from repro.errors import ConfigurationError
from repro.prediction.fov import CoverageEvaluator
from repro.prediction.pose import Pose

#: Bound on the bitmask memos, mirroring the scalar evaluator's
#: tile-cache guard.
_MASK_CACHE_LIMIT = 65536


def _mask_of(tiles: FrozenSet[int]) -> int:
    mask = 0
    for tile in tiles:
        mask |= 1 << tile
    return mask


class BatchCoverage:
    """Slot-wide ``1_n(t)`` evaluation on arrays.

    Wraps a :class:`CoverageEvaluator` and reproduces its
    :meth:`~repro.prediction.fov.CoverageEvaluator.evaluate` decision
    for every user in one call.  Cells are taken as arrays (callers
    already vectorize :meth:`~repro.content.tiles.GridWorld.cells_of`).
    """

    def __init__(self, evaluator: CoverageEvaluator) -> None:
        self.evaluator = evaluator
        self._deliver_masks: Dict[Tuple[int, int, int], int] = {}
        self._needed_masks: Dict[Tuple[int, int, int], int] = {}

    def _keys(
        self, yaw: np.ndarray, pitch: np.ndarray, fov: FieldOfView, bucket: float
    ) -> np.ndarray:
        """``(N, 3)`` exact memo keys — the scalar key math on arrays."""
        half_h = fov.horizontal_deg / 2.0
        half_v = fov.vertical_deg / 2.0
        yaw_lo = yaw - half_h
        if np.isinf(bucket):
            yaw_key = np.zeros(yaw.shape, dtype=np.int64)
        else:
            wrapped = (yaw_lo + 180.0) % 360.0 - 180.0
            yaw_key = np.floor(wrapped / bucket).astype(np.int64)
        rows = self.evaluator.grid.rows
        pitch_lo = np.maximum(pitch - half_v, -90.0)
        pitch_hi = np.minimum(pitch + half_v, 90.0)
        row_lo = np.minimum(
            ((90.0 - pitch_lo) / 180.0 * rows).astype(np.int64), rows - 1
        )
        row_hi = np.minimum(
            ((90.0 - pitch_hi) / 180.0 * rows).astype(np.int64), rows - 1
        )
        return np.stack([yaw_key, row_lo, row_hi], axis=1)

    def _tile_masks(
        self,
        yaw: np.ndarray,
        pitch: np.ndarray,
        fov: FieldOfView,
        bucket: float,
        masks: Dict[Tuple[int, int, int], int],
    ) -> np.ndarray:
        """Per-user delivered/needed tile sets as integer bitmasks."""
        keys = self._keys(yaw, pitch, fov, bucket)
        unique, first_index, inverse = np.unique(
            keys, axis=0, return_index=True, return_inverse=True
        )
        unique_masks = np.empty(unique.shape[0], dtype=np.int64)
        for i in range(unique.shape[0]):
            key = (int(unique[i, 0]), int(unique[i, 1]), int(unique[i, 2]))
            mask = masks.get(key)
            if mask is None:
                if len(masks) >= _MASK_CACHE_LIMIT:
                    masks.clear()
                representative = int(first_index[i])
                tiles = self.evaluator.grid.tiles_overlapping(
                    float(yaw[representative]), float(pitch[representative]), fov
                )
                mask = masks[key] = _mask_of(tiles)
            unique_masks[i] = mask
        return unique_masks[inverse]

    def indicators(
        self,
        predicted_yaw: np.ndarray,
        predicted_pitch: np.ndarray,
        actual_yaw: np.ndarray,
        actual_pitch: np.ndarray,
        predicted_cells: np.ndarray,
        actual_cells: np.ndarray,
    ) -> np.ndarray:
        """``1_n(t)`` per user — identical to scalar ``evaluate``."""
        arrays = [
            np.asarray(a, dtype=float)
            for a in (predicted_yaw, predicted_pitch, actual_yaw, actual_pitch)
        ]
        predicted_yaw, predicted_pitch, actual_yaw, actual_pitch = arrays
        predicted_cells = np.asarray(predicted_cells, dtype=np.int64)
        actual_cells = np.asarray(actual_cells, dtype=np.int64)
        num = predicted_yaw.shape[0]
        for a in (predicted_pitch, actual_yaw, actual_pitch,
                  predicted_cells, actual_cells):
            if a.shape != (num,):
                raise ConfigurationError(
                    "all batch coverage inputs must share one (N,) shape"
                )
        evaluator = self.evaluator
        deliver_bucket = evaluator._deliver_bucket
        needed_bucket = evaluator._needed_bucket
        if deliver_bucket is None or needed_bucket is None:
            return self._indicators_scalar(
                predicted_yaw, predicted_pitch, actual_yaw, actual_pitch,
                predicted_cells, actual_cells,
            )
        delivered = self._tile_masks(
            predicted_yaw, predicted_pitch, evaluator._delivery_fov,
            deliver_bucket, self._deliver_masks,
        )
        needed = self._tile_masks(
            actual_yaw, actual_pitch, evaluator.fov,
            needed_bucket, self._needed_masks,
        )
        world_cols = evaluator.world.cols
        row_a, col_a = np.divmod(predicted_cells, world_cols)
        row_b, col_b = np.divmod(actual_cells, world_cols)
        tolerance = evaluator.cell_tolerance
        close = (np.abs(row_a - row_b) <= tolerance) & (
            np.abs(col_a - col_b) <= tolerance
        )
        covered = close & ((needed & ~delivered) == 0)
        return covered.astype(np.int64)

    def _indicators_scalar(
        self,
        predicted_yaw: np.ndarray,
        predicted_pitch: np.ndarray,
        actual_yaw: np.ndarray,
        actual_pitch: np.ndarray,
        predicted_cells: np.ndarray,
        actual_cells: np.ndarray,
    ) -> np.ndarray:
        """Per-user fallback when no exact bucket exists."""
        out = np.empty(predicted_yaw.shape[0], dtype=np.int64)
        for n in range(out.size):
            outcome = self.evaluator.evaluate(
                Pose(0.0, 0.0, 0.0,
                     float(predicted_yaw[n]), float(predicted_pitch[n]), 0.0),
                Pose(0.0, 0.0, 0.0,
                     float(actual_yaw[n]), float(actual_pitch[n]), 0.0),
                predicted_cell=int(predicted_cells[n]),
                actual_cell=int(actual_cells[n]),
            )
            out[n] = outcome.indicator
        return out
