"""Benchmark the array kernel against the per-user-object pipeline.

:func:`bench_kernel` builds a seeded population of ``N`` users with
``L``-level rate curves and times one slot of the allocation pipeline
both ways:

* **object arm** — per-user :class:`UserSlotState` dataclasses with
  M/M/1 delay closures, a :class:`SlotProblem`, and the heap-based
  :class:`DensityValueGreedyAllocator` (the pre-kernel hot path);
* **array arm** — :func:`~repro.kernel.batch.mm1_delay_matrix`, a
  :class:`~repro.kernel.batch.SlotBatch`, and
  :meth:`~repro.kernel.allocator.ArrayAllocator.allocate_batch`, with
  matrix construction inside the timed region.

Both arms must produce identical level vectors on every slot — a
mismatch fails loudly (``solutions_identical`` is what CI gates on).
Batched motion prediction and FoV coverage are timed the same way
against their scalar twins.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.content.projection import FieldOfView
from repro.content.tiles import GridWorld, TileGrid
from repro.core.allocation import (
    DensityValueGreedyAllocator,
    SlotProblem,
    UserSlotState,
)
from repro.core.qoe import QoEWeights
from repro.errors import ConfigurationError
from repro.kernel.allocator import ArrayAllocator
from repro.kernel.batch import SlotBatch, mm1_delay_matrix
from repro.kernel.coverage import BatchCoverage
from repro.kernel.predict import BatchMotionPredictor
from repro.prediction.fov import CoverageEvaluator
from repro.prediction.motion import LinearMotionPredictor
from repro.prediction.pose import Pose
from repro.simulation.delaymodel import MM1DelayModel


def _best_of(repeats: int, fn: Callable[[], object]) -> float:
    """Minimum wall-clock over ``repeats`` calls (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _slot_inputs(
    rng: np.random.Generator, num_users: int, num_levels: int
) -> Dict[str, np.ndarray]:
    """One slot's seeded raw inputs, shared by both arms."""
    base = rng.uniform(0.5, 3.0, size=num_users)
    sizes = base[:, None] * 1.5 ** np.arange(num_levels, dtype=np.int64)[None, :]
    base_total = float(np.sum(sizes[:, 0]))
    top_total = float(np.sum(sizes[:, -1]))
    return {
        "sizes": sizes,
        "caps": rng.uniform(20.0, 100.0, size=num_users),
        "delta": rng.uniform(0.6, 1.0, size=num_users),
        "qbar": rng.uniform(0.0, float(num_levels), size=num_users),
        "budget": np.array(base_total + 0.4 * (top_total - base_total), dtype=float),
    }


def _object_slot(
    inputs: Dict[str, np.ndarray],
    t: int,
    weights: QoEWeights,
    model: MM1DelayModel,
    allocator: DensityValueGreedyAllocator,
) -> List[int]:
    """The per-user-object pipeline, end to end, for one slot."""
    sizes = inputs["sizes"]
    caps = inputs["caps"]
    users = tuple(
        UserSlotState(
            sizes=tuple(sizes[n]),
            delay_of_rate=model.delay_fn(float(caps[n])),
            delta=float(inputs["delta"][n]),
            qbar=float(inputs["qbar"][n]),
            cap_mbps=float(caps[n]),
        )
        for n in range(sizes.shape[0])
    )
    problem = SlotProblem(
        t=t, users=users, budget_mbps=float(inputs["budget"]), weights=weights
    )
    return allocator.allocate(problem)


def _array_slot(
    inputs: Dict[str, np.ndarray],
    t: int,
    weights: QoEWeights,
    allocator: ArrayAllocator,
) -> np.ndarray:
    """The array-kernel pipeline (matrix construction included)."""
    sizes = inputs["sizes"]
    batch = SlotBatch(
        t=t,
        sizes=sizes,
        delays=mm1_delay_matrix(sizes, inputs["caps"]),
        delta=inputs["delta"],
        qbar=inputs["qbar"],
        caps_mbps=inputs["caps"],
        budget_mbps=float(inputs["budget"]),
        weights=weights,
    )
    levels = allocator.allocate_batch(batch)
    if levels is None:
        raise ConfigurationError("array kernel refused a benchmark slot")
    return levels


def _bench_predictor(
    rng: np.random.Generator, num_users: int, window: int, repeats: int
) -> Dict[str, object]:
    """Batched vs per-user linear-regression fits on one population."""
    steps = window + 2
    walks = np.cumsum(rng.normal(0.0, 2.0, size=(steps, num_users, 6)), axis=0)
    walks[:, :, 4] = np.clip(walks[:, :, 4], -90.0, 90.0)
    batch = BatchMotionPredictor(num_users, window=window)
    scalars = [LinearMotionPredictor(window=window) for _ in range(num_users)]
    for step in range(steps):
        # Both arms must see what the pipeline feeds them: pose
        # vectors whose angles have been wrapped by the Pose type
        # (the wrap is not a bit-exact identity on raw walk floats).
        poses = [Pose(*walks[step, n]) for n in range(num_users)]
        batch.observe(np.array([p.as_vector() for p in poses], dtype=float))
        for n in range(num_users):
            scalars[n].observe(poses[n])

    def scalar_pass() -> List[Pose]:
        return [p.predict() for p in scalars]

    batch_s = _best_of(repeats, batch.predict)
    scalar_s = _best_of(repeats, scalar_pass)
    got = batch.predict()
    want = np.array([p.as_vector() for p in scalar_pass()], dtype=float)
    return {
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "speedup": scalar_s / batch_s,
        "identical": bool(np.array_equal(got, want)),
    }


def _bench_coverage(
    rng: np.random.Generator, num_users: int, repeats: int
) -> Dict[str, object]:
    """Batched vs per-user coverage indicators on one population."""
    world = GridWorld()
    evaluator = CoverageEvaluator(world, TileGrid(), FieldOfView())
    batch = BatchCoverage(evaluator)
    pyaw = rng.uniform(-180.0, 180.0, size=num_users)
    ppitch = rng.uniform(-90.0, 90.0, size=num_users)
    ayaw = pyaw + rng.normal(0.0, 10.0, size=num_users)
    ayaw = (ayaw + 180.0) % 360.0 - 180.0
    apitch = np.clip(ppitch + rng.normal(0.0, 5.0, size=num_users), -90.0, 90.0)
    pcell = rng.integers(0, world.rows * world.cols, size=num_users)
    offset = rng.integers(-1, 2, size=num_users)
    acell = np.clip(pcell + offset, 0, world.rows * world.cols - 1)

    def scalar_pass() -> List[int]:
        return [
            evaluator.evaluate(
                Pose(0.0, 0.0, 0.0, float(pyaw[n]), float(ppitch[n]), 0.0),
                Pose(0.0, 0.0, 0.0, float(ayaw[n]), float(apitch[n]), 0.0),
                predicted_cell=int(pcell[n]),
                actual_cell=int(acell[n]),
            ).indicator
            for n in range(num_users)
        ]

    def batch_pass() -> np.ndarray:
        return batch.indicators(pyaw, ppitch, ayaw, apitch, pcell, acell)

    batch_s = _best_of(repeats, batch_pass)
    scalar_s = _best_of(repeats, scalar_pass)
    identical = bool(np.array_equal(batch_pass(), np.array(scalar_pass(), dtype=np.int64)))
    return {
        "scalar_s": scalar_s,
        "batch_s": batch_s,
        "speedup": scalar_s / batch_s,
        "identical": identical,
    }


def bench_kernel(
    num_users: int = 10_000,
    num_levels: int = 6,
    num_slots: int = 3,
    repeats: int = 2,
    predictor_window: int = 10,
    seed: int = 0,
) -> Dict:
    """Object vs array pipeline over seeded slots; JSON-ready dict.

    ``num_slots`` distinct seeded populations are each timed
    ``repeats`` times per arm (best-of); levels must agree on every
    slot or the benchmark raises instead of reporting a speedup for a
    wrong answer.
    """
    if num_users < 1 or num_levels < 1:
        raise ConfigurationError("num_users and num_levels must be >= 1")
    if num_slots < 1 or repeats < 1:
        raise ConfigurationError("num_slots and repeats must be >= 1")
    rng = np.random.default_rng(seed)
    weights = QoEWeights.simulation_defaults()
    model = MM1DelayModel()
    object_alloc = DensityValueGreedyAllocator()
    array_alloc = ArrayAllocator()

    object_s = 0.0
    array_s = 0.0
    identical = True
    batch_nbytes = 0
    slots: List[Tuple[int, Dict[str, np.ndarray]]] = [
        (t + 1, _slot_inputs(rng, num_users, num_levels))
        for t in range(num_slots)
    ]
    for t, inputs in slots:
        want = _object_slot(inputs, t, weights, model, object_alloc)
        got = _array_slot(inputs, t, weights, array_alloc)
        if list(got) != list(want):
            identical = False
        object_s += _best_of(
            repeats,
            lambda: _object_slot(inputs, t, weights, model, object_alloc),
        )
        array_s += _best_of(
            repeats, lambda: _array_slot(inputs, t, weights, array_alloc)
        )
        sizes = inputs["sizes"]
        batch_nbytes = SlotBatch(
            t=t,
            sizes=sizes,
            delays=mm1_delay_matrix(sizes, inputs["caps"]),
            delta=inputs["delta"],
            qbar=inputs["qbar"],
            caps_mbps=inputs["caps"],
            budget_mbps=float(inputs["budget"]),
            weights=weights,
        ).nbytes()
    if not identical:
        raise ConfigurationError(
            "array kernel diverged from the object pipeline"
        )

    return {
        "kind": "kernel",
        "num_users": int(num_users),
        "num_levels": int(num_levels),
        "num_slots": int(num_slots),
        "repeats": int(repeats),
        "object_s_per_slot": object_s / num_slots,
        "array_s_per_slot": array_s / num_slots,
        "object_slots_per_s": num_slots / object_s,
        "array_slots_per_s": num_slots / array_s,
        "speedup": object_s / array_s,
        "solutions_identical": True,
        "array_fallbacks": int(array_alloc.fallbacks),
        "batch_nbytes": int(batch_nbytes),
        "predictor": _bench_predictor(rng, num_users, predictor_window, repeats),
        "coverage": _bench_coverage(rng, num_users, repeats),
    }
