"""Array-native Algorithm 1 — one sorted sweep instead of a heap.

Why a sorted sweep is exact
---------------------------
The heap greedy pops candidates in ``(-priority, item, option)``
order.  When every item's candidate priorities are non-increasing in
the option index (the Theorem 1 regime: concave values, convex
weights), the heap never *re-orders* an item's own candidates — after
granting ``(n, k)`` the freshly pushed ``(n, k+1)`` sorts at or after
the popped entry.  The whole upgrade sequence is therefore the global
lexicographic sort of all candidates, processed once:

* a candidate whose target weight violates the per-item cap would be
  rejected *and retire the item*; caps bind on a suffix of each row
  (weights are strictly increasing), so pre-truncating cap-violating
  candidates is equivalent;
* the object greedy stops as soon as the best fresh priority is
  negative, so a negative-priority candidate is never granted and
  blocks its item's later candidates — truncating each row at its
  first negative priority is equivalent;
* what remains is checked to be exactly non-increasing per row
  (``prio[k+1] <= prio[k]``, no tolerance).  Rows that fail — possible
  when delay saturation makes eq. (9) locally non-concave without
  going negative — make the fast path refuse (return ``None``) and
  the caller falls back to the object solver, so speed never buys a
  different answer.

Budget accounting uses ``np.cumsum``, which adds floats left-to-right
exactly like the object loop's running total, so acceptance decisions
(`> budget + eps`) flip at the same candidate.  The first candidate
the cumulative total rejects retires its item; from there a scalar
tail loop finishes the sweep (only a bounded suffix of candidates
remains in play once the budget binds).  Group (per-router) budgets
take the scalar sweep from the start — grant order still comes from
the one global sort.

Everything here is property-tested for bit-identity against the heap
solver in ``tests/kernel/``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, InfeasibleAllocationError
from repro.kernel.batch import SlotBatch

_EPS = 1e-9

#: Attractiveness orders accepted by :func:`solve_arrays`.
ORDERS = ("density", "value", "combined")


@dataclass(frozen=True)
class ArraySolution:
    """Mirror of :class:`~repro.knapsack.problem.Solution` over arrays."""

    options: Tuple[int, ...]
    value: float
    weight: float


def _seq_sum(parts: np.ndarray, start: float = 0.0) -> float:
    """Left-to-right float sum — bit-identical to a python ``sum`` loop."""
    if parts.size == 0:
        return start
    return float(np.cumsum(np.concatenate(([start], parts)))[-1])


def _option_weights(options: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Per-item chosen weight; skipped items weigh exactly 0.0."""
    idx = np.maximum(options, 0)
    chosen = weights[np.arange(options.size, dtype=np.int64), idx]
    return np.where(options >= 0, chosen, 0.0)


def _group_totals(
    options: np.ndarray,
    weights: np.ndarray,
    group_of: np.ndarray,
    num_groups: int,
) -> List[float]:
    """Per-group weight, summed in item order like the object path."""
    w = _option_weights(options, weights)
    return [_seq_sum(w[group_of == g]) for g in range(num_groups)]


def _feasible(
    options: np.ndarray,
    weights: np.ndarray,
    caps: np.ndarray,
    budget: float,
    allow_skip: bool,
    group_of: Optional[np.ndarray],
    group_budgets: Optional[np.ndarray],
) -> bool:
    """Replicates :meth:`SeparableKnapsack.is_feasible` on arrays."""
    if not allow_skip and bool(np.any(options < 0)):
        return False
    w = _option_weights(options, weights)
    chosen = options >= 0
    if bool(np.any(w[chosen] > caps[chosen] + _EPS)):
        return False
    if _seq_sum(w) > budget + _EPS:
        return False
    if group_of is not None and group_budgets is not None:
        totals = _group_totals(options, weights, group_of, group_budgets.size)
        for g in range(group_budgets.size):
            if totals[g] > float(group_budgets[g]) + _EPS:
                return False
    return True


def _base_options(
    values: np.ndarray,
    weights: np.ndarray,
    caps: np.ndarray,
    budget: float,
    allow_skip: bool,
    skip_values: np.ndarray,
    group_of: Optional[np.ndarray],
    group_budgets: Optional[np.ndarray],
) -> np.ndarray:
    """Replicates :meth:`SeparableKnapsack.base_solution` on arrays."""
    num_items = values.shape[0]
    options = np.zeros(num_items, dtype=np.int64)
    over_cap = weights[:, 0] > caps + _EPS
    if bool(over_cap.any()):
        if not allow_skip:
            n = int(np.argmax(over_cap))
            raise InfeasibleAllocationError(
                f"item {n}: base weight {weights[n, 0]} exceeds cap {caps[n]}"
            )
        options[over_cap] = -1
    if _feasible(options, weights, caps, budget, allow_skip, group_of, group_budgets):
        return options
    if not allow_skip:
        total = _seq_sum(_option_weights(options, weights))
        raise InfeasibleAllocationError(
            f"base weight {total} exceeds budget {budget} (or a group budget)"
        )
    # Shed worst-density base deliveries, exactly like the object path:
    # ascending (value gain over skip) / base weight, ties by index.
    density = (values[:, 0] - skip_values) / weights[:, 0]
    candidates = np.nonzero(options == 0)[0]
    order = np.lexsort((candidates, density[candidates]))
    for n in candidates[order].tolist():
        if _feasible(
            options, weights, caps, budget, allow_skip, group_of, group_budgets
        ):
            break
        total = _seq_sum(_option_weights(options, weights))
        helps = total > budget + _EPS
        if not helps and group_of is not None and group_budgets is not None:
            g = int(group_of[n])
            group_weight = _group_totals(
                options, weights, group_of, group_budgets.size
            )[g]
            helps = group_weight > float(group_budgets[g]) + _EPS
        if helps:
            options[n] = -1
    if not _feasible(
        options, weights, caps, budget, allow_skip, group_of, group_budgets
    ):
        raise InfeasibleAllocationError(
            f"cannot satisfy budget {budget} even with all items skipped"
        )
    return options


def _greedy_pass(
    values: np.ndarray,
    weights: np.ndarray,
    caps: np.ndarray,
    budget: float,
    base: np.ndarray,
    base_weight: float,
    density_order: bool,
    group_of: Optional[np.ndarray],
    group_budgets: Optional[np.ndarray],
) -> Optional[np.ndarray]:
    """One attractiveness order's upgrade sweep (``None`` = refuse)."""
    num_items, num_levels = values.shape
    options = base.copy()
    if num_levels == 1:
        return options

    dv = values[:, 1:] - values[:, :-1]
    dw = weights[:, 1:] - weights[:, :-1]
    prio = dv / dw if density_order else dv

    ks = np.arange(num_levels - 1, dtype=np.int64)[None, :]
    valid = (base[:, None] >= 0) & (weights[:, 1:] <= caps[:, None] + _EPS)
    # Truncate each row at its first negative priority: the object
    # greedy never grants past it (see module docstring).
    negative = valid & (prio < 0)
    first_negative = np.where(
        negative.any(axis=1), np.argmax(negative, axis=1), num_levels - 1
    )
    valid &= ks < first_negative[:, None]
    # Exact monotone gate on the surviving prefix.
    adjacent = valid[:, 1:] & valid[:, :-1]
    if bool(np.any(adjacent & (prio[:, 1:] > prio[:, :-1]))):
        return None

    items, kk = np.nonzero(valid)
    if items.size == 0:
        return options
    p = prio[items, kk]
    order = np.lexsort((kk, items, -p))
    items = items[order]
    kk = kk[order]
    deltas = dw[items, kk]

    committed = base_weight
    cut = items.size
    if group_of is None:
        # No retired items can exist before the first budget rejection,
        # so the whole prefix is one exact cumulative sum.
        totals = np.cumsum(np.concatenate(([committed], deltas)))[1:]
        over = totals > budget + _EPS
        if bool(over.any()):
            cut = int(np.argmax(over))
        if cut > 0:
            np.maximum.at(options, items[:cut], kk[:cut] + 1)
            committed = float(totals[cut - 1])
        if cut == items.size:
            return options
        group_weights: List[float] = []
    else:
        cut = 0
        group_weights = _group_totals(
            options, weights, group_of, group_budgets.size
        )

    # Scalar tail: identical decisions to _try_upgrade, in sort order.
    retired = np.zeros(num_items, dtype=bool)
    tail_items = items[cut:].tolist()
    tail_ks = kk[cut:].tolist()
    tail_deltas = deltas[cut:].tolist()
    budgets_list = (
        [float(b) for b in group_budgets] if group_budgets is not None else []
    )
    for i in range(len(tail_items)):
        n = tail_items[i]
        if retired[n]:
            continue
        delta = tail_deltas[i]
        new_weight = committed + delta
        if new_weight > budget + _EPS:
            retired[n] = True
            continue
        if group_of is not None:
            g = int(group_of[n])
            if group_weights[g] + delta > budgets_list[g] + _EPS:
                retired[n] = True
                continue
            group_weights[g] += delta
        options[n] = tail_ks[i] + 1
        committed = new_weight
    return options


def _evaluate(
    options: np.ndarray,
    values: np.ndarray,
    weights: np.ndarray,
    skip_values: np.ndarray,
) -> ArraySolution:
    """Replicates :meth:`SeparableKnapsack.evaluate` (sequential sums)."""
    idx = np.maximum(options, 0)
    rows = np.arange(options.size, dtype=np.int64)
    vals = np.where(options >= 0, values[rows, idx], skip_values)
    ws = np.where(options >= 0, weights[rows, idx], 0.0)
    return ArraySolution(
        options=tuple(int(k) for k in options),
        value=_seq_sum(vals),
        weight=_seq_sum(ws),
    )


def solve_arrays(
    values: np.ndarray,
    weights: np.ndarray,
    budget: float,
    caps: Optional[np.ndarray] = None,
    allow_skip: bool = False,
    skip_values: Optional[np.ndarray] = None,
    group_of: Optional[np.ndarray] = None,
    group_budgets: Optional[np.ndarray] = None,
    order: str = "combined",
) -> Optional[ArraySolution]:
    """Solve a rectangular separable knapsack over flat arrays.

    ``values`` / ``weights`` are ``(N, L)`` matrices (option ``k`` of
    item ``n`` at ``[n, k]``); semantics match
    :meth:`SeparableKnapsack.solve` with the same ``order``, and the
    result is bit-identical to the heap strategy.  Returns ``None``
    when a priority row is non-monotone after truncation — the caller
    must fall back to the object solver.
    """
    if order not in ORDERS:
        raise ConfigurationError(
            f"unknown greedy order {order!r}; expected one of {ORDERS}"
        )
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if values.shape != weights.shape or values.ndim != 2 or values.shape[1] < 1:
        raise ConfigurationError(
            f"values/weights must be equal (N, L) matrices, got "
            f"{values.shape} and {weights.shape}"
        )
    num_items = values.shape[0]
    if caps is None:
        caps = np.full(num_items, np.inf, dtype=float)
    else:
        caps = np.asarray(caps, dtype=float)
    if skip_values is None:
        skip_values = np.zeros(num_items, dtype=float)
    else:
        skip_values = np.asarray(skip_values, dtype=float)
    if group_of is not None:
        group_of = np.asarray(group_of, dtype=np.int64)
        group_budgets = np.asarray(group_budgets, dtype=float)

    base = _base_options(
        values, weights, caps, budget, allow_skip, skip_values,
        group_of, group_budgets,
    )
    base_weight = _seq_sum(_option_weights(base, weights))

    if order == "combined":
        orders = (True, False)
    else:
        orders = (order == "density",)
    solutions: List[ArraySolution] = []
    for density_order in orders:
        options = _greedy_pass(
            values, weights, caps, budget, base, base_weight,
            density_order, group_of, group_budgets,
        )
        if options is None:
            return None
        solutions.append(_evaluate(options, values, weights, skip_values))
    if len(solutions) == 1:
        return solutions[0]
    density_run, value_run = solutions
    return density_run if density_run.value >= value_run.value else value_run


def solve_batch(batch: SlotBatch, order: str = "combined") -> Optional[np.ndarray]:
    """Allocate quality levels for a :class:`SlotBatch`.

    Returns the per-user level vector (0 = skip) or ``None`` when the
    fast path refuses and the object solver must be used instead.
    """
    solution = solve_arrays(
        batch.gain_matrix(),
        batch.sizes,
        batch.budget_mbps,
        caps=batch.caps_mbps,
        allow_skip=batch.allow_skip,
        skip_values=batch.skip_values() if batch.allow_skip else None,
        group_of=batch.router_of,
        group_budgets=batch.router_budgets_mbps,
        order=order,
    )
    if solution is None:
        return None
    return np.asarray(solution.options, dtype=np.int64) + 1
