"""Synthetic 6-DoF motion traces.

Stand-in for the Firefly motion dataset (25 users over two large VR
scenes) that the paper replays.  The generator produces room-scale
motion whose statistics land a linear-regression predictor in the
same accuracy regime the paper reports implicitly through its
``delta_n`` estimates:

* **translation** — random-waypoint walking: pick a goal in the room,
  walk toward it at a bounded speed with small per-slot jitter, pause
  briefly at arrival;
* **head yaw** — an Ornstein-Uhlenbeck process pulled toward the
  walking direction, with occasional saccades toward a random target
  (users look around);
* **head pitch** — an OU process around a slightly downward-looking
  mean, clamped to physical limits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.content.projection import wrap_angle_deg
from repro.content.tiles import GridWorld
from repro.errors import ConfigurationError
from repro.prediction.pose import Pose
from repro.units import SLOT_DURATION_S


@dataclass(frozen=True)
class MotionConfig:
    """Tunable parameters of the synthetic walker."""

    walk_speed_mps: float = 0.9
    speed_jitter: float = 0.15
    pause_probability: float = 0.003
    pause_slots_max: int = 120
    eye_height_m: float = 1.6
    yaw_pull: float = 0.02
    yaw_noise_deg: float = 0.8
    saccade_probability: float = 0.004
    saccade_max_deg: float = 120.0
    pitch_mean_deg: float = -5.0
    pitch_pull: float = 0.03
    pitch_noise_deg: float = 0.4
    pitch_limit_deg: float = 60.0

    @classmethod
    def walking(cls) -> "MotionConfig":
        """The default room-scale walking profile (VR touring)."""
        return cls()

    @classmethod
    def seated(cls) -> "MotionConfig":
        """A seated-classroom profile: almost no translation, livelier
        head movement (students looking around from their desks)."""
        return cls(
            walk_speed_mps=0.05,
            pause_probability=0.05,
            pause_slots_max=600,
            yaw_noise_deg=1.2,
            saccade_probability=0.01,
            saccade_max_deg=150.0,
            pitch_noise_deg=0.6,
        )

    def __post_init__(self) -> None:
        if self.walk_speed_mps <= 0:
            raise ConfigurationError(
                f"walk speed must be positive, got {self.walk_speed_mps}"
            )
        if not 0 <= self.pause_probability <= 1:
            raise ConfigurationError(
                f"pause probability must be in [0, 1], got {self.pause_probability}"
            )
        if not 0 <= self.saccade_probability <= 1:
            raise ConfigurationError(
                f"saccade probability must be in [0, 1], got {self.saccade_probability}"
            )


class MotionTraceGenerator:
    """Generates per-slot 6-DoF pose sequences inside a grid world."""

    def __init__(
        self,
        world: GridWorld,
        config: MotionConfig = MotionConfig(),
        slot_s: float = SLOT_DURATION_S,
    ) -> None:
        if slot_s <= 0:
            raise ConfigurationError(f"slot duration must be positive, got {slot_s}")
        self.world = world
        self.config = config
        self.slot_s = slot_s

    def _random_waypoint(self, rng: np.random.Generator) -> np.ndarray:
        margin = 2 * self.world.cell_size
        x = rng.uniform(self.world.x_min + margin, self.world.x_max - margin)
        y = rng.uniform(self.world.y_min + margin, self.world.y_max - margin)
        return np.array([x, y])

    def generate(self, num_slots: int, rng: np.random.Generator) -> List[Pose]:
        """Generate a pose per slot.

        Parameters
        ----------
        num_slots:
            Trace length in slots.
        rng:
            Source of randomness; pass a seeded generator for
            reproducible traces.
        """
        if num_slots < 1:
            raise ConfigurationError(f"num_slots must be >= 1, got {num_slots}")
        cfg = self.config
        pos = self._random_waypoint(rng)
        goal = self._random_waypoint(rng)
        yaw = float(rng.uniform(-180.0, 180.0))
        yaw_target = yaw
        pitch = cfg.pitch_mean_deg
        pause_remaining = 0
        poses: List[Pose] = []

        for _ in range(num_slots):
            to_goal = goal - pos
            dist = float(np.linalg.norm(to_goal))
            if pause_remaining > 0:
                pause_remaining -= 1
            elif dist < 0.1:
                goal = self._random_waypoint(rng)
                if rng.uniform() < 0.5:
                    pause_remaining = int(rng.integers(10, cfg.pause_slots_max))
            else:
                # Log-normal jitter clamped at 3 sigma: humans have a
                # hard top walking speed.
                jitter = float(
                    np.clip(
                        rng.normal(0.0, cfg.speed_jitter),
                        -3.0 * cfg.speed_jitter,
                        3.0 * cfg.speed_jitter,
                    )
                )
                speed = cfg.walk_speed_mps * float(np.exp(jitter))
                step = min(speed * self.slot_s, dist)
                pos = pos + to_goal / dist * step
                if rng.uniform() < cfg.pause_probability:
                    pause_remaining = int(rng.integers(10, cfg.pause_slots_max))
                # While walking, the head is pulled toward the heading.
                heading = float(np.degrees(np.arctan2(to_goal[1], to_goal[0])))
                yaw_target = heading

            if rng.uniform() < cfg.saccade_probability:
                yaw_target = wrap_angle_deg(
                    yaw + float(rng.uniform(-cfg.saccade_max_deg, cfg.saccade_max_deg))
                )
            yaw_error = wrap_angle_deg(yaw_target - yaw)
            yaw = wrap_angle_deg(
                yaw + cfg.yaw_pull * yaw_error + float(rng.normal(0.0, cfg.yaw_noise_deg))
            )
            pitch += cfg.pitch_pull * (cfg.pitch_mean_deg - pitch) + float(
                rng.normal(0.0, cfg.pitch_noise_deg)
            )
            pitch = min(max(pitch, -cfg.pitch_limit_deg), cfg.pitch_limit_deg)

            x, y = self.world.clamp(float(pos[0]), float(pos[1]))
            poses.append(Pose(x, y, cfg.eye_height_m, yaw, pitch, 0.0))
        return poses

    def generate_users(
        self, num_users: int, num_slots: int, seed: int = 0
    ) -> List[List[Pose]]:
        """Independent traces for a population of users."""
        if num_users < 1:
            raise ConfigurationError(f"num_users must be >= 1, got {num_users}")
        return [
            self.generate(num_slots, np.random.default_rng((seed, user)))
            for user in range(num_users)
        ]
