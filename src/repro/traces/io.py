"""Trace file I/O.

The generators in :mod:`repro.traces.network` substitute for the FCC
and Ghent datasets, but users holding the real data (or any other
bandwidth logs) can replay it through the same pipeline: this module
reads and writes the piecewise-constant trace format as CSV
(``duration_s,mbps`` rows) or JSON, and pose traces as CSV
(``x,y,z,yaw,pitch,roll`` rows, one per slot).
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import List, Sequence, Union

from repro.errors import TraceError
from repro.prediction.pose import Pose
from repro.traces.network import NetworkTrace, TraceSegment

PathLike = Union[str, pathlib.Path]


def save_network_trace_csv(trace: NetworkTrace, path: PathLike) -> None:
    """Write a trace as ``duration_s,mbps`` CSV rows with a header."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["duration_s", "mbps"])
        for segment in trace.segments:
            writer.writerow([segment.duration_s, segment.mbps])


def load_network_trace_csv(path: PathLike, name: str = "") -> NetworkTrace:
    """Read a ``duration_s,mbps`` CSV (header optional)."""
    segments: List[TraceSegment] = []
    with open(path, newline="") as handle:
        for row_number, row in enumerate(csv.reader(handle), start=1):
            if not row or not row[0].strip():
                continue
            if row_number == 1 and not _is_number(row[0]):
                continue  # header
            if len(row) < 2:
                raise TraceError(
                    f"{path}: row {row_number} needs duration_s and mbps"
                )
            try:
                duration = float(row[0])
                mbps = float(row[1])
            except ValueError as exc:
                raise TraceError(
                    f"{path}: row {row_number} is not numeric: {row}"
                ) from exc
            segments.append(TraceSegment(duration, mbps))
    if not segments:
        raise TraceError(f"{path}: no trace segments found")
    return NetworkTrace(segments, name=name or str(path))


def save_network_trace_json(trace: NetworkTrace, path: PathLike) -> None:
    """Write a trace as JSON ``{"name", "segments": [[dur, mbps], ...]}``."""
    payload = {
        "name": trace.name,
        "segments": [[s.duration_s, s.mbps] for s in trace.segments],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def load_network_trace_json(path: PathLike) -> NetworkTrace:
    """Read a trace written by :func:`save_network_trace_json`."""
    with open(path) as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{path}: invalid JSON: {exc}") from exc
    try:
        segments = [
            TraceSegment(float(d), float(m)) for d, m in payload["segments"]
        ]
        name = payload.get("name", str(path))
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"{path}: malformed trace payload") from exc
    if not segments:
        raise TraceError(f"{path}: no trace segments found")
    return NetworkTrace(segments, name=name)


def save_pose_trace_csv(poses: Sequence[Pose], path: PathLike) -> None:
    """Write one pose per slot as ``x,y,z,yaw,pitch,roll`` rows."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["x", "y", "z", "yaw", "pitch", "roll"])
        for pose in poses:
            writer.writerow(pose.as_vector())


def load_pose_trace_csv(path: PathLike) -> List[Pose]:
    """Read a pose-per-slot CSV (header optional)."""
    poses: List[Pose] = []
    with open(path, newline="") as handle:
        for row_number, row in enumerate(csv.reader(handle), start=1):
            if not row or not row[0].strip():
                continue
            if row_number == 1 and not _is_number(row[0]):
                continue
            if len(row) < 6:
                raise TraceError(f"{path}: row {row_number} needs 6 DoF values")
            try:
                poses.append(Pose.from_vector([float(v) for v in row[:6]]))
            except ValueError as exc:
                raise TraceError(
                    f"{path}: row {row_number} is not numeric: {row}"
                ) from exc
    if not poses:
        raise TraceError(f"{path}: no poses found")
    return poses


def _is_number(token: str) -> bool:
    try:
        float(token)
    except ValueError:
        return False
    return True
