"""Trace datasets and the slot schedule that replays them.

Binds the network and motion generators into the per-episode inputs
the simulator consumes: for each user, a per-slot bandwidth array and
a per-slot pose sequence of equal length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.content.tiles import GridWorld
from repro.errors import ConfigurationError, TraceError
from repro.prediction.pose import Pose
from repro.traces.motion import MotionConfig, MotionTraceGenerator
from repro.traces.network import NetworkTrace, TraceCatalog
from repro.units import SLOT_DURATION_S


@dataclass(frozen=True)
class SlotSchedule:
    """Per-slot replay inputs for a population of users.

    Attributes
    ----------
    bandwidth_mbps:
        Array of shape ``(num_users, num_slots)``: ``B_n(t)``.
    poses:
        ``poses[n][t]`` is user ``n``'s true pose in slot ``t``.
    slot_s:
        Slot duration in seconds.
    """

    bandwidth_mbps: np.ndarray
    poses: List[List[Pose]]
    slot_s: float

    def __post_init__(self) -> None:
        if self.bandwidth_mbps.ndim != 2:
            raise ConfigurationError("bandwidth array must be 2-D (users x slots)")
        if len(self.poses) != self.bandwidth_mbps.shape[0]:
            raise ConfigurationError(
                f"pose list covers {len(self.poses)} users but bandwidth covers "
                f"{self.bandwidth_mbps.shape[0]}"
            )
        for n, user_poses in enumerate(self.poses):
            if len(user_poses) != self.bandwidth_mbps.shape[1]:
                raise ConfigurationError(
                    f"user {n}: {len(user_poses)} poses != "
                    f"{self.bandwidth_mbps.shape[1]} bandwidth slots"
                )

    @property
    def num_users(self) -> int:
        return int(self.bandwidth_mbps.shape[0])

    @property
    def num_slots(self) -> int:
        return int(self.bandwidth_mbps.shape[1])


class TraceDataset:
    """Builds :class:`SlotSchedule` episodes from the generators.

    Parameters
    ----------
    world:
        The scene's viewpoint grid (shared by all users).
    catalog:
        Network trace catalog; defaults to the paper's half-FCC /
        half-LTE mix.
    motion_config:
        Walker parameters.
    slot_s:
        Slot duration; the Section IV simulation quotes ~15 ms slots.
    seed:
        Base seed; episodes and users derive sub-seeds from it.
    """

    def __init__(
        self,
        world: GridWorld,
        catalog: TraceCatalog = None,
        motion_config: MotionConfig = MotionConfig(),
        slot_s: float = SLOT_DURATION_S,
        seed: int = 0,
    ) -> None:
        self.world = world
        self.catalog = catalog if catalog is not None else TraceCatalog(seed=seed)
        self.motion = MotionTraceGenerator(world, motion_config, slot_s)
        self.slot_s = slot_s
        self.seed = seed

    def episode(
        self,
        num_users: int,
        num_slots: int,
        episode: int = 0,
    ) -> SlotSchedule:
        """Materialise one episode's replay inputs.

        The network traces are expanded to per-slot arrays and
        truncated (or tiled) to ``num_slots``; motion traces are
        generated at exactly that length.
        """
        if num_users < 1:
            raise ConfigurationError(f"num_users must be >= 1, got {num_users}")
        if num_slots < 1:
            raise ConfigurationError(f"num_slots must be >= 1, got {num_slots}")

        bandwidth = np.empty((num_users, num_slots), dtype=float)
        for user in range(num_users):
            trace = self.catalog.trace_for(user, episode)
            slots = self._expand(trace, num_slots)
            bandwidth[user, :] = slots

        poses = [
            self.motion.generate(
                num_slots, np.random.default_rng((self.seed, episode, user, 3))
            )
            for user in range(num_users)
        ]
        return SlotSchedule(bandwidth, poses, self.slot_s)

    def _expand(self, trace: NetworkTrace, num_slots: int) -> np.ndarray:
        """Per-slot rates of length ``num_slots``, tiling if short."""
        slots = trace.to_slots(self.slot_s)
        if slots.size == 0:
            raise TraceError(f"trace {trace.name!r} shorter than one slot")
        if slots.size >= num_slots:
            return slots[:num_slots]
        reps = int(np.ceil(num_slots / slots.size))
        return np.tile(slots, reps)[:num_slots]


def server_budget(num_users: int, per_user_mbps: float) -> np.ndarray:
    """Constant server budget series ``B(t) = per_user * N`` (Section IV)."""
    if num_users < 1:
        raise ConfigurationError(f"num_users must be >= 1, got {num_users}")
    if per_user_mbps <= 0:
        raise ConfigurationError(
            f"per_user_mbps must be positive, got {per_user_mbps}"
        )
    return np.array([per_user_mbps * num_users])


def average_bandwidth(schedule: SlotSchedule) -> Sequence[float]:
    """Per-user mean bandwidth over an episode (diagnostics)."""
    return [float(row.mean()) for row in schedule.bandwidth_mbps]
