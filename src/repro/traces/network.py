"""Synthetic network throughput traces.

Section IV of the paper: half of the per-user traces come from the
FCC fixed-broadband dataset ("Web browsing" category, March 2021) and
half from the Ghent 4G/LTE dataset; every trace is cut to 300 seconds
and clamped into 20-100 Mbps; each throughput point "usually lasts
for several seconds".

The two generator classes below reproduce those statistical shapes:

* :class:`FccWebBrowsingModel` — fixed-line broadband: a stable base
  rate per trace (the subscribed tier), long holds, mild noise, and
  occasional short congestion dips.
* :class:`LteMobilityModel` — mobile LTE: a hidden mobility state
  (still / walking / driving) modulating the mean, shorter holds,
  log-normal fading, and handover drops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, TraceError
from repro.units import TRACE_LENGTH_S, TRACE_MAX_MBPS, TRACE_MIN_MBPS


@dataclass(frozen=True)
class TraceSegment:
    """A constant-rate stretch of a network trace."""

    duration_s: float
    mbps: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"segment duration must be positive, got {self.duration_s}"
            )
        if self.mbps < 0:
            raise ConfigurationError(f"segment rate must be >= 0, got {self.mbps}")


class NetworkTrace:
    """An immutable piecewise-constant throughput series."""

    def __init__(self, segments: Sequence[TraceSegment], name: str = "") -> None:
        if not segments:
            raise TraceError("a network trace needs at least one segment")
        self._segments: Tuple[TraceSegment, ...] = tuple(segments)
        self.name = name
        self._boundaries = np.cumsum([s.duration_s for s in self._segments])

    @property
    def segments(self) -> Tuple[TraceSegment, ...]:
        return self._segments

    @property
    def duration_s(self) -> float:
        return float(self._boundaries[-1])

    def rate_at(self, t_s: float) -> float:
        """Throughput (Mbps) at an absolute time within the trace."""
        if t_s < 0:
            raise TraceError(f"time must be non-negative, got {t_s}")
        if t_s >= self.duration_s:
            raise TraceError(
                f"time {t_s} s is past the trace end ({self.duration_s} s)"
            )
        index = int(np.searchsorted(self._boundaries, t_s, side="right"))
        return self._segments[index].mbps

    def to_slots(self, slot_s: float) -> np.ndarray:
        """Per-slot rates; consecutive slots share a segment's rate.

        This is the expansion rule of Section IV: the trace's
        multi-second points are far longer than a slot, so "multiple
        continuous slots share the same bandwidth until their
        cumulative time reaches the trace's duration".
        """
        if slot_s <= 0:
            raise ConfigurationError(f"slot duration must be positive, got {slot_s}")
        num_slots = int(self.duration_s / slot_s)
        rates = np.empty(num_slots, dtype=float)
        seg_idx = 0
        for slot in range(num_slots):
            t = slot * slot_s
            while t >= self._boundaries[seg_idx]:
                seg_idx += 1
            rates[slot] = self._segments[seg_idx].mbps
        return rates

    def clamped(self, lo: float = TRACE_MIN_MBPS, hi: float = TRACE_MAX_MBPS) -> "NetworkTrace":
        """Copy with every rate clamped into ``[lo, hi]`` (Section IV)."""
        if lo > hi:
            raise ConfigurationError(f"invalid clamp range [{lo}, {hi}]")
        return NetworkTrace(
            [TraceSegment(s.duration_s, min(max(s.mbps, lo), hi)) for s in self._segments],
            name=self.name,
        )

    def mean_mbps(self) -> float:
        """Duration-weighted mean rate."""
        total = sum(s.duration_s * s.mbps for s in self._segments)
        return total / self.duration_s


class FccWebBrowsingModel:
    """Synthetic fixed-broadband traces in the FCC dataset's regime.

    Each trace draws a subscribed tier; throughput holds near the tier
    for several seconds at a time with small log-normal noise, and
    occasionally dips (cross-traffic) for a short stretch.
    """

    #: Representative subscribed tiers (Mbps) spanning the clamp range.
    TIERS: Tuple[float, ...] = (25.0, 50.0, 75.0, 100.0)

    def __init__(
        self,
        hold_range_s: Tuple[float, float] = (3.0, 10.0),
        dip_probability: float = 0.08,
        dip_factor_range: Tuple[float, float] = (0.3, 0.7),
        noise_sigma: float = 0.06,
    ) -> None:
        if hold_range_s[0] <= 0 or hold_range_s[1] < hold_range_s[0]:
            raise ConfigurationError(f"invalid hold range {hold_range_s}")
        if not 0 <= dip_probability <= 1:
            raise ConfigurationError(
                f"dip probability must be in [0, 1], got {dip_probability}"
            )
        self.hold_range_s = hold_range_s
        self.dip_probability = dip_probability
        self.dip_factor_range = dip_factor_range
        self.noise_sigma = noise_sigma

    def generate(
        self,
        rng: np.random.Generator,
        duration_s: float = TRACE_LENGTH_S,
        name: str = "fcc",
    ) -> NetworkTrace:
        """Generate one clamped trace of the requested duration."""
        if duration_s <= 0:
            raise ConfigurationError(f"duration must be positive, got {duration_s}")
        tier = float(rng.choice(self.TIERS))
        segments: List[TraceSegment] = []
        elapsed = 0.0
        while elapsed < duration_s:
            hold = float(rng.uniform(*self.hold_range_s))
            hold = min(hold, duration_s - elapsed)
            rate = tier * float(np.exp(rng.normal(0.0, self.noise_sigma)))
            if rng.uniform() < self.dip_probability:
                rate *= float(rng.uniform(*self.dip_factor_range))
            segments.append(TraceSegment(hold, rate))
            elapsed += hold
        return NetworkTrace(segments, name=name).clamped()


class LteMobilityModel:
    """Synthetic 4G/LTE traces in the Ghent dataset's regime.

    A hidden mobility state (still / walking / driving) sets the mean
    rate and volatility; rates fade log-normally around the state mean
    and occasionally collapse during handovers.
    """

    #: (mean Mbps, log-sigma, mean hold s) per mobility state.
    STATES: Tuple[Tuple[float, float, float], ...] = (
        (80.0, 0.15, 4.0),  # still
        (55.0, 0.30, 2.5),  # walking
        (35.0, 0.45, 1.5),  # driving
    )

    #: Probability of staying in the current state at each segment.
    STATE_PERSISTENCE: float = 0.85

    def __init__(self, handover_probability: float = 0.05, handover_factor: float = 0.25) -> None:
        if not 0 <= handover_probability <= 1:
            raise ConfigurationError(
                f"handover probability must be in [0, 1], got {handover_probability}"
            )
        self.handover_probability = handover_probability
        self.handover_factor = handover_factor

    def generate(
        self,
        rng: np.random.Generator,
        duration_s: float = TRACE_LENGTH_S,
        name: str = "lte",
    ) -> NetworkTrace:
        """Generate one clamped trace of the requested duration."""
        if duration_s <= 0:
            raise ConfigurationError(f"duration must be positive, got {duration_s}")
        state = int(rng.integers(len(self.STATES)))
        segments: List[TraceSegment] = []
        elapsed = 0.0
        while elapsed < duration_s:
            mean, sigma, mean_hold = self.STATES[state]
            hold = float(rng.exponential(mean_hold) + 0.5)
            hold = min(hold, duration_s - elapsed)
            rate = mean * float(np.exp(rng.normal(0.0, sigma)))
            if rng.uniform() < self.handover_probability:
                rate *= self.handover_factor
            segments.append(TraceSegment(hold, rate))
            elapsed += hold
            if rng.uniform() > self.STATE_PERSISTENCE:
                state = int(rng.integers(len(self.STATES)))
        return NetworkTrace(segments, name=name).clamped()


class TraceCatalog:
    """The paper's half-FCC / half-LTE per-user trace pool.

    Section IV: "We randomly generate half of the requested traces
    from the 'Web browsing' category of the FCC dataset ... The other
    half of the requested traces are generated from Ghent's dataset."
    The small Ghent pool is reused across users, which the catalog
    mirrors by drawing LTE traces from a limited pool of seeds.
    """

    def __init__(
        self,
        seed: int = 0,
        duration_s: float = TRACE_LENGTH_S,
        lte_pool_size: int = 40,
        fcc_model: Optional[FccWebBrowsingModel] = None,
        lte_model: Optional[LteMobilityModel] = None,
    ) -> None:
        if lte_pool_size < 1:
            raise ConfigurationError(
                f"lte_pool_size must be >= 1, got {lte_pool_size}"
            )
        self.seed = seed
        self.duration_s = duration_s
        self.lte_pool_size = lte_pool_size
        self.fcc_model = fcc_model or FccWebBrowsingModel()
        self.lte_model = lte_model or LteMobilityModel()

    def trace_for(self, user: int, episode: int = 0) -> NetworkTrace:
        """Deterministic trace for a (user, episode) pair.

        Even users draw fresh FCC traces; odd users draw from the
        finite, reused LTE pool (the Ghent dataset has only 40 logs).
        """
        if user < 0 or episode < 0:
            raise ConfigurationError("user and episode must be non-negative")
        if user % 2 == 0:
            rng = np.random.default_rng((self.seed, 1, user, episode))
            return self.fcc_model.generate(rng, self.duration_s, name=f"fcc-u{user}-e{episode}")
        pool_slot = (user * 131 + episode * 17) % self.lte_pool_size
        rng = np.random.default_rng((self.seed, 2, pool_slot))
        return self.lte_model.generate(rng, self.duration_s, name=f"lte-pool{pool_slot}")

    def traces_for_users(self, num_users: int, episode: int = 0) -> List[NetworkTrace]:
        """One trace per user for a given episode."""
        if num_users < 1:
            raise ConfigurationError(f"num_users must be >= 1, got {num_users}")
        return [self.trace_for(u, episode) for u in range(num_users)]
