"""Parsers for the paper's actual public datasets.

The synthetic generators in :mod:`repro.traces.network` stand in for
two public datasets; when you have the real files, these parsers turn
them into :class:`~repro.traces.network.NetworkTrace` objects the
rest of the pipeline consumes unchanged.

* **FCC Measuring Broadband America, ``curr_webget`` tables** — the
  "Web browsing" category the paper samples.  CSV with (at least)
  ``unit_id``, ``dtime``, and ``bytes_sec`` columns; one row per
  fetch measurement.  :func:`load_fcc_webget_csv` groups rows by
  unit, orders by time, and emits one piecewise-constant trace per
  unit where each measurement's throughput holds until the next
  measurement.
* **Ghent 4G/LTE logs** (van der Hooft et al.) — per-interval
  bandwidth logs.  :func:`load_bandwidth_log` reads the common
  two-column text form ``<timestamp_ms> <bytes_in_interval>`` and
  converts to Mbps segments.

Both parsers are tolerant of column order and extra columns, validate
what they consume, and raise :class:`~repro.errors.TraceError` with
row context on malformed input.
"""

from __future__ import annotations

import csv
import pathlib
from datetime import datetime
from typing import Dict, List, Optional, Union

from repro.errors import TraceError
from repro.traces.network import NetworkTrace, TraceSegment

PathLike = Union[str, pathlib.Path]

#: Column names used by the FCC MBA webget tables.
_FCC_UNIT = "unit_id"
_FCC_TIME = "dtime"
_FCC_RATE = "bytes_sec"

#: Accepted timestamp layouts in FCC exports.
_FCC_TIME_FORMATS = ("%Y-%m-%d %H:%M:%S", "%m/%d/%Y %H:%M", "%Y-%m-%dT%H:%M:%S")


def _parse_fcc_time(token: str, path: PathLike, row_number: int) -> datetime:
    for fmt in _FCC_TIME_FORMATS:
        try:
            return datetime.strptime(token.strip(), fmt)
        except ValueError:
            continue
    raise TraceError(f"{path}: row {row_number}: unparseable dtime {token!r}")


def load_fcc_webget_csv(
    path: PathLike,
    unit_id: Optional[str] = None,
    max_hold_s: float = 30.0,
) -> Dict[str, NetworkTrace]:
    """Parse an FCC ``curr_webget``-style CSV into per-unit traces.

    Parameters
    ----------
    path:
        CSV file with a header row containing at least ``unit_id``,
        ``dtime``, ``bytes_sec``.
    unit_id:
        When given, only this unit's rows are parsed.
    max_hold_s:
        Cap on a single segment's duration: gaps between measurements
        longer than this (the tables sample sparsely) are truncated so
        one stale sample cannot dominate a trace.

    Returns a mapping from unit id to its trace (units with fewer than
    two measurements are dropped — no duration can be derived).
    """
    rows_by_unit: Dict[str, List] = {}
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise TraceError(f"{path}: empty file")
        missing = {c for c in (_FCC_UNIT, _FCC_TIME, _FCC_RATE)} - set(
            name.strip() for name in reader.fieldnames
        )
        if missing:
            raise TraceError(
                f"{path}: missing required columns {sorted(missing)}"
            )
        for row_number, row in enumerate(reader, start=2):
            unit = (row.get(_FCC_UNIT) or "").strip()
            if not unit or (unit_id is not None and unit != unit_id):
                continue
            when = _parse_fcc_time(row[_FCC_TIME], path, row_number)
            try:
                bytes_sec = float(row[_FCC_RATE])
            except (TypeError, ValueError):
                raise TraceError(
                    f"{path}: row {row_number}: bad bytes_sec {row.get(_FCC_RATE)!r}"
                ) from None
            if bytes_sec < 0:
                raise TraceError(
                    f"{path}: row {row_number}: negative bytes_sec"
                )
            rows_by_unit.setdefault(unit, []).append((when, bytes_sec))

    traces: Dict[str, NetworkTrace] = {}
    for unit, samples in rows_by_unit.items():
        samples.sort(key=lambda pair: pair[0])
        segments: List[TraceSegment] = []
        for (t0, rate), (t1, _) in zip(samples, samples[1:]):
            hold = min((t1 - t0).total_seconds(), max_hold_s)
            if hold <= 0:
                continue
            segments.append(TraceSegment(hold, rate * 8.0 / 1e6))
        if segments:
            traces[unit] = NetworkTrace(segments, name=f"fcc-webget-{unit}")
    if unit_id is not None and unit_id not in traces:
        raise TraceError(f"{path}: no usable rows for unit {unit_id!r}")
    return traces


def load_bandwidth_log(
    path: PathLike,
    name: str = "",
) -> NetworkTrace:
    """Parse a ``<timestamp_ms> <bytes_in_interval>`` bandwidth log.

    The format used by the Ghent 4G/LTE dataset's logs: each line
    gives a wall-clock timestamp in milliseconds and the bytes
    received since the previous line.  Throughput of an interval is
    ``bytes * 8 / interval``.
    """
    samples: List = []
    with open(path) as handle:
        for row_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise TraceError(
                    f"{path}: line {row_number}: expected 'timestamp_ms bytes'"
                )
            try:
                timestamp_ms = float(parts[0])
                payload_bytes = float(parts[1])
            except ValueError:
                raise TraceError(
                    f"{path}: line {row_number}: non-numeric fields {parts[:2]}"
                ) from None
            if payload_bytes < 0:
                raise TraceError(f"{path}: line {row_number}: negative bytes")
            samples.append((timestamp_ms, payload_bytes))

    if len(samples) < 2:
        raise TraceError(f"{path}: need at least two log lines")
    segments: List[TraceSegment] = []
    for (t0, _), (t1, received) in zip(samples, samples[1:]):
        interval_s = (t1 - t0) / 1e3
        if interval_s <= 0:
            raise TraceError(f"{path}: non-increasing timestamps at {t1}")
        mbps = received * 8.0 / 1e6 / interval_s
        segments.append(TraceSegment(interval_s, mbps))
    return NetworkTrace(segments, name=name or str(path))
