"""Trace substrate: synthetic network and motion traces.

The paper drives its simulation with two public bandwidth datasets
(the FCC fixed-broadband measurements and the Ghent 4G/LTE logs) and
with the Firefly motion-trace dataset.  None of those ship with this
reproduction, so this subpackage provides *generators* whose output
matches how the paper consumes the data:

* network traces are piecewise-constant Mbps series, clamped to
  20-100 Mbps, with multi-second holds (Section IV);
* motion traces are 6-DoF pose series with smooth translation on a
  room-scale grid and correlated head rotation, the regime in which a
  linear-regression predictor attains high (but imperfect) accuracy.

See DESIGN.md for the substitution rationale.
"""

from repro.traces.network import (
    FccWebBrowsingModel,
    LteMobilityModel,
    NetworkTrace,
    TraceCatalog,
    TraceSegment,
)
from repro.traces.motion import MotionConfig, MotionTraceGenerator
from repro.traces.dataset import SlotSchedule, TraceDataset
from repro.traces.io import (
    load_network_trace_csv,
    load_network_trace_json,
    load_pose_trace_csv,
    save_network_trace_csv,
    save_network_trace_json,
    save_pose_trace_csv,
)
from repro.traces.datasets import load_bandwidth_log, load_fcc_webget_csv

__all__ = [
    "load_fcc_webget_csv",
    "load_bandwidth_log",
    "load_network_trace_csv",
    "load_network_trace_json",
    "load_pose_trace_csv",
    "save_network_trace_csv",
    "save_network_trace_json",
    "save_pose_trace_csv",
    "TraceSegment",
    "NetworkTrace",
    "FccWebBrowsingModel",
    "LteMobilityModel",
    "TraceCatalog",
    "MotionConfig",
    "MotionTraceGenerator",
    "TraceDataset",
    "SlotSchedule",
]
