"""Command-line interface: ``python -m repro <command>``.

Every experiment in the paper can be reproduced from the shell without
writing code:

* ``python -m repro fig1``   — the Fig. 1a/1b convexity measurements;
* ``python -m repro sim``    — the Fig. 2/3 trace-driven comparison;
* ``python -m repro system`` — the Fig. 7/8 testbed emulation;
* ``python -m repro theorem1`` — the approximation-ratio study;
* ``python -m repro lint``   — the domain-aware static analysis gate.

Each command prints the figure's rows as a text table (and an ASCII
CDF/bar sketch where that helps).  Scale flags (--slots, --episodes,
--repeats, --users) trade fidelity for runtime; defaults finish in
tens of seconds on a laptop.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

import numpy as np

from repro.analysis import ascii_bars, ascii_cdf, comparison_table, format_table
from repro.content.rate import RateModel
from repro.core import (
    DensityValueGreedyAllocator,
    FireflyAllocator,
    OfflineOptimalAllocator,
    PavqAllocator,
)
from repro.knapsack import combined_greedy, solve_exact
from repro.lint.cli import add_lint_arguments, run_lint_command
from repro.simulation import SimulationConfig, TraceSimulator
from repro.simulation.delaymodel import mean_rtt_curve
from repro.system import SystemExperiment, setup1_config, setup2_config


def _cmd_fig1(args: argparse.Namespace) -> int:
    model = RateModel(seed=args.seed)
    print("Fig. 1a — tile-set size vs quality level (two contents):\n")
    rows = [
        [level, model.curve(3).size(level), model.curve(17).size(level)]
        for level in range(1, 7)
    ]
    print(format_table(["level", "content A (Mbps)", "content B (Mbps)"], rows))

    print("\nFig. 1b — mean RTT vs sending rate (15 Mbps cap):\n")
    rates = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 13.5]
    curve = mean_rtt_curve(rates, capacity_mbps=15.0, num_samples=20_000,
                           seed=args.seed)
    print(format_table(["rate (Mbps)", "mean RTT (ms)"], list(map(list, zip(rates, curve)))))
    return 0


def _allocators(include_optimal: bool) -> Dict[str, object]:
    allocators: Dict[str, object] = {
        "ours": DensityValueGreedyAllocator(),
        "pavq": PavqAllocator(),
        "firefly": FireflyAllocator(),
    }
    if include_optimal:
        allocators["optimal"] = OfflineOptimalAllocator()
    return allocators


def _cmd_sim(args: argparse.Namespace) -> int:
    config = SimulationConfig(
        num_users=args.users, duration_slots=args.slots, seed=args.seed
    )
    simulator = TraceSimulator(config)
    include_optimal = args.users <= 8 and not args.no_optimal
    print(
        f"Fig. {'2' if args.users <= 8 else '3'}-style simulation: "
        f"{args.users} users, {args.slots} slots, {args.episodes} episode(s)\n"
    )
    comparison = simulator.compare(
        _allocators(include_optimal), num_episodes=args.episodes
    )
    metrics = ("qoe", "quality", "delay", "variance")
    table = {name: res.means(metrics) for name, res in comparison.items()}
    print(comparison_table(table, metrics, reference="firefly"))
    print("\nQoE CDFs:\n")
    print(ascii_cdf({name: res.cdf("qoe") for name, res in comparison.items()}))
    return 0


def _cmd_system(args: argparse.Namespace) -> int:
    make = setup1_config if args.setup == 1 else setup2_config
    config = make(duration_slots=args.slots, seed=args.seed)
    experiment = SystemExperiment(config)
    print(
        f"Fig. {'7' if args.setup == 1 else '8'}-style emulation: setup "
        f"{args.setup} ({config.num_users} users, {config.num_routers} "
        f"router(s)), {args.repeats} repeat(s)\n"
    )
    comparison = experiment.compare(_allocators(False), repeats=args.repeats)
    metrics = ("qoe", "quality", "delay", "variance")
    table = {}
    for name, res in comparison.items():
        row = res.means(metrics)
        row["fps"] = res.mean_fps()
        table[name] = row
    print(comparison_table(table, metrics + ("fps",)))
    print("\nAverage QoE:\n")
    print(ascii_bars({name: res.mean("qoe") for name, res in comparison.items()}))
    return 0


def _cmd_theorem1(args: argparse.Namespace) -> int:
    from repro.knapsack.random_instances import random_instance

    rng = np.random.default_rng(args.seed)
    ratios: List[float] = []
    for _ in range(args.instances):
        problem = random_instance(
            rng,
            num_items=int(rng.integers(2, 6)),
            num_options=int(rng.integers(3, 7)),
            tightness=float(rng.uniform(0.05, 0.95)),
        )
        base = problem.base_solution().value
        gain_greedy = combined_greedy(problem).value - base
        gain_opt = solve_exact(problem).value - base
        if gain_opt > 1e-12:
            ratios.append(gain_greedy / gain_opt)
    arr = np.array(ratios)
    print("Theorem 1 — combined greedy vs exact optimum (gain ratio):\n")
    print(
        format_table(
            ["statistic", "value"],
            [
                ["instances", float(len(arr))],
                ["min", float(arr.min())],
                ["median", float(np.median(arr))],
                ["mean", float(arr.mean())],
                ["fraction optimal", float((arr > 1 - 1e-9).mean())],
            ],
        )
    )
    return 0 if (arr >= 0.5 - 1e-9).all() else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.simulation.sweep import run_sweep, sweep_table

    base = SimulationConfig(
        num_users=args.users, duration_slots=args.slots, seed=args.seed
    )
    values = [float(v) for v in args.values.split(",")]
    points = run_sweep(
        base,
        DensityValueGreedyAllocator,
        {args.field: values},
        num_episodes=args.episodes,
    )
    metrics = ("qoe", "quality", "delay", "variance")
    print(f"sweep over {args.field} = {values}:\n")
    print(
        format_table(
            [args.field] + list(metrics),
            sweep_table(points, metrics=metrics),
        )
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.perf import (
        BENCH_ALLOCATOR_FILE,
        BENCH_SIMULATOR_FILE,
        bench_allocator,
        bench_simulator,
        persist_run,
    )

    sizes = [int(v) for v in args.sizes.split(",")]
    repeats = args.repeats
    sim_slots, episodes, workers = args.sim_slots, args.episodes, args.workers
    if args.quick:
        sizes = [s for s in sizes if s <= 100] or [5, 30]
        repeats = 1
        sim_slots = min(sim_slots, 120)
        episodes = min(episodes, 2)
        workers = min(workers, 2)

    out = Path(args.out)
    print(f"allocator benchmark (reference vs heap, repeats={repeats}):\n")
    allocator_run = bench_allocator(sizes=sizes, repeats=repeats, seed=args.seed)
    print(
        format_table(
            ["N", "reference (s)", "heap (s)", "speedup"],
            [
                [r["num_items"], r["reference_s"], r["heap_s"], r["speedup"]]
                for r in allocator_run["sizes"]
            ],
        )
    )
    persist_run(allocator_run, out / BENCH_ALLOCATOR_FILE)

    print(
        f"\nsimulator benchmark ({args.sim_users} users, {sim_slots} slots, "
        f"{episodes} episodes, {workers} workers):\n"
    )
    simulator_run = bench_simulator(
        num_users=args.sim_users,
        num_slots=sim_slots,
        num_episodes=episodes,
        max_workers=workers,
        seed=args.seed,
    )
    print(
        format_table(
            ["metric", "value"],
            [
                ["cold slots/s", simulator_run["cold_slots_per_s"]],
                ["warm slots/s", simulator_run["warm_slots_per_s"]],
                ["serial (s)", simulator_run["serial_s"]],
                [f"parallel x{workers} (s)", simulator_run["parallel_s"]],
                ["parallel speedup", simulator_run["parallel_speedup"]],
            ],
        )
    )
    persist_run(simulator_run, out / BENCH_SIMULATOR_FILE)
    print(
        f"\nwrote {out / BENCH_ALLOCATOR_FILE} and {out / BENCH_SIMULATOR_FILE}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the ICDCS 2022 collaborative-VR QoE paper.",
    )
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("fig1", help="Fig. 1a/1b convexity measurements")

    sim = sub.add_parser("sim", help="Fig. 2/3 trace-driven simulation")
    sim.add_argument("--users", type=int, default=5)
    sim.add_argument("--slots", type=int, default=900)
    sim.add_argument("--episodes", type=int, default=2)
    sim.add_argument("--no-optimal", action="store_true",
                     help="skip the exponential offline-optimal run")

    system = sub.add_parser("system", help="Fig. 7/8 testbed emulation")
    system.add_argument("--setup", type=int, choices=(1, 2), default=1)
    system.add_argument("--slots", type=int, default=900)
    system.add_argument("--repeats", type=int, default=2)

    theorem = sub.add_parser("theorem1", help="approximation ratio study")
    theorem.add_argument("--instances", type=int, default=200)

    sweep = sub.add_parser("sweep", help="sweep a config field (e.g. alpha)")
    sweep.add_argument("field", help="config field, or alpha/beta")
    sweep.add_argument("values", help="comma-separated values, e.g. 0.02,0.2,1.0")
    sweep.add_argument("--users", type=int, default=4)
    sweep.add_argument("--slots", type=int, default=400)
    sweep.add_argument("--episodes", type=int, default=1)

    bench = sub.add_parser(
        "bench", help="fast-path benchmarks (writes BENCH_*.json)"
    )
    bench.add_argument("--out", default=".",
                       help="directory for the BENCH_*.json history files")
    bench.add_argument("--sizes", default="5,30,100,1000",
                       help="comma-separated allocator instance sizes")
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument("--sim-users", type=int, default=5)
    bench.add_argument("--sim-slots", type=int, default=600)
    bench.add_argument("--episodes", type=int, default=4)
    bench.add_argument("--workers", type=int, default=4)
    bench.add_argument("--quick", action="store_true",
                       help="smoke-test scale for CI")

    lint = sub.add_parser(
        "lint", help="domain-aware static analysis (rules RL001-RL006)"
    )
    add_lint_arguments(lint)

    return parser


_COMMANDS = {
    "fig1": _cmd_fig1,
    "sim": _cmd_sim,
    "system": _cmd_system,
    "theorem1": _cmd_theorem1,
    "sweep": _cmd_sweep,
    "bench": _cmd_bench,
    "lint": run_lint_command,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
