"""Command-line interface: ``python -m repro <command>``.

Every experiment in the paper can be reproduced from the shell without
writing code:

* ``python -m repro fig1``   — the Fig. 1a/1b convexity measurements;
* ``python -m repro sim``    — the Fig. 2/3 trace-driven comparison;
* ``python -m repro system`` — the Fig. 7/8 testbed emulation;
* ``python -m repro theorem1`` — the approximation-ratio study;
* ``python -m repro lint``   — the domain-aware static analysis gate;
* ``python -m repro obs``    — trace-file and ``/metrics`` tooling;
* ``python -m repro faults`` — fault-script generation and inspection.

Each command prints the figure's rows as a text table (and an ASCII
CDF/bar sketch where that helps).  Scale flags (--slots, --episodes,
--repeats, --users) trade fidelity for runtime; defaults finish in
tens of seconds on a laptop.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

import numpy as np

from repro.analysis import ascii_bars, ascii_cdf, comparison_table, format_table
from repro.content.rate import RateModel
from repro.core import (
    DensityValueGreedyAllocator,
    FireflyAllocator,
    OfflineOptimalAllocator,
    PavqAllocator,
)
from repro.faults.cli import add_faults_arguments, run_faults_command
from repro.knapsack import combined_greedy, solve_exact
from repro.lint.cli import add_lint_arguments, run_lint_command
from repro.obs.cli import add_obs_arguments, run_obs_command
from repro.simulation import SimulationConfig, TraceSimulator
from repro.simulation.delaymodel import mean_rtt_curve
from repro.system import SystemExperiment, setup1_config, setup2_config


def _cmd_fig1(args: argparse.Namespace) -> int:
    model = RateModel(seed=args.seed)
    print("Fig. 1a — tile-set size vs quality level (two contents):\n")
    rows = [
        [level, model.curve(3).size(level), model.curve(17).size(level)]
        for level in range(1, 7)
    ]
    print(format_table(["level", "content A (Mbps)", "content B (Mbps)"], rows))

    print("\nFig. 1b — mean RTT vs sending rate (15 Mbps cap):\n")
    rates = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 13.5]
    curve = mean_rtt_curve(rates, capacity_mbps=15.0, num_samples=20_000,
                           seed=args.seed)
    print(format_table(["rate (Mbps)", "mean RTT (ms)"], list(map(list, zip(rates, curve)))))
    return 0


def _allocators(include_optimal: bool) -> Dict[str, object]:
    allocators: Dict[str, object] = {
        "ours": DensityValueGreedyAllocator(),
        "pavq": PavqAllocator(),
        "firefly": FireflyAllocator(),
    }
    if include_optimal:
        allocators["optimal"] = OfflineOptimalAllocator()
    return allocators


def _cmd_sim(args: argparse.Namespace) -> int:
    config = SimulationConfig(
        num_users=args.users, duration_slots=args.slots, seed=args.seed
    )
    simulator = TraceSimulator(config)
    include_optimal = args.users <= 8 and not args.no_optimal
    print(
        f"Fig. {'2' if args.users <= 8 else '3'}-style simulation: "
        f"{args.users} users, {args.slots} slots, {args.episodes} episode(s)\n"
    )
    comparison = simulator.compare(
        _allocators(include_optimal), num_episodes=args.episodes
    )
    metrics = ("qoe", "quality", "delay", "variance")
    table = {name: res.means(metrics) for name, res in comparison.items()}
    print(comparison_table(table, metrics, reference="firefly"))
    print("\nQoE CDFs:\n")
    print(ascii_cdf({name: res.cdf("qoe") for name, res in comparison.items()}))
    return 0


def _cmd_system(args: argparse.Namespace) -> int:
    make = setup1_config if args.setup == 1 else setup2_config
    config = make(duration_slots=args.slots, seed=args.seed)
    experiment = SystemExperiment(config)
    print(
        f"Fig. {'7' if args.setup == 1 else '8'}-style emulation: setup "
        f"{args.setup} ({config.num_users} users, {config.num_routers} "
        f"router(s)), {args.repeats} repeat(s)\n"
    )
    comparison = experiment.compare(_allocators(False), repeats=args.repeats)
    metrics = ("qoe", "quality", "delay", "variance")
    table = {}
    for name, res in comparison.items():
        row = res.means(metrics)
        row["fps"] = res.mean_fps()
        table[name] = row
    print(comparison_table(table, metrics + ("fps",)))
    print("\nAverage QoE:\n")
    print(ascii_bars({name: res.mean("qoe") for name, res in comparison.items()}))
    return 0


def _cmd_theorem1(args: argparse.Namespace) -> int:
    from repro.knapsack.random_instances import random_instance

    rng = np.random.default_rng(args.seed)
    ratios: List[float] = []
    for _ in range(args.instances):
        problem = random_instance(
            rng,
            num_items=int(rng.integers(2, 6)),
            num_options=int(rng.integers(3, 7)),
            tightness=float(rng.uniform(0.05, 0.95)),
        )
        base = problem.base_solution().value
        gain_greedy = combined_greedy(problem).value - base
        gain_opt = solve_exact(problem).value - base
        if gain_opt > 1e-12:
            ratios.append(gain_greedy / gain_opt)
    arr = np.array(ratios)
    print("Theorem 1 — combined greedy vs exact optimum (gain ratio):\n")
    print(
        format_table(
            ["statistic", "value"],
            [
                ["instances", float(len(arr))],
                ["min", float(arr.min())],
                ["median", float(np.median(arr))],
                ["mean", float(arr.mean())],
                ["fraction optimal", float((arr > 1 - 1e-9).mean())],
            ],
        )
    )
    return 0 if (arr >= 0.5 - 1e-9).all() else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.simulation.sweep import run_sweep, sweep_table

    base = SimulationConfig(
        num_users=args.users, duration_slots=args.slots, seed=args.seed
    )
    values = [float(v) for v in args.values.split(",")]
    points = run_sweep(
        base,
        DensityValueGreedyAllocator,
        {args.field: values},
        num_episodes=args.episodes,
    )
    metrics = ("qoe", "quality", "delay", "variance")
    print(f"sweep over {args.field} = {values}:\n")
    print(
        format_table(
            [args.field] + list(metrics),
            sweep_table(points, metrics=metrics),
        )
    )
    return 0


_BENCH_KINDS = ("allocator", "simulator", "serve", "obs", "kernel", "scale")


def _cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.errors import ConfigurationError
    from repro.perf import (
        BENCH_ALLOCATOR_FILE,
        BENCH_KERNEL_FILE,
        BENCH_SIMULATOR_FILE,
        bench_allocator,
        bench_kernel,
        bench_simulator,
        persist_run,
    )

    kinds = [k.strip() for k in args.kind.split(",") if k.strip()]
    for kind in kinds:
        if kind not in _BENCH_KINDS:
            raise ConfigurationError(
                f"unknown bench kind {kind!r}; expected some of {_BENCH_KINDS}"
            )
    sizes = [int(v) for v in args.sizes.split(",")]
    repeats = args.repeats
    sim_slots, episodes, workers = args.sim_slots, args.episodes, args.workers
    kernel_users = args.kernel_users
    kernel_slots = args.kernel_slots
    if args.quick:
        sizes = [s for s in sizes if s <= 100] or [5, 30]
        repeats = 1
        sim_slots = min(sim_slots, 120)
        episodes = min(episodes, 2)
        workers = min(workers, 2)
        kernel_users = min(kernel_users, 500)
        kernel_slots = min(kernel_slots, 2)

    out = Path(args.out)
    written = []
    runs: Dict[str, Dict] = {}

    def _dash(value: object) -> object:
        return "-" if value is None else value

    if "allocator" in kinds:
        print(
            f"allocator benchmark (reference vs heap vs array, "
            f"repeats={repeats}):\n"
        )
        allocator_run = bench_allocator(
            sizes=sizes, repeats=repeats, seed=args.seed
        )
        print(
            format_table(
                ["N", "reference (s)", "heap (s)", "array (s)",
                 "heap speedup", "array speedup"],
                [
                    [
                        r["num_items"],
                        _dash(r["reference_s"]),
                        r["heap_s"],
                        r["array_s"],
                        _dash(r["speedup"]),
                        r["array_speedup"],
                    ]
                    for r in allocator_run["sizes"]
                ],
            )
        )
        persist_run(allocator_run, out / BENCH_ALLOCATOR_FILE)
        written.append(out / BENCH_ALLOCATOR_FILE)
        runs["allocator"] = allocator_run

    if "simulator" in kinds:
        print(
            f"\nsimulator benchmark ({args.sim_users} users, {sim_slots} "
            f"slots, {episodes} episodes, {workers} workers):\n"
        )
        simulator_run = bench_simulator(
            num_users=args.sim_users,
            num_slots=sim_slots,
            num_episodes=episodes,
            max_workers=workers,
            seed=args.seed,
        )
        print(
            format_table(
                ["metric", "value"],
                [
                    ["cold slots/s", simulator_run["cold_slots_per_s"]],
                    ["warm slots/s", simulator_run["warm_slots_per_s"]],
                    ["serial (s)", simulator_run["serial_s"]],
                    [f"parallel x{workers} (s)",
                     _dash(simulator_run["parallel_s"])],
                    ["parallel speedup",
                     _dash(simulator_run["parallel_speedup"])],
                ],
            )
        )
        if simulator_run["parallel_fallback"]:
            print(f"\nserial fallback: {simulator_run['parallel_reason']}")
        persist_run(simulator_run, out / BENCH_SIMULATOR_FILE)
        written.append(out / BENCH_SIMULATOR_FILE)
        runs["simulator"] = simulator_run

    if "kernel" in kinds:
        print(
            f"\nkernel benchmark ({kernel_users} users, "
            f"{args.kernel_levels} levels, {kernel_slots} slots, "
            f"repeats={repeats}):\n"
        )
        kernel_run = bench_kernel(
            num_users=kernel_users,
            num_levels=args.kernel_levels,
            num_slots=kernel_slots,
            repeats=repeats,
            seed=args.seed,
        )
        print(
            format_table(
                ["metric", "value"],
                [
                    ["object slots/s", kernel_run["object_slots_per_s"]],
                    ["array slots/s", kernel_run["array_slots_per_s"]],
                    ["allocate speedup", kernel_run["speedup"]],
                    ["solutions identical",
                     float(kernel_run["solutions_identical"])],
                    ["batch bytes", kernel_run["batch_nbytes"]],
                    ["predictor speedup",
                     kernel_run["predictor"]["speedup"]],
                    ["coverage speedup", kernel_run["coverage"]["speedup"]],
                ],
            )
        )
        persist_run(kernel_run, out / BENCH_KERNEL_FILE)
        written.append(out / BENCH_KERNEL_FILE)
        runs["kernel"] = kernel_run

    if "serve" in kinds:
        from repro.serve import BENCH_SERVE_FILE, bench_serve

        serve_users = [int(v) for v in args.serve_users.split(",")]
        serve_slots = args.serve_slots
        mux_clients = args.mux_clients
        mux_connections = args.mux_connections
        if args.quick:
            serve_users = [u for u in serve_users if u <= 2] or [2]
            serve_slots = min(serve_slots, 40)
            mux_clients = min(mux_clients, 16)
            mux_connections = min(mux_connections, 2)
        print(
            f"\nserving benchmark (fleets {serve_users}, {serve_slots} slots, "
            f"target hit rate {args.serve_target}):\n"
        )
        serve_run = bench_serve(
            user_counts=serve_users,
            slots=serve_slots,
            seed=args.seed,
            deadline_target=args.serve_target,
            mux_clients=mux_clients,
            mux_connections=mux_connections,
        )
        print(
            format_table(
                ["users", "hit rate", "p50 slot (ms)", "p99 slot (ms)"],
                [
                    [
                        int(r["users"]),
                        r["deadline_hit_rate"],
                        r["p50_slot_ms"],
                        r["p99_slot_ms"],
                    ]
                    for r in serve_run["fleets"]
                ],
            )
        )
        print(
            f"\nusers sustained at >={args.serve_target:.0%} hit rate: "
            f"{serve_run['users_sustained']}"
        )
        protocol = serve_run["protocol"]
        print(
            f"\nwire codecs (micro-bench): v1 "
            f"{protocol['frames_per_s_v1']:.0f} frames/s, v2 "
            f"{protocol['frames_per_s_v2']:.0f} frames/s, speedup "
            f"{protocol['codec_speedup']:.2f}x\n"
        )
        print(
            format_table(
                ["codec", "users", "hit rate", "p99 slot (ms)", "missed"],
                [
                    [
                        int(r["codec"]),
                        int(r["users"]),
                        r["deadline_hit_rate"],
                        r["p99_slot_ms"],
                        int(r["missed_reports"]),
                    ]
                    for r in protocol["fleets"]
                ],
            )
        )
        if "mux" in protocol:
            mux = protocol["mux"]
            print(
                f"\nmux: {int(mux['clients'])} virtual clients over "
                f"{int(mux['connections'])} connections, hit rate "
                f"{mux['deadline_hit_rate']:.4f}, p99 slot "
                f"{mux['p99_slot_ms']:.2f} ms, missed "
                f"{int(mux['missed_reports'])}"
            )
        persist_run(serve_run, out / BENCH_SERVE_FILE)
        written.append(out / BENCH_SERVE_FILE)
        runs["serve"] = serve_run

    if "obs" in kinds:
        from repro.obs.bench import BENCH_OBS_FILE, bench_obs

        serve_users = [int(v) for v in args.serve_users.split(",")]
        obs_users = max(serve_users)
        obs_slots = args.serve_slots
        if args.quick:
            obs_users = min(obs_users, 2)
            obs_slots = min(obs_slots, 40)
        obs_repeats = 1 if args.quick else repeats
        print(
            f"\nobservability overhead benchmark ({obs_users} users, "
            f"{obs_slots} slots, repeats={obs_repeats}):\n"
        )
        obs_run = bench_obs(
            users=obs_users,
            slots=obs_slots,
            seed=args.seed,
            repeats=obs_repeats,
        )
        print(
            format_table(
                ["metric", "value"],
                [
                    ["obs off mean slot (ms)", obs_run["off_mean_slot_ms"]],
                    ["obs on mean slot (ms)", obs_run["on_mean_slot_ms"]],
                    ["overhead (%)", obs_run["overhead_pct"]],
                    ["within budget", float(obs_run["within_budget"])],
                ],
            )
        )
        persist_run(obs_run, out / BENCH_OBS_FILE)
        written.append(out / BENCH_OBS_FILE)
        runs["obs"] = obs_run

    if "scale" in kinds:
        from repro.shard import BENCH_SCALE_FILE, bench_scale

        scale_shards = [int(v) for v in args.scale_shards.split(",")]
        scale_users = args.scale_users
        scale_slots = args.scale_slots
        if args.quick:
            scale_shards = [n for n in scale_shards if n <= 2] or [1, 2]
            scale_users = min(scale_users, 2)
            scale_slots = min(scale_slots, 30)
        print(
            f"\nshard scale benchmark (shard counts {scale_shards}, "
            f"{scale_users} users/shard, {scale_slots} slots, "
            f"target hit rate {args.serve_target}):\n"
        )
        scale_run = bench_scale(
            shard_counts=scale_shards,
            users_per_shard=scale_users,
            slots=scale_slots,
            seed=args.seed,
            deadline_target=args.serve_target,
        )
        print(
            format_table(
                ["shards", "users", "hit rate", "missed", "migrations"],
                [
                    [
                        int(r["shards"]),
                        int(r["users"]),
                        r["deadline_hit_rate"],
                        int(r["missed_reports"]),
                        int(r["migrations"]),
                    ]
                    for r in scale_run["clusters"]
                ],
            )
        )
        print(
            f"\nusers sustained at >={args.serve_target:.0%} hit rate: "
            f"{scale_run['users_sustained']}"
        )
        persist_run(scale_run, out / BENCH_SCALE_FILE)
        written.append(out / BENCH_SCALE_FILE)
        runs["scale"] = scale_run

    if written:
        print("\nwrote " + ", ".join(str(p) for p in written))

    if args.check:
        import json as _json

        from repro.perf.regression import check_bench, format_report

        baseline_dir = (
            Path(args.baseline_dir) if args.baseline_dir is not None else out
        )
        report = check_bench(runs, baseline_dir)
        print("\n" + "\n".join(format_report(report)))
        if args.check_report is not None:
            report_path = Path(args.check_report)
            report_path.parent.mkdir(parents=True, exist_ok=True)
            report_path.write_text(
                _json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            print(f"wrote {report_path}")
        if not report.passed:
            return 1
    return 0


def _print_serve_metrics(metrics: object) -> None:
    """Render a ServingMetrics summary as text tables."""
    summary = metrics.summary()  # type: ignore[attr-defined]
    rows = [
        ["slots", summary["slots"]],
        ["deadline hit rate", summary["deadline_hit_rate"]],
        ["slot deadline (ms)", summary["slot_deadline_ms"]],
        ["joins", summary["joins"]],
        ["leaves", summary["leaves"]],
        ["timeouts", summary["timeouts"]],
        ["degraded user-slots", summary["degraded_user_slots"]],
        ["missed reports", summary["missed_reports"]],
        ["dropped frames", summary["dropped_frames"]],
    ]
    for code, count in summary["rejects"].items():
        rows.append([f"rejects[{code}]", count])
    print(format_table(["metric", "value"], rows))
    stage_rows = [
        [stage, stats["p50_ms"], stats["p99_ms"], stats["max_ms"]]
        for stage, stats in summary["stage_latency_ms"].items()
    ]
    if stage_rows:
        print("\nper-stage latency:\n")
        print(format_table(["stage", "p50 (ms)", "p99 (ms)", "max (ms)"], stage_rows))
    quality = summary["per_user_mean_viewed_quality"]
    if quality:
        print("\nper-user mean viewed quality:\n")
        print(format_table(["seat", "quality"], [[s, q] for s, q in quality.items()]))


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    from dataclasses import replace

    from repro.errors import ReproError
    from repro.faults import FaultSchedule
    from repro.obs import ObsConfig
    from repro.serve import VrServeServer, install_uvloop, serve_setup1
    from repro.units import SLOT_DURATION_S

    slot_s = SLOT_DURATION_S if args.slot_ms is None else args.slot_ms / 1e3
    try:
        obs_config = ObsConfig(
            enabled=not args.no_obs,
            trace_path=args.trace,
            sample_every=args.trace_sample,
            flight_dir=args.flight_dir,
            http_port=args.metrics_port,
        )
        config = serve_setup1(
            max_users=args.users,
            duration_slots=args.slots,
            seed=args.seed,
            slot_s=slot_s,
            host=args.host,
            port=args.port,
            expect_clients=args.expect,
            lockstep=args.lockstep,
        )
        faults = (
            FaultSchedule.load(args.faults) if args.faults is not None else None
        )
        config = replace(
            config,
            start_timeout_s=args.start_timeout,
            obs=obs_config,
            faults=faults,
            resume_grace_s=args.resume_grace,
            resume_grace_slots=args.resume_grace_slots,
            kernel=args.kernel,
            codec_max=args.codec_max,
            uvloop=args.uvloop,
        )
        if config.uvloop:
            installed = install_uvloop()
            print(
                "uvloop event loop installed"
                if installed
                else "uvloop not available; using the stock asyncio loop",
                flush=True,
            )

        async def _run() -> object:
            server = VrServeServer(config)
            await server.start()
            print(f"serving on {config.host}:{server.port}", flush=True)
            if args.metrics_port is not None:
                print(
                    f"metrics on http://{obs_config.http_host}:"
                    f"{server.metrics_port}/metrics",
                    flush=True,
                )
            return await server.run()

        result = asyncio.run(_run())
    except ReproError as exc:
        print(f"serve failed: {exc}", file=sys.stderr)
        return 1
    print(
        f"\nrun complete: {result.slots} slots, deadline hit rate "
        f"{result.metrics.deadline_hit_rate:.4f}\n"
    )
    _print_serve_metrics(result.metrics)
    if result.metrics.deadline_hit_rate < args.require_hit_rate:
        print(
            f"deadline hit rate {result.metrics.deadline_hit_rate:.4f} below "
            f"required {args.require_hit_rate}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from repro.errors import ReproError
    from repro.faults import FaultSchedule
    from repro.serve import (
        LoadGenConfig,
        ReconnectPolicy,
        run_fleet,
        run_mux_fleet,
    )

    try:
        faults = (
            FaultSchedule.load(args.faults) if args.faults is not None else None
        )
        config = LoadGenConfig(
            host=args.host,
            port=args.port,
            num_clients=args.clients,
            seed=args.seed,
            latency_s=args.latency_ms / 1e3,
            jitter_s=args.jitter_ms / 1e3,
            slow_clients=args.slow_clients,
            slow_latency_s=args.slow_latency_ms / 1e3,
            churn_clients=args.churn_clients,
            churn_leave_after_slots=args.churn_leave,
            faults=faults,
            reconnect=ReconnectPolicy(max_attempts=args.reconnect_attempts),
            codec=args.codec,
        )
        if args.mux:
            fleet = asyncio.run(
                run_mux_fleet(config, connections=args.mux_connections)
            )
        else:
            fleet = asyncio.run(run_fleet(config))
    except ReproError as exc:
        print(f"loadgen failed: {exc}", file=sys.stderr)
        return 1
    except (ConnectionError, OSError) as exc:
        print(f"loadgen failed: cannot reach server: {exc}", file=sys.stderr)
        return 1
    print(f"fleet of {args.clients} client(s) against {args.host}:{args.port}:\n")
    print(
        format_table(
            ["client", "seat", "frames", "displayed", "quality", "fps", "end"],
            [
                [
                    c.name,
                    c.seat,
                    c.frames,
                    c.displayed,
                    c.mean_viewed_quality,
                    c.fps,
                    c.end_reason if not c.rejected else f"rejected[{c.reject_code}]",
                ]
                for c in fleet.clients
            ],
        )
    )
    failed = [
        c
        for c in fleet.clients
        if c.rejected or c.end_reason not in ("complete", "churned")
    ]
    if failed:
        print(
            f"{len(failed)} client(s) did not complete: "
            + ", ".join(c.name for c in failed),
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the ICDCS 2022 collaborative-VR QoE paper.",
    )
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("fig1", help="Fig. 1a/1b convexity measurements")

    sim = sub.add_parser("sim", help="Fig. 2/3 trace-driven simulation")
    sim.add_argument("--users", type=int, default=5)
    sim.add_argument("--slots", type=int, default=900)
    sim.add_argument("--episodes", type=int, default=2)
    sim.add_argument("--no-optimal", action="store_true",
                     help="skip the exponential offline-optimal run")

    system = sub.add_parser("system", help="Fig. 7/8 testbed emulation")
    system.add_argument("--setup", type=int, choices=(1, 2), default=1)
    system.add_argument("--slots", type=int, default=900)
    system.add_argument("--repeats", type=int, default=2)

    theorem = sub.add_parser("theorem1", help="approximation ratio study")
    theorem.add_argument("--instances", type=int, default=200)

    sweep = sub.add_parser("sweep", help="sweep a config field (e.g. alpha)")
    sweep.add_argument("field", help="config field, or alpha/beta")
    sweep.add_argument("values", help="comma-separated values, e.g. 0.02,0.2,1.0")
    sweep.add_argument("--users", type=int, default=4)
    sweep.add_argument("--slots", type=int, default=400)
    sweep.add_argument("--episodes", type=int, default=1)

    bench = sub.add_parser(
        "bench", help="fast-path benchmarks (writes BENCH_*.json)"
    )
    bench.add_argument("--out", default=".",
                       help="directory for the BENCH_*.json history files")
    bench.add_argument("--kind", default=",".join(_BENCH_KINDS),
                       help="comma-separated subset of benchmarks to run: "
                            + ",".join(_BENCH_KINDS))
    bench.add_argument("--sizes", default="5,30,100,1000,10000",
                       help="comma-separated allocator instance sizes")
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument("--sim-users", type=int, default=5)
    bench.add_argument("--sim-slots", type=int, default=600)
    bench.add_argument("--episodes", type=int, default=4)
    bench.add_argument("--workers", type=int, default=4)
    bench.add_argument("--kernel-users", type=int, default=10000,
                       help="population size for the slot-kernel bench")
    bench.add_argument("--kernel-levels", type=int, default=6)
    bench.add_argument("--kernel-slots", type=int, default=3,
                       help="distinct seeded slots timed per arm")
    bench.add_argument("--serve-users", default="2,4,8",
                       help="comma-separated fleet sizes for the serve bench")
    bench.add_argument("--serve-slots", type=int, default=120)
    bench.add_argument("--serve-target", type=float, default=0.99,
                       help="deadline hit rate a fleet must sustain")
    bench.add_argument("--mux-clients", type=int, default=128,
                       help="virtual clients for the multiplexed serve row "
                            "(0 = skip)")
    bench.add_argument("--mux-connections", type=int, default=4,
                       help="physical connections for the multiplexed row")
    bench.add_argument("--scale-shards", default="1,2",
                       help="comma-separated shard counts for the scale bench")
    bench.add_argument("--scale-users", type=int, default=2,
                       help="clients per shard for the scale bench")
    bench.add_argument("--scale-slots", type=int, default=80,
                       help="per-shard slots for the scale bench")
    bench.add_argument("--quick", action="store_true",
                       help="smoke-test scale for CI")
    bench.add_argument("--check", action="store_true",
                       help="diff the fresh run against committed baselines; "
                            "exit 1 on a regression")
    bench.add_argument("--baseline-dir", default=None,
                       help="directory holding the baseline BENCH_*.json "
                            "files (default: --out)")
    bench.add_argument("--check-report", default=None,
                       help="write the machine-readable check report "
                            "(JSON) to this path")

    serve = sub.add_parser(
        "serve", help="live edge server over TCP (setup-1 emulated network)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="listening port (0 = ephemeral, printed at start)")
    serve.add_argument("--users", type=int, default=8,
                       help="scheduler seats / admission capacity K")
    serve.add_argument("--expect", type=int, default=1,
                       help="clients that must be ready before the loop starts")
    serve.add_argument("--slots", type=int, default=300,
                       help="total slots (the loop runs slots-1 tx slots)")
    serve.add_argument("--lockstep", action="store_true",
                       help="barrier-driven slots (deterministic; no pacing)")
    serve.add_argument("--slot-ms", type=float, default=None,
                       help="override the slot duration in milliseconds")
    serve.add_argument("--start-timeout", type=float, default=30.0,
                       help="seconds to wait for --expect clients")
    serve.add_argument("--require-hit-rate", type=float, default=0.0,
                       help="exit 1 if the slot-deadline hit rate ends lower")
    serve.add_argument("--metrics-port", type=int, default=None,
                       help="expose /metrics, /healthz, /snapshot on this "
                            "port (0 = ephemeral, printed at start)")
    serve.add_argument("--trace", default=None,
                       help="write sampled slot spans to this JSONL file")
    serve.add_argument("--trace-sample", type=int, default=16,
                       help="write every Nth slot span to --trace")
    serve.add_argument("--flight-dir", default=None,
                       help="directory for flight-recorder anomaly dumps")
    serve.add_argument("--no-obs", action="store_true",
                       help="disable tracing and the flight recorder")
    serve.add_argument("--faults", default=None,
                       help="JSON fault script to inject server-side faults")
    serve.add_argument("--resume-grace", type=float, default=0.0,
                       help="lockstep session-resume grace window in seconds "
                            "(0 = resume disabled)")
    serve.add_argument("--resume-grace-slots", type=int, default=0,
                       help="paced-mode resume grace window in slots "
                            "(0 = resume disabled)")
    serve.add_argument("--kernel", action="store_true",
                       help="allocate with the vectorized array kernel "
                            "(bit-identical; faster at large seat counts)")
    serve.add_argument("--codec-max", type=int, choices=(1, 2), default=2,
                       help="newest wire codec to negotiate (1 pins every "
                            "connection to JSON framing)")
    serve.add_argument("--uvloop", action="store_true",
                       help="install the uvloop event-loop policy if the "
                            "package is available")

    loadgen = sub.add_parser(
        "loadgen", help="client fleet replaying motion traces at a server"
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, required=True,
                         help="server port to connect to")
    loadgen.add_argument("--clients", type=int, default=1)
    loadgen.add_argument("--latency-ms", type=float, default=0.0,
                         help="think-time before each report")
    loadgen.add_argument("--jitter-ms", type=float, default=0.0,
                         help="uniform extra think-time bound")
    loadgen.add_argument("--slow-clients", type=int, default=0,
                         help="first N clients use --slow-latency-ms instead")
    loadgen.add_argument("--slow-latency-ms", type=float, default=0.0)
    loadgen.add_argument("--churn-clients", type=int, default=0,
                         help="first N clients leave after --churn-leave slots")
    loadgen.add_argument("--churn-leave", type=int, default=0)
    loadgen.add_argument("--faults", default=None,
                         help="JSON fault script to inject client-side faults")
    loadgen.add_argument("--reconnect-attempts", type=int, default=0,
                         help="reconnect budget per outage (0 = clients do "
                              "not heal)")
    loadgen.add_argument("--codec", type=int, choices=(1, 2), default=2,
                         help="newest wire codec to offer at join (1 forces "
                              "JSON framing)")
    loadgen.add_argument("--mux", action="store_true",
                         help="multiplex all clients as virtual clients over "
                              "--mux-connections binary-codec sockets")
    loadgen.add_argument("--mux-connections", type=int, default=4,
                         help="physical connections carrying the mux fleet")

    lint = sub.add_parser(
        "lint", help="domain-aware static analysis (rules RL001-RL007)"
    )
    add_lint_arguments(lint)

    obs = sub.add_parser(
        "obs", help="inspect span traces and scrape observability endpoints"
    )
    add_obs_arguments(obs)

    faults = sub.add_parser(
        "faults", help="generate and inspect deterministic fault scripts"
    )
    add_faults_arguments(faults)

    return parser


_COMMANDS = {
    "fig1": _cmd_fig1,
    "sim": _cmd_sim,
    "system": _cmd_system,
    "theorem1": _cmd_theorem1,
    "sweep": _cmd_sweep,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "lint": run_lint_command,
    "obs": run_obs_command,
    "faults": run_faults_command,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
