"""Online rendering and encoding (the paper's Section VIII).

The evaluated system renders and encodes every tile offline; the
Discussion notes that a live teacher needs *online* rendering, whose
per-slot overhead threatens the synchronisation budget, and suggests
"coordinat[ing] multiple GPUs in a server to enable multiple encoders
working in parallel with the rendering".

This module models that future-work pipeline so its feasibility can be
explored quantitatively: each GPU renders tiles sequentially and hosts
a fixed number of hardware encoder sessions; a slot's tile workload is
packed onto the GPU pool (longest-processing-time) and the pipeline
either fits in the slot or eats into the delivery budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.units import SLOT_DURATION_S


@dataclass(frozen=True)
class GpuSpec:
    """One GPU's rendering and encoding capabilities.

    ``render_ms_per_tile`` is the panorama-tile render time at the
    base quality; rendering cost grows mildly with quality level
    (higher CRF quality encodes slower, rendering is
    resolution-bound and roughly level-independent).
    ``encoder_sessions`` mirrors NVENC's concurrent session limit;
    ``encode_mbps`` is per-session encoder throughput on the encoded
    bitstream.
    """

    render_ms_per_tile: float = 1.2
    encoder_sessions: int = 3
    encode_mbps: float = 700.0

    def __post_init__(self) -> None:
        if self.render_ms_per_tile <= 0:
            raise ConfigurationError(
                f"render time must be positive, got {self.render_ms_per_tile}"
            )
        if self.encoder_sessions < 1:
            raise ConfigurationError(
                f"need at least one encoder session, got {self.encoder_sessions}"
            )
        if self.encode_mbps <= 0:
            raise ConfigurationError(
                f"encode rate must be positive, got {self.encode_mbps}"
            )


@dataclass(frozen=True)
class RenderJob:
    """One tile to render and encode this slot."""

    tile_bits: float
    level: int

    def __post_init__(self) -> None:
        if self.tile_bits < 0:
            raise ConfigurationError(f"tile bits must be >= 0, got {self.tile_bits}")
        if self.level < 1:
            raise ConfigurationError(f"level must be >= 1, got {self.level}")


class OnlineRenderingPipeline:
    """Packs a slot's render+encode workload onto a GPU pool.

    Rendering on a GPU is serial; encoding runs on that GPU's encoder
    sessions in parallel with later renders (the pipelining the paper
    proposes).  A GPU's completion time is therefore
    ``max(render makespan, encode makespan)`` — the two stages overlap
    but each is throughput-bound.
    """

    def __init__(self, num_gpus: int = 4, spec: GpuSpec = GpuSpec()) -> None:
        if num_gpus < 1:
            raise ConfigurationError(f"need at least one GPU, got {num_gpus}")
        self.num_gpus = num_gpus
        self.spec = spec

    def _gpu_time_s(self, jobs: Sequence[RenderJob]) -> float:
        """Completion time of one GPU given its assigned jobs."""
        if not jobs:
            return 0.0
        render_s = len(jobs) * self.spec.render_ms_per_tile / 1e3
        encode_bits = sum(job.tile_bits for job in jobs)
        encode_s = encode_bits / (
            self.spec.encode_mbps * 1e6 * self.spec.encoder_sessions
        )
        return max(render_s, encode_s)

    def makespan_s(self, jobs: Sequence[RenderJob]) -> float:
        """Pipeline completion time for a slot's full workload."""
        ordered = sorted(jobs, key=lambda job: job.tile_bits, reverse=True)
        assignments: List[List[RenderJob]] = [[] for _ in range(self.num_gpus)]
        loads = [0.0] * self.num_gpus
        for job in ordered:
            gpu = min(range(self.num_gpus), key=loads.__getitem__)
            assignments[gpu].append(job)
            loads[gpu] = self._gpu_time_s(assignments[gpu])
        return max(loads) if jobs else 0.0

    def fits_in_slot(
        self, jobs: Sequence[RenderJob], slot_s: float = SLOT_DURATION_S
    ) -> bool:
        """True when the slot's workload meets the frame deadline."""
        return self.makespan_s(jobs) <= slot_s + 1e-12

    def max_users_supported(
        self,
        tiles_per_user: int,
        tile_bits: float,
        level: int,
        slot_s: float = SLOT_DURATION_S,
        search_limit: int = 256,
    ) -> int:
        """Largest user count whose workload still fits in one slot."""
        if tiles_per_user < 1:
            raise ConfigurationError(
                f"tiles_per_user must be >= 1, got {tiles_per_user}"
            )
        supported = 0
        for users in range(1, search_limit + 1):
            jobs = [
                RenderJob(tile_bits, level)
                for _ in range(users * tiles_per_user)
            ]
            if not self.fits_in_slot(jobs, slot_s):
                break
            supported = users
        return supported


def min_gpus_for(
    num_users: int,
    tiles_per_user: int,
    tile_bits: float,
    level: int,
    spec: GpuSpec = GpuSpec(),
    slot_s: float = SLOT_DURATION_S,
    max_gpus: int = 64,
) -> int:
    """Smallest GPU pool that renders+encodes a slot's workload on time.

    Returns 0 when even ``max_gpus`` cannot meet the deadline (a
    single tile exceeding the slot makes the workload infeasible at
    any pool size).
    """
    if num_users < 1:
        raise ConfigurationError(f"num_users must be >= 1, got {num_users}")
    jobs = [
        RenderJob(tile_bits, level) for _ in range(num_users * tiles_per_user)
    ]
    for gpus in range(1, max_gpus + 1):
        if OnlineRenderingPipeline(gpus, spec).fits_in_slot(jobs, slot_s):
            return gpus
    return 0
