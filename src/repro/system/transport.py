"""Transport emulation: RTP-like lossy delivery and the TCP side channel.

Section V: tiles travel over RTP (on UDP) so the sender controls the
rate directly — no TCP congestion control — at the cost of packet
loss; poses and tile ACKs travel over TCP, which is reliable but adds
a little latency.  Section VIII acknowledges that loss is "inevitable"
and untreated by the optimization — the emulation therefore models it
below the algorithm, exactly as the real system experiences it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError, TransportError

_EPS = 1e-9


@dataclass(frozen=True)
class TransmissionResult:
    """Outcome of sending one slot's tile bundle to one user."""

    duration_s: float
    packets_sent: int
    packets_lost: int
    lost_tile_indices: Tuple[int, ...]

    @property
    def loss_ratio(self) -> float:
        return self.packets_lost / self.packets_sent if self.packets_sent else 0.0


class RtpChannel:
    """Rate-controlled, unreliable tile delivery.

    Loss model: a base wireless loss floor plus a congestion component
    that ramps up as the offered demand approaches the achieved rate
    — sending into a shrinking link is how the real testbed loses
    packets when throughput estimates overshoot.

    Parameters
    ----------
    packet_bits:
        RTP packet payload size (1500 B MTU ~ 12 kbit).
    base_loss:
        Floor per-packet loss probability on a clean link.
    congestion_loss:
        Additional loss at 100% overshoot (demand = 2x achieved).
    starved_duration_s:
        Bounded worst-case duration reported when the link is starved
        (zero achieved rate).  A finite value keeps every downstream
        consumer — the delay clamp in the emulation, the serving
        layer's wire protocol, percentile math — well-defined; at 60 s
        it is equivalent to the old ``inf`` sentinel everywhere a
        delay is clamped to 60 slots.
    """

    def __init__(
        self,
        packet_bits: float = 12_000.0,
        base_loss: float = 0.001,
        congestion_loss: float = 0.25,
        starved_duration_s: float = 60.0,
    ) -> None:
        if packet_bits <= 0:
            raise ConfigurationError(f"packet size must be positive, got {packet_bits}")
        if not 0 <= base_loss < 1:
            raise ConfigurationError(f"base_loss must be in [0, 1), got {base_loss}")
        if not 0 <= congestion_loss <= 1:
            raise ConfigurationError(
                f"congestion_loss must be in [0, 1], got {congestion_loss}"
            )
        if not (starved_duration_s > 0 and math.isfinite(starved_duration_s)):
            raise ConfigurationError(
                f"starved duration must be finite and positive, "
                f"got {starved_duration_s}"
            )
        self.packet_bits = packet_bits
        self.base_loss = base_loss
        self.congestion_loss = congestion_loss
        self.starved_duration_s = starved_duration_s

    def packets_for(self, bits: float) -> int:
        """Number of packets needed for a payload."""
        if bits < 0:
            raise TransportError(f"payload must be non-negative, got {bits}")
        return int(math.ceil(bits / self.packet_bits)) if bits > 0 else 0

    def loss_probability(self, demand_mbps: float, achieved_mbps: float) -> float:
        """Per-packet loss probability given offered vs achieved rate."""
        if demand_mbps <= _EPS or achieved_mbps <= _EPS:
            return self.base_loss if demand_mbps > _EPS else 0.0
        overshoot = max(demand_mbps / achieved_mbps - 1.0, 0.0)
        return min(self.base_loss + self.congestion_loss * min(overshoot, 1.0), 0.99)

    def transmit(
        self,
        tile_bits: List[float],
        demand_mbps: float,
        achieved_mbps: float,
        rng: np.random.Generator,
    ) -> TransmissionResult:
        """Send a bundle of tiles; sample per-tile packet losses.

        ``duration_s`` is the first-to-last-packet span at the
        *achieved* rate — the quantity the client's delay measurement
        observes (Section V, "Delay measurement and prediction").
        """
        total_bits = float(sum(tile_bits))
        if total_bits <= _EPS:
            return TransmissionResult(0.0, 0, 0, tuple())
        if achieved_mbps <= _EPS:
            # Link starved out entirely this slot: everything is lost.
            # The duration stays finite (bounded worst case) so delay
            # math and wire encodings never have to special-case inf.
            packets = sum(self.packets_for(b) for b in tile_bits)
            return TransmissionResult(
                self.starved_duration_s, packets, packets,
                tuple(range(len(tile_bits))),
            )
        duration_s = total_bits / (achieved_mbps * 1e6)
        p_loss = self.loss_probability(demand_mbps, achieved_mbps)
        packets_sent = 0
        packets_lost = 0
        lost_tiles: List[int] = []
        for idx, bits in enumerate(tile_bits):
            n_packets = self.packets_for(bits)
            packets_sent += n_packets
            if n_packets == 0:
                continue
            lost = int(rng.binomial(n_packets, p_loss))
            packets_lost += lost
            if lost > 0:
                # Any lost packet corrupts the encoded tile.
                lost_tiles.append(idx)
        return TransmissionResult(duration_s, packets_sent, packets_lost, tuple(lost_tiles))


class TcpChannel:
    """Reliable side channel for poses and ACKs.

    TCP on the one-hop LAN is effectively instantaneous relative to a
    16.7 ms slot; the channel models it as a fixed small latency and
    never drops data.
    """

    def __init__(self, latency_s: float = 0.002) -> None:
        if latency_s < 0:
            raise ConfigurationError(f"latency must be non-negative, got {latency_s}")
        self.latency_s = latency_s

    def delivery_time(self, now_s: float) -> float:
        """Arrival time of a message sent now."""
        return now_s + self.latency_s
