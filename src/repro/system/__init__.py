"""Real-system emulation (Sections V-VI of the paper).

The paper evaluates its algorithm on 8-15 commodity Android phones
behind one or two Wi-Fi routers, with Linux TC throttling each user,
RTP/UDP tile delivery, TCP pose/ACK channels, hardware decoders, and
a transmit/decode/display pipeline.  This subpackage emulates that
testbed as a discrete-event simulation:

* :mod:`~repro.system.events` — the event engine;
* :mod:`~repro.system.netem` — TC-style token throttles, router
  fair-sharing, fading, and the two-router interference field;
* :mod:`~repro.system.transport` — RTP-like lossy delivery and the
  reliable TCP side channel;
* :mod:`~repro.system.client` — decoder pool, tile cache, display
  deadline accounting (FPS);
* :mod:`~repro.system.server` — the edge server: estimation, tile
  selection, dedup, and the pluggable quality allocator;
* :mod:`~repro.system.experiment` — the setup-1 / setup-2 runners
  behind Figs. 7 and 8.

Unlike the Section IV simulator, every quantity the scheduler sees
here is an *estimate* (EMA throughput, polynomial-regression delay),
which is exactly the robustness regime Figs. 7-8 probe.
"""

from repro.system.events import EventScheduler
from repro.system.netem import (
    FadingProcess,
    InterferenceField,
    Router,
    ThrottledLink,
    TokenBucket,
    max_min_fair_share,
)
from repro.system.transport import RtpChannel, TcpChannel, TransmissionResult
from repro.system.client import Client, DecoderPool, FrameOutcome
from repro.system.server import EdgeServer
from repro.system.experiment import (
    ExperimentConfig,
    SystemExperiment,
    setup1_config,
    setup2_config,
)
from repro.system.rendering import (
    GpuSpec,
    OnlineRenderingPipeline,
    RenderJob,
    min_gpus_for,
)
from repro.system.telemetry import SlotUserRecord, Telemetry
from repro.system.protocol import (
    DeliveryAck,
    PoseUpdate,
    ReleaseAck,
    TileBundleHeader,
    decode_stream,
    encode_stream,
)

__all__ = [
    "EventScheduler",
    "FadingProcess",
    "ThrottledLink",
    "Router",
    "InterferenceField",
    "TokenBucket",
    "max_min_fair_share",
    "RtpChannel",
    "TcpChannel",
    "TransmissionResult",
    "DecoderPool",
    "Client",
    "FrameOutcome",
    "EdgeServer",
    "ExperimentConfig",
    "SystemExperiment",
    "setup1_config",
    "setup2_config",
    "GpuSpec",
    "RenderJob",
    "OnlineRenderingPipeline",
    "min_gpus_for",
    "Telemetry",
    "SlotUserRecord",
    "PoseUpdate",
    "TileBundleHeader",
    "DeliveryAck",
    "ReleaseAck",
    "encode_stream",
    "decode_stream",
]
