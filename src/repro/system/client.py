"""The phone-side emulation: decoding, caching, display deadlines.

Section V-VI: each user replays a motion trace, uploads poses over
TCP, holds received tiles in a bounded RAM cache (releasing old tiles
with an ACK), decodes with 5 parallel hardware decoders, and either
displays or drops each slot's frame — "each tile will either be
displayed or dropped in each time slot", no prefetching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.content.database import ClientTileCache
from repro.errors import ConfigurationError
from repro.units import CLIENT_DECODERS, SLOT_DURATION_S


class DecoderPool:
    """Parallel hardware decoders with longest-processing-time packing.

    Decode time of a tile scales with its encoded size; the pool's
    makespan for a frame is the finish time of its busiest decoder
    under an LPT greedy assignment (how Android MediaCodec sessions
    behave when tiles are dispatched to free decoders).
    """

    def __init__(
        self,
        num_decoders: int = CLIENT_DECODERS,
        decode_rate_mbps: float = 400.0,
    ) -> None:
        if num_decoders < 1:
            raise ConfigurationError(
                f"need at least one decoder, got {num_decoders}"
            )
        if decode_rate_mbps <= 0:
            raise ConfigurationError(
                f"decode rate must be positive, got {decode_rate_mbps}"
            )
        self.num_decoders = num_decoders
        self.decode_rate_mbps = decode_rate_mbps

    def decode_time_s(self, tile_bits: Sequence[float]) -> float:
        """Makespan (seconds) to decode one frame's tiles."""
        jobs = sorted((float(b) for b in tile_bits if b > 0), reverse=True)
        if not jobs:
            return 0.0
        loads = [0.0] * self.num_decoders
        for bits in jobs:
            slot = min(range(self.num_decoders), key=loads.__getitem__)
            loads[slot] += bits / (self.decode_rate_mbps * 1e6)
        return max(loads)


@dataclass(frozen=True)
class FrameOutcome:
    """Per-slot display accounting for one user."""

    displayed: bool
    on_time: bool
    decodable: bool
    tiles_complete: bool
    covered: bool
    level: int
    delay_slots: float

    @property
    def viewed_quality(self) -> float:
        """``q_n(t) * 1_n(t)`` realized by this frame."""
        return float(self.level) if (self.displayed and self.covered) else 0.0

    @property
    def indicator(self) -> int:
        return 1 if (self.displayed and self.covered) else 0


class Client:
    """One emulated phone: tile cache, decoders, display ledger."""

    def __init__(
        self,
        user_id: int,
        cache_capacity_tiles: int = 2000,
        decoder_pool: Optional[DecoderPool] = None,
        slot_s: float = SLOT_DURATION_S,
    ) -> None:
        if user_id < 0:
            raise ConfigurationError(f"user_id must be non-negative, got {user_id}")
        if slot_s <= 0:
            raise ConfigurationError(f"slot duration must be positive, got {slot_s}")
        self.user_id = user_id
        self.cache = ClientTileCache(cache_capacity_tiles)
        self.decoders = decoder_pool if decoder_pool is not None else DecoderPool()
        self.slot_s = slot_s
        self.frames: List[FrameOutcome] = []
        self._delay_samples: List[float] = []
        #: Video ids evicted during the most recent receive_frame call;
        #: the experiment loop forwards them to the server as
        #: release-ACKs (Section V, "Handling repetitive tiles").
        self.last_released: List[int] = []

    def receive_frame(
        self,
        new_tile_ids: Sequence[int],
        new_tile_bits: Sequence[float],
        lost_tile_positions: Sequence[int],
        transmission_s: float,
        covered: bool,
        level: int,
    ) -> FrameOutcome:
        """Process one slot's delivery and record the display outcome.

        Parameters
        ----------
        new_tile_ids / new_tile_bits:
            The tiles actually transmitted this slot (cache misses on
            the server's dedup records).
        lost_tile_positions:
            Indices into ``new_tile_ids`` corrupted by packet loss.
        transmission_s:
            First-to-last packet span (the measured delivery delay).
        covered:
            Whether the delivered FoV-with-margin covered the true
            pose at display time.
        level:
            Quality level allocated for this frame (0 = skipped).

        Returns the frame outcome; skipped frames (level 0) are
        recorded as dropped.
        """
        if len(new_tile_ids) != len(new_tile_bits):
            raise ConfigurationError("tile ids and sizes must align")
        self.last_released = []
        if level == 0:
            outcome = FrameOutcome(
                displayed=False,
                on_time=True,
                decodable=True,
                tiles_complete=False,
                covered=False,
                level=0,
                delay_slots=0.0,
            )
            self.frames.append(outcome)
            return outcome

        lost = set(lost_tile_positions)
        for position, video_id in enumerate(new_tile_ids):
            if position not in lost:
                self.last_released.extend(self.cache.insert(video_id))

        # Pipelining: the tile bundle must arrive within its
        # transmission slot and decode within the next one.
        on_time = transmission_s <= self.slot_s + 1e-12
        decode_s = self.decoders.decode_time_s(new_tile_bits)
        decodable = decode_s <= self.slot_s + 1e-12
        tiles_complete = not lost
        displayed = on_time and decodable and tiles_complete
        delay_slots = transmission_s / self.slot_s
        self._delay_samples.append(delay_slots)

        outcome = FrameOutcome(
            displayed=displayed,
            on_time=on_time,
            decodable=decodable,
            tiles_complete=tiles_complete,
            covered=covered and displayed,
            level=level,
            delay_slots=delay_slots,
        )
        self.frames.append(outcome)
        return outcome

    def fps(self, target_fps: float) -> float:
        """Realized display rate over the whole run."""
        if not self.frames:
            return 0.0
        displayed = sum(1 for f in self.frames if f.displayed)
        return target_fps * displayed / len(self.frames)

    def mean_delay_slots(self) -> float:
        """Mean measured delivery delay in slot units."""
        if not self._delay_samples:
            return 0.0
        return sum(self._delay_samples) / len(self._delay_samples)
