"""The real-system experiment runner behind Figs. 7 and 8.

Reproduces the two Section VI setups:

* **setup 1** — 8 users behind a single router, server budget 400 Mbps;
* **setup 2** — 15 users split across two bridged routers that share
  an interference field, server budget 800 Mbps.

Users replay motion traces and are throttled to one of the five TC
guidelines {40, 45, 50, 55, 60} Mbps; everything the scheduler sees is
an estimate.  Each run reports the per-user average QoE, viewed
quality, delivery delay, quality variance, and realized FPS — the
bars of Figs. 7-8.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.content.database import TileDatabase
from repro.content.gop import GopModel
from repro.content.projection import FieldOfView
from repro.content.rate import RateModel
from repro.content.tiles import GridWorld, TileGrid, VideoId
from repro.core.allocation import QualityAllocator
from repro.core.qoe import QoEWeights
from repro.errors import ConfigurationError
from repro.faults.schedule import (
    FAULT_CORRUPT_REPORT,
    FAULT_DELAY_REPORT,
    FaultSchedule,
)
from repro.obs.config import Obs
from repro.prediction.fov import CoverageEvaluator
from repro.simulation.metrics import (
    EpisodeResult,
    MultiEpisodeResults,
    summarize_ledger,
)
from repro.system.client import Client, DecoderPool
from repro.system.events import EventScheduler
from repro.system.netem import (
    FadingProcess,
    InterferenceField,
    Router,
    ThrottledLink,
)
import repro.system.protocol as protocol
from repro.system.server import EdgeServer
from repro.system.telemetry import SlotUserRecord, Telemetry
from repro.system.transport import RtpChannel
from repro.traces.motion import MotionConfig, MotionTraceGenerator
from repro.units import (
    SETUP1_SERVER_MBPS,
    SETUP2_SERVER_MBPS,
    SLOT_DURATION_S,
    TARGET_FPS,
    THROTTLE_GUIDELINES_MBPS,
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration of one real-system setup."""

    num_users: int = 8
    num_routers: int = 1
    router_capacity_mbps: float = 400.0
    server_budget_mbps: float = SETUP1_SERVER_MBPS
    throttle_guidelines: Sequence[float] = THROTTLE_GUIDELINES_MBPS
    weights: QoEWeights = field(default_factory=QoEWeights.system_defaults)
    duration_slots: int = 1800
    slot_s: float = SLOT_DURATION_S
    margin_deg: float = 15.0
    cell_tolerance: int = 1
    world_size_m: float = 8.0
    interference_onset: float = 0.0005
    interference_severity: Sequence[float] = (0.25, 0.6)
    link_fading_sigma: float = 0.05
    router_fading_sigma: float = 0.02
    rtp_base_loss: float = 1e-4
    rtp_congestion_loss: float = 0.25
    client_cache_tiles: int = 600
    decode_rate_mbps: float = 400.0
    num_decoders: int = 5
    initial_cap_mbps: float = 60.0
    content_refresh_slots: int = 1
    level_ratio: float = 1.25
    safety_factor: float = 0.95
    contention_loss_per_flow: float = 0.005
    #: Extra slots of pose-upload staleness (TCP queuing/scheduling):
    #: with k > 0 the server plans slot t from poses up to t - 1 - k,
    #: lengthening the effective prediction horizon.
    pose_upload_latency_slots: int = 0
    #: When True the scheduler adds one constraint per router (budget
    #: = router capacity x planning_efficiency) to the per-slot
    #: problem, instead of relying on the single aggregate B(t).
    router_aware: bool = False
    router_planning_efficiency: float = 0.9
    #: GoP burstiness: 0 = the paper's constant-per-slot abstraction;
    #: e.g. 30 = one I frame (several times a P frame's size) every
    #: half second per user stream, staggered across users.
    gop_length: int = 0
    gop_i_to_p_ratio: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_users < 1:
            raise ConfigurationError(f"num_users must be >= 1, got {self.num_users}")
        if self.pose_upload_latency_slots < 0:
            raise ConfigurationError(
                "pose_upload_latency_slots must be >= 0, got "
                f"{self.pose_upload_latency_slots}"
            )
        if self.num_routers < 1:
            raise ConfigurationError(
                f"num_routers must be >= 1, got {self.num_routers}"
            )
        if self.duration_slots < 3:
            raise ConfigurationError(
                "the t/t+1/t+2 pipeline needs at least 3 slots, got "
                f"{self.duration_slots}"
            )
        if not self.throttle_guidelines:
            raise ConfigurationError("need at least one throttle guideline")


def setup1_config(duration_slots: int = 1800, seed: int = 0) -> ExperimentConfig:
    """Section VI setup 1: 8 users, one 802.11ac router, 400 Mbps."""
    return ExperimentConfig(
        num_users=8,
        num_routers=1,
        router_capacity_mbps=400.0,
        server_budget_mbps=SETUP1_SERVER_MBPS,
        interference_onset=0.001,
        link_fading_sigma=0.06,
        router_fading_sigma=0.03,
        duration_slots=duration_slots,
        seed=seed,
    )


def setup2_config(duration_slots: int = 1800, seed: int = 0) -> ExperimentConfig:
    """Section VI setup 2: 15 users, two bridged routers, 800 Mbps.

    The two routers share one interference field with a much higher
    onset rate — "the variance of the bandwidth capacity is even
    larger with two routers working together due to the possible
    wireless interference".
    """
    return ExperimentConfig(
        num_users=15,
        num_routers=2,
        router_capacity_mbps=400.0,
        server_budget_mbps=SETUP2_SERVER_MBPS,
        interference_onset=0.012,
        interference_severity=(0.15, 0.45),
        link_fading_sigma=0.15,
        router_fading_sigma=0.08,
        duration_slots=duration_slots,
        seed=seed,
    )


class SystemExperiment:
    """Runs one configuration for any allocator, several repeats."""

    def __init__(self, config: ExperimentConfig = ExperimentConfig()) -> None:
        self.config = config
        self.world = GridWorld(
            0.0, config.world_size_m, 0.0, config.world_size_m, cell_size=0.05
        )
        self.grid = TileGrid()
        self.rate_model = RateModel(
            level_ratio=config.level_ratio, seed=config.seed
        )
        self.database = TileDatabase(self.world, self.grid, self.rate_model)
        self.coverage = CoverageEvaluator(
            self.world,
            self.grid,
            FieldOfView(),
            margin_deg=config.margin_deg,
            cell_tolerance=config.cell_tolerance,
        )
        self.motion = MotionTraceGenerator(self.world, MotionConfig(), config.slot_s)

    def _router_of(self, user: int) -> int:
        """Round-robin assignment of users to routers."""
        return user % self.config.num_routers

    def run_repeat(
        self,
        allocator: QualityAllocator,
        repeat: int = 0,
        telemetry: Optional["Telemetry"] = None,
        obs: Optional[Obs] = None,
        faults: Optional[FaultSchedule] = None,
    ) -> EpisodeResult:
        """One full run (one of the paper's five repetitions).

        Pass a :class:`~repro.system.telemetry.Telemetry` collector to
        capture the per-slot planner view and outcomes, and/or an
        :class:`~repro.obs.config.Obs` bundle to mirror progress into
        its registry and stream per-slot spans (on the run's *virtual*
        slot clock) through its tracer and flight recorder.  Both are
        pure observers: seeded results are bit-identical with or
        without them.

        ``faults`` maps the serving layer's fault schedule onto the
        emulated testbed: connection-level kinds (disconnect, stalls,
        truncation, client crash) starve the user's downlink for the
        slot (achieved rate 0) and lose its uplink (no acks, no pose);
        ``corrupt_report`` loses the uplink only; ``delay_report``
        defers just the pose upload.  ``None`` (the default) leaves
        the run bit-identical to a build without the fault layer.
        """
        cfg = self.config
        # Pre-index the schedule by slot so the hot loop pays one dict
        # lookup per slot, not a scan of the event list.
        outage_seats: Dict[int, frozenset] = {}
        uplink_drop_seats: Dict[int, frozenset] = {}
        pose_drop_seats: Dict[int, frozenset] = {}
        if faults is not None:
            o_raw: Dict[int, set] = {}
            u_raw: Dict[int, set] = {}
            p_raw: Dict[int, set] = {}
            for event in faults.events:
                if event.kind == FAULT_CORRUPT_REPORT:
                    u_raw.setdefault(event.slot, set()).add(event.seat)
                elif event.kind == FAULT_DELAY_REPORT:
                    p_raw.setdefault(event.slot, set()).add(event.seat)
                else:
                    o_raw.setdefault(event.slot, set()).add(event.seat)
            outage_seats = {t: frozenset(s) for t, s in o_raw.items()}
            uplink_drop_seats = {t: frozenset(s) for t, s in u_raw.items()}
            pose_drop_seats = {t: frozenset(s) for t, s in p_raw.items()}
        _EMPTY: frozenset = frozenset()
        rng = np.random.default_rng((cfg.seed, repeat, 11))
        net_rng = np.random.default_rng((cfg.seed, repeat, 13))
        slots_counter = (
            obs.registry.counter(
                "repro_experiment_slots_total",
                "Transmission slots emulated by SystemExperiment",
            )
            if obs is not None
            else None
        )
        if obs is not None:
            obs.registry.counter(
                "repro_experiment_repeats_total",
                "Experiment repeats started",
            ).inc()

        # World state: traces, throttles, routers, channels.
        poses = [
            self.motion.generate(
                cfg.duration_slots, np.random.default_rng((cfg.seed, repeat, u, 17))
            )
            for u in range(cfg.num_users)
        ]
        guidelines = [
            float(rng.choice(list(cfg.throttle_guidelines)))
            for _ in range(cfg.num_users)
        ]
        links = [
            ThrottledLink(g, FadingProcess(sigma=cfg.link_fading_sigma))
            for g in guidelines
        ]
        interference = InterferenceField(
            onset_probability=cfg.interference_onset,
            severity_range=tuple(cfg.interference_severity),
        )
        routers = [
            Router(
                cfg.router_capacity_mbps,
                interference=interference,
                fading=FadingProcess(sigma=cfg.router_fading_sigma),
                contention_loss_per_flow=cfg.contention_loss_per_flow,
            )
            for _ in range(cfg.num_routers)
        ]
        rtp = RtpChannel(
            base_loss=cfg.rtp_base_loss, congestion_loss=cfg.rtp_congestion_loss
        )
        decoder_pool = DecoderPool(cfg.num_decoders, cfg.decode_rate_mbps)
        clients = [
            Client(u, cfg.client_cache_tiles, decoder_pool, cfg.slot_s)
            for u in range(cfg.num_users)
        ]

        allocator.reset()
        router_of = None
        router_budgets = None
        if cfg.router_aware:
            router_of = [self._router_of(u) for u in range(cfg.num_users)]
            router_budgets = [
                cfg.router_capacity_mbps * cfg.router_planning_efficiency
            ] * cfg.num_routers
        server = EdgeServer(
            cfg.num_users,
            allocator,
            cfg.weights,
            self.database,
            self.coverage,
            cfg.server_budget_mbps,
            initial_cap_mbps=cfg.initial_cap_mbps,
            content_refresh_slots=cfg.content_refresh_slots,
            safety_factor=cfg.safety_factor,
            router_of=router_of,
            router_budgets_mbps=router_budgets,
            gop=GopModel(cfg.gop_length, cfg.gop_i_to_p_ratio),
            slot_s=cfg.slot_s,
        )
        if obs is not None:
            server.scheduler.attach_registry(obs.registry)

        # Connection setup: each client uploads its initial pose.
        for u in range(cfg.num_users):
            server.observe_pose(u, poses[u][0])

        engine = EventScheduler()
        # Transmission slots t = 0..T-2; the frame sent in slot t is
        # displayed against the true pose of slot t+1.
        num_tx_slots = cfg.duration_slots - 1

        def run_slot(t: int) -> None:
            for router in routers:
                router.step(net_rng)
            for link in links:
                link.step(net_rng)

            plan = server.plan_slot()
            demands = plan.demands_mbps
            caps = [link.effective_mbps for link in links]

            # A flow transmits at its full bottleneck rate (TC throttle
            # or fair share of the router), not paced to its payload:
            # the demand only sets how many bits must cross this slot.
            achieved = [0.0] * cfg.num_users
            for r, router in enumerate(routers):
                members = [u for u in range(cfg.num_users) if self._router_of(u) == r]
                wants = [caps[u] if demands[u] > 1e-9 else 0.0 for u in members]
                rates = router.transmit(wants, [caps[u] for u in members])
                for u, rate in zip(members, rates):
                    achieved[u] = rate

            # Injected outages starve the downlink AFTER the router
            # draws (so the network RNG stream keeps its shape) and
            # BEFORE the RTP step (whose starved path draws nothing).
            down = outage_seats.get(t, _EMPTY)
            for u in down:
                if u < cfg.num_users:
                    achieved[u] = 0.0
            uplink_lost = uplink_drop_seats.get(t, _EMPTY) | down
            pose_lost = pose_drop_seats.get(t, _EMPTY) | uplink_lost

            indicators: List[int] = []
            delays: List[float] = []
            delivered_ids: List[List[int]] = []
            released_ids: List[List[int]] = []
            uplink: List[protocol.Message] = []
            for u in range(cfg.num_users):
                user_plan = plan.users[u]
                result = rtp.transmit(
                    user_plan.missing_bits, demands[u], achieved[u], net_rng
                )
                covered = False
                if user_plan.level > 0 and user_plan.predicted_pose is not None:
                    covered = bool(
                        self.coverage.evaluate(
                            user_plan.predicted_pose, poses[u][t + 1]
                        ).covered
                    )
                outcome = clients[u].receive_frame(
                    [VideoId.encode(k) for k in user_plan.missing_keys],
                    user_plan.missing_bits,
                    result.lost_tile_indices,
                    (
                        result.duration_s + user_plan.startup_delay_s
                        if user_plan.missing_bits
                        else result.duration_s
                    ),
                    covered,
                    user_plan.level,
                )
                indicators.append(outcome.indicator)
                # A starved slot (zero achieved rate) has no finite
                # delivery time; charge one second's worth of slots —
                # harsh, but bounded, so a single outlier cannot smash
                # the polynomial delay fit or the QoE ledger.
                delays.append(
                    min(outcome.delay_slots, 60.0)
                    if np.isfinite(outcome.delay_slots)
                    else 60.0
                )
                lost = set(result.lost_tile_indices)
                arrived = [
                    VideoId.encode(k)
                    for i, k in enumerate(user_plan.missing_keys)
                    if i not in lost
                ]
                if u not in uplink_lost:
                    uplink.append(protocol.DeliveryAck(u, t, tuple(arrived)))
                delivered_ids.append([])  # filled from the decoded acks
                if telemetry is not None:
                    telemetry.add(
                        SlotUserRecord(
                            slot=t,
                            user=u,
                            level=user_plan.level,
                            demand_mbps=demands[u],
                            achieved_mbps=achieved[u],
                            believed_cap_mbps=server.estimated_cap(u),
                            displayed=outcome.displayed,
                            covered=outcome.covered,
                            delay_slots=delays[-1],
                        )
                    )
                if clients[u].last_released and u not in uplink_lost:
                    uplink.append(
                        protocol.ReleaseAck(u, tuple(clients[u].last_released))
                    )
                released_ids.append([])  # filled from the decoded acks
                # Pose upload at the end of the slot (TCP); extra
                # staleness defers which pose the server learns.
                stale_t = t - cfg.pose_upload_latency_slots
                if stale_t >= 0 and u not in pose_lost:
                    uplink.append(
                        protocol.PoseUpdate(u, stale_t, poses[u][stale_t])
                    )

            # The control plane crosses the network as real bytes: the
            # clients' acks and poses are framed, concatenated onto the
            # TCP uplink, and parsed back on the server side.
            for message in protocol.decode_stream(protocol.encode_stream(uplink)):
                if isinstance(message, protocol.PoseUpdate):
                    server.observe_pose(message.user, message.pose)
                elif isinstance(message, protocol.DeliveryAck):
                    delivered_ids[message.user] = list(message.video_ids)
                elif isinstance(message, protocol.ReleaseAck):
                    released_ids[message.user] = list(message.video_ids)

            server.complete_slot(
                plan, indicators, delays, achieved, delivered_ids, released_ids
            )
            if slots_counter is not None:
                slots_counter.inc()
            if obs is not None and obs.active:
                # The experiment has no wall clock: spans carry the
                # run's virtual slot boundaries instead.
                builder = obs.tracer.slot(t, t * cfg.slot_s)
                builder.stage("allocate", t * cfg.slot_s, t * cfg.slot_s)
                for u in range(cfg.num_users):
                    if plan.users[u].level > 0:
                        builder.user(
                            u,
                            level=plan.users[u].level,
                            demand_mbps=demands[u],
                            displayed=bool(indicators[u]),
                        )
                span = builder.finish(
                    (t + 1) * cfg.slot_s, deadline_hit=True
                )
                obs.flight.record(span)
                obs.tracer.emit(span)
            if t + 1 < num_tx_slots:
                engine.schedule_in(cfg.slot_s, lambda: run_slot(t + 1))

        engine.schedule_at(0.0, lambda: run_slot(0))
        engine.run_all(max_events=num_tx_slots + 10)

        return EpisodeResult(
            users=[
                summarize_ledger(
                    server.scheduler.ledgers[u],
                    cfg.weights,
                    fps=clients[u].fps(TARGET_FPS),
                )
                for u in range(cfg.num_users)
            ],
            episode=repeat,
        )

    def run(
        self, allocator: QualityAllocator, repeats: int = 5
    ) -> MultiEpisodeResults:
        """Average over repeats, as the paper does (five repetitions)."""
        if repeats < 1:
            raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
        results = MultiEpisodeResults(algorithm=allocator.name)
        for repeat in range(repeats):
            results.add(self.run_repeat(allocator, repeat))
        return results

    def compare(
        self, allocators: Mapping[str, QualityAllocator], repeats: int = 5
    ) -> Dict[str, MultiEpisodeResults]:
        """Run every allocator over the same repeats."""
        if not allocators:
            raise ConfigurationError("compare needs at least one allocator")
        return {
            name: self.run(allocator, repeats)
            for name, allocator in allocators.items()
        }


def scaled_config(config: ExperimentConfig, duration_slots: int) -> ExperimentConfig:
    """Copy a config with a different run length (for quick benches)."""
    return replace(config, duration_slots=duration_slots)
