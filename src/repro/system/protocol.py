"""The control-plane wire protocol.

Section V of the paper: poses travel client→server over TCP; the
server answers with RTP tile data identified by compact video ids;
delivery ACKs and cache-release ACKs travel back over TCP so the
server can dedup repetitive tiles.  This module defines those
messages and a compact binary codec (network byte order, fixed
headers), so the emulation's control plane is carried by real bytes
and the formats are testable artifacts.

Frame layout::

    0       1        3            ...
    ┌───────┬────────┬────────────┐
    │ type  │ length │  payload   │
    │ u8    │ u16    │  (length)  │
    └───────┴────────┴────────────┘

Payloads:

* ``PoseUpdate`` — u16 user, u32 slot, 6 x f32 (x y z yaw pitch roll);
* ``TileBundleHeader`` — u16 user, u32 slot, u8 level, u16 count,
  count x u32 video ids (sent ahead of the RTP data);
* ``DeliveryAck`` — u16 user, u32 slot, u16 count, count x u32 ids;
* ``ReleaseAck`` — u16 user, u16 count, count x u32 ids.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

from repro.errors import TransportError
from repro.prediction.pose import Pose

_HEADER = struct.Struct("!BH")

#: Message type tags.
TYPE_POSE = 1
TYPE_TILE_BUNDLE = 2
TYPE_DELIVERY_ACK = 3
TYPE_RELEASE_ACK = 4

_POSE_BODY = struct.Struct("!HI6f")
_BUNDLE_HEAD = struct.Struct("!HIBH")
_DELIVERY_HEAD = struct.Struct("!HIH")
_RELEASE_HEAD = struct.Struct("!HH")

_MAX_IDS = 0xFFFF


@dataclass(frozen=True)
class PoseUpdate:
    """Client -> server: the pose measured in a slot."""

    user: int
    slot: int
    pose: Pose

    def encode(self) -> bytes:
        body = _POSE_BODY.pack(self.user, self.slot, *self.pose.as_vector())
        return _HEADER.pack(TYPE_POSE, len(body)) + body


@dataclass(frozen=True)
class TileBundleHeader:
    """Server -> client: what the RTP stream is about to carry."""

    user: int
    slot: int
    level: int
    video_ids: Tuple[int, ...]

    def encode(self) -> bytes:
        if len(self.video_ids) > _MAX_IDS:
            raise TransportError(f"too many tiles in one bundle: {len(self.video_ids)}")
        body = _BUNDLE_HEAD.pack(self.user, self.slot, self.level, len(self.video_ids))
        body += struct.pack(f"!{len(self.video_ids)}I", *self.video_ids)
        return _HEADER.pack(TYPE_TILE_BUNDLE, len(body)) + body


@dataclass(frozen=True)
class DeliveryAck:
    """Client -> server: tiles that arrived intact this slot."""

    user: int
    slot: int
    video_ids: Tuple[int, ...]

    def encode(self) -> bytes:
        if len(self.video_ids) > _MAX_IDS:
            raise TransportError(f"too many ids in one ack: {len(self.video_ids)}")
        body = _DELIVERY_HEAD.pack(self.user, self.slot, len(self.video_ids))
        body += struct.pack(f"!{len(self.video_ids)}I", *self.video_ids)
        return _HEADER.pack(TYPE_DELIVERY_ACK, len(body)) + body


@dataclass(frozen=True)
class ReleaseAck:
    """Client -> server: tiles evicted from the client cache."""

    user: int
    video_ids: Tuple[int, ...]

    def encode(self) -> bytes:
        if len(self.video_ids) > _MAX_IDS:
            raise TransportError(f"too many ids in one ack: {len(self.video_ids)}")
        body = _RELEASE_HEAD.pack(self.user, len(self.video_ids))
        body += struct.pack(f"!{len(self.video_ids)}I", *self.video_ids)
        return _HEADER.pack(TYPE_RELEASE_ACK, len(body)) + body


Message = Union[PoseUpdate, TileBundleHeader, DeliveryAck, ReleaseAck]


def decode(frame: bytes) -> Tuple[Message, bytes]:
    """Decode one frame; returns ``(message, remaining_bytes)``."""
    if len(frame) < _HEADER.size:
        raise TransportError("frame shorter than header")
    msg_type, length = _HEADER.unpack_from(frame)
    body = frame[_HEADER.size:_HEADER.size + length]
    if len(body) < length:
        raise TransportError(
            f"truncated frame: expected {length} payload bytes, got {len(body)}"
        )
    rest = frame[_HEADER.size + length:]

    if msg_type == TYPE_POSE:
        if length != _POSE_BODY.size:
            raise TransportError(f"bad pose payload length {length}")
        user, slot, x, y, z, yaw, pitch, roll = _POSE_BODY.unpack(body)
        return PoseUpdate(user, slot, Pose.from_vector((x, y, z, yaw, pitch, roll))), rest

    if msg_type == TYPE_TILE_BUNDLE:
        if length < _BUNDLE_HEAD.size:
            raise TransportError(f"bad bundle payload length {length}")
        user, slot, level, count = _BUNDLE_HEAD.unpack_from(body)
        ids = _unpack_ids(body, _BUNDLE_HEAD.size, count, length)
        return TileBundleHeader(user, slot, level, ids), rest

    if msg_type == TYPE_DELIVERY_ACK:
        if length < _DELIVERY_HEAD.size:
            raise TransportError(f"bad ack payload length {length}")
        user, slot, count = _DELIVERY_HEAD.unpack_from(body)
        ids = _unpack_ids(body, _DELIVERY_HEAD.size, count, length)
        return DeliveryAck(user, slot, ids), rest

    if msg_type == TYPE_RELEASE_ACK:
        if length < _RELEASE_HEAD.size:
            raise TransportError(f"bad release payload length {length}")
        user, count = _RELEASE_HEAD.unpack_from(body)
        ids = _unpack_ids(body, _RELEASE_HEAD.size, count, length)
        return ReleaseAck(user, ids), rest

    raise TransportError(f"unknown message type {msg_type}")


def _unpack_ids(body: bytes, offset: int, count: int, length: int) -> Tuple[int, ...]:
    expected = offset + 4 * count
    if length != expected:
        raise TransportError(
            f"id list length mismatch: payload {length}, expected {expected}"
        )
    if count == 0:
        return tuple()
    return struct.unpack_from(f"!{count}I", body, offset)


def decode_stream(data: bytes) -> List[Message]:
    """Decode a concatenation of frames (a drained TCP buffer)."""
    messages: List[Message] = []
    while data:
        message, data = decode(data)
        messages.append(message)
    return messages


def encode_stream(messages: Sequence[Message]) -> bytes:
    """Concatenate frames for a single TCP write."""
    return b"".join(message.encode() for message in messages)
