"""The edge server: estimation, tile selection, dedup, allocation.

The server side of Fig. 4: it receives poses over TCP, predicts each
user's display-time pose, selects the tiles covering the predicted
FoV plus margin, runs the pluggable quality allocator against
*estimated* constraints (EMA throughput, polynomial-regression
delay), and transmits only the tiles the user does not already hold
(the repetitive-tile dedup of Section V, mirrored from client ACKs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.content.database import ServerTileCache, TileDatabase
from repro.content.gop import GopModel
from repro.content.tiles import TileKey, VideoId
from repro.core.allocation import QualityAllocator
from repro.core.qoe import QoEWeights
from repro.core.scheduler import CollaborativeVrScheduler
from repro.errors import ConfigurationError
from repro.prediction.delay import PolynomialDelayPredictor
from repro.prediction.fov import CoverageEvaluator
from repro.prediction.motion import LinearMotionPredictor
from repro.prediction.pose import Pose
from repro.units import SLOT_DURATION_S

_EPS = 1e-9


def _seat_int(state: Mapping[str, object], key: str) -> int:
    value = state.get(key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            f"seat state {key!r} must be an int, got {value!r}"
        )
    return value


@dataclass
class UserPlan:
    """One user's share of a slot plan."""

    level: int
    predicted_pose: Optional[Pose]
    cell_id: int
    tile_indices: Tuple[int, ...]
    missing_keys: List[TileKey]
    missing_bits: List[float]
    demand_mbps: float
    nominal_rate_mbps: float
    #: Extra transmission start latency this slot (server tile-cache
    #: miss: the panorama had to be fetched from disk first).
    startup_delay_s: float = 0.0


@dataclass
class SlotPlan:
    """The server's decisions for one transmission slot."""

    slot: int
    users: List[UserPlan]

    @property
    def levels(self) -> List[int]:
        return [u.level for u in self.users]

    @property
    def demands_mbps(self) -> List[float]:
        return [u.demand_mbps for u in self.users]


class EdgeServer:
    """Slot-by-slot planner mirroring the paper's server application.

    Parameters
    ----------
    num_users:
        Number of connected phones.
    allocator:
        Quality allocator plug-in (Algorithm 1 or a baseline).
    weights:
        QoE weights (Section VI uses alpha=0.1, beta=0.5).
    database:
        Offline tile database (sizes, video ids).
    coverage:
        Tile selection / coverage geometry.
    server_budget_mbps:
        The wired-side budget ``B`` (400 or 800 Mbps in the paper).
    initial_cap_mbps:
        Optimistic initial per-user capacity estimate (the server
        does not know the TC guidelines).
    prediction_horizon:
        Slots between the last received pose and display time; the
        t/t+1/t+2 pipeline of Section V implies 2.
    cap_probe_gain:
        Multiplicative upward drift applied to a user's capacity
        estimate in unsaturated slots — without it an EMA of achieved
        goodput can never discover that a link got better.
    content_refresh_slots:
        How many slots a delivered tile stays valid.  ``1`` models a
        live scene (the VR classroom with an active teacher) where
        every slot needs fresh content at rate ``f^R(q)`` — exactly
        the per-slot rate model of Section II.  Larger values model
        partially static content; ``0`` means a fully static scene,
        where the repetitive-tile dedup of Section V saves almost all
        bandwidth in steady state.
    """

    def __init__(
        self,
        num_users: int,
        allocator: QualityAllocator,
        weights: QoEWeights,
        database: TileDatabase,
        coverage: CoverageEvaluator,
        server_budget_mbps: float,
        initial_cap_mbps: float = 60.0,
        prediction_horizon: int = 2,
        predictor_window: int = 10,
        ema_alpha: float = 0.25,
        safety_factor: float = 0.85,
        cap_probe_gain: float = 1.01,
        max_cap_mbps: float = 150.0,
        content_refresh_slots: int = 1,
        router_of: Optional[Sequence[int]] = None,
        router_budgets_mbps: Optional[Sequence[float]] = None,
        gop: Optional[GopModel] = None,
        cache_radius_cells: int = 10,
        cache_miss_penalty_s: float = 0.004,
        slot_s: float = SLOT_DURATION_S,
    ) -> None:
        if num_users < 1:
            raise ConfigurationError(f"num_users must be >= 1, got {num_users}")
        if server_budget_mbps <= 0:
            raise ConfigurationError(
                f"server budget must be positive, got {server_budget_mbps}"
            )
        if cap_probe_gain < 1.0:
            raise ConfigurationError(
                f"cap_probe_gain must be >= 1, got {cap_probe_gain}"
            )
        if content_refresh_slots < 0:
            raise ConfigurationError(
                f"content_refresh_slots must be >= 0, got {content_refresh_slots}"
            )
        self.num_users = num_users
        self.database = database
        self.coverage = coverage
        self.server_budget_mbps = server_budget_mbps
        self.slot_s = slot_s
        self.cap_probe_gain = cap_probe_gain
        self.max_cap_mbps = max_cap_mbps
        self.scheduler = CollaborativeVrScheduler(
            num_users, allocator, weights, allow_skip=True
        )
        self._predictor_window = predictor_window
        self._prediction_horizon = prediction_horizon
        self._initial_cap_mbps = float(initial_cap_mbps)
        self._predictors = [
            LinearMotionPredictor(window=predictor_window, horizon=prediction_horizon)
            for _ in range(num_users)
        ]
        # Plain float estimates with EMA updates on saturated samples;
        # see observe-throughput logic in complete_slot.
        self._cap_estimates = [float(initial_cap_mbps)] * num_users
        self._ema_alpha = ema_alpha
        self._safety = safety_factor
        self._delay_predictors = [PolynomialDelayPredictor() for _ in range(num_users)]
        self._delivered: List[Set[int]] = [set() for _ in range(num_users)]
        self.content_refresh_slots = content_refresh_slots
        if (router_of is None) != (router_budgets_mbps is None):
            raise ConfigurationError(
                "router_of and router_budgets_mbps must be provided together"
            )
        self.router_of = list(router_of) if router_of is not None else None
        self.router_budgets_mbps = (
            list(router_budgets_mbps) if router_budgets_mbps is not None else None
        )
        self.gop = gop if gop is not None else GopModel()
        if cache_miss_penalty_s < 0:
            raise ConfigurationError(
                f"cache miss penalty must be >= 0, got {cache_miss_penalty_s}"
            )
        # Section V: the server holds an in-memory window of tiles
        # around each user's position; a miss means fetching from the
        # (171 GB) on-disk database before transmission can start.
        self._cache_radius_cells = cache_radius_cells
        self._tile_caches = [
            ServerTileCache(database, radius_cells=cache_radius_cells)
            for _ in range(num_users)
        ]
        self.cache_miss_penalty_s = cache_miss_penalty_s
        self._epoch = 0
        self._slot = 0

    # ------------------------------------------------------------------
    # Uplink: poses and ACKs
    # ------------------------------------------------------------------
    def observe_pose(self, user: int, pose: Pose) -> None:
        """Fold a pose upload (TCP) into the user's motion history."""
        self._predictors[user].observe(pose)

    def acknowledge_release(self, user: int, video_ids: Sequence[int]) -> None:
        """Client evicted tiles: forget them so they can be resent."""
        self._delivered[user].difference_update(video_ids)

    def delivered_count(self, user: int) -> int:
        """Number of tiles the server believes the user holds."""
        return len(self._delivered[user])

    def cache_hit_ratio(self, user: int) -> float:
        """Fraction of this user's slots served from the memory window."""
        return self._tile_caches[user].hit_ratio()

    def reset_user(self, user: int) -> None:
        """Clear one seat's per-session state (serving-layer churn).

        The serving layer maps live connections onto fixed scheduler
        seats; when a session leaves and its seat is reassigned, the
        new occupant must start from a clean motion history, delay
        model, capacity estimate, dedup ledger, and tile window.
        """
        if not 0 <= user < self.num_users:
            raise ConfigurationError(
                f"user index must be in [0, {self.num_users}), got {user}"
            )
        self._predictors[user].reset()
        self._delay_predictors[user].reset()
        self._delivered[user].clear()
        self._cap_estimates[user] = self._initial_cap_mbps
        self._tile_caches[user] = ServerTileCache(
            self.database, radius_cells=self._cache_radius_cells
        )
        self.scheduler.reset_user(user)

    # ------------------------------------------------------------------
    # Seat snapshot / restore (session migration)
    # ------------------------------------------------------------------
    def export_seat(self, user: int) -> Dict[str, object]:
        """One seat's cross-slot state as a JSON-friendly dict.

        Everything a migrating session must carry to a new shard so
        planning continues exactly where it left off: the motion
        predictor's pose window, the delay model's sample window, the
        EMA capacity estimate, the dedup ledger, the tile-cache centre
        and hit counters, and the scheduler's running statistics.
        The shard-global slot/epoch counters are deliberately *not*
        included — they belong to the target shard's own timeline.
        """
        if not 0 <= user < self.num_users:
            raise ConfigurationError(
                f"user index must be in [0, {self.num_users}), got {user}"
            )
        cache = self._tile_caches[user]
        return {
            "pose_window": [
                list(v) for v in self._predictors[user].export_state()
            ],
            "delay_samples": [
                list(s) for s in self._delay_predictors[user].export_state()
            ],
            "cap_estimate_mbps": float(self._cap_estimates[user]),
            "delivered_ids": sorted(self._delivered[user]),
            "cache_center_cell": cache.center_cell,
            "cache_hits": cache.hits,
            "cache_misses": cache.misses,
            "scheduler": self.scheduler.export_user(user),
        }

    def import_seat(self, user: int, state: Mapping[str, object]) -> None:
        """Reinstate a seat from :meth:`export_seat` output.

        The seat is reset first, so a failed validation cannot leave
        it half-restored with another session's leftovers.
        """
        if not 0 <= user < self.num_users:
            raise ConfigurationError(
                f"user index must be in [0, {self.num_users}), got {user}"
            )
        pose_window = state.get("pose_window")
        delay_samples = state.get("delay_samples")
        delivered_ids = state.get("delivered_ids")
        sched_state = state.get("scheduler")
        if not isinstance(pose_window, (list, tuple)):
            raise ConfigurationError("seat state 'pose_window' must be a list")
        if not isinstance(delay_samples, (list, tuple)):
            raise ConfigurationError("seat state 'delay_samples' must be a list")
        if not isinstance(delivered_ids, (list, tuple)):
            raise ConfigurationError("seat state 'delivered_ids' must be a list")
        if not isinstance(sched_state, Mapping):
            raise ConfigurationError("seat state 'scheduler' must be an object")
        cap = state.get("cap_estimate_mbps")
        if isinstance(cap, bool) or not isinstance(cap, (int, float)):
            raise ConfigurationError(
                f"seat state 'cap_estimate_mbps' must be a number, got {cap!r}"
            )
        center = _seat_int(state, "cache_center_cell")
        hits = _seat_int(state, "cache_hits")
        misses = _seat_int(state, "cache_misses")

        self.reset_user(user)
        self._predictors[user].restore_state(
            [[float(x) for x in vector] for vector in pose_window]
        )
        self._delay_predictors[user].restore_state(
            [(float(s[0]), float(s[1])) for s in delay_samples]
        )
        self._cap_estimates[user] = float(cap)
        self._delivered[user] = {int(i) for i in delivered_ids}
        if center >= 0:
            # move_to re-derives the resident window from the centre;
            # the hit counters are restored separately because move_to
            # deliberately counts nothing.
            self._tile_caches[user].move_to(center)
        self._tile_caches[user].hits = hits
        self._tile_caches[user].misses = misses
        self.scheduler.import_user(user, sched_state)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def estimated_cap(self, user: int) -> float:
        """Safety-discounted capacity estimate used as ``B_n(t)``."""
        return self._cap_estimates[user] * self._safety

    def plan_slot(self, max_levels: Optional[Sequence[int]] = None) -> SlotPlan:
        """Allocate quality and select missing tiles for every user.

        ``max_levels`` optionally clamps each user's allocated level
        from above *after* allocation (a negative entry means no
        clamp).  The serving layer uses it for graceful degradation:
        a lagging or backpressured connection is forced down to the
        minimum level (the paper's constraint (7) floor) instead of
        being allowed to blow the slot deadline for everyone.
        """
        if self.content_refresh_slots > 0:
            epoch = self._slot // self.content_refresh_slots
            if epoch != self._epoch:
                # The scene's content advanced: previously delivered
                # tiles are stale and must be re-sent if requested.
                self._epoch = epoch
                for delivered in self._delivered:
                    delivered.clear()
        sizes: List[Sequence[float]] = []
        delay_fns = []
        caps = []
        raw_caps = []
        predicted: List[Optional[Pose]] = []
        cells: List[int] = []
        tile_sets: List[Tuple[int, ...]] = []

        for n in range(self.num_users):
            pose = self._predictors[n].predict()
            predicted.append(pose)
            if pose is None:
                # No pose yet: plan a placeholder the allocator can
                # skip; cell 0 keeps the rate curve well defined.
                cells.append(0)
                tile_sets.append(tuple())
            else:
                cells.append(self.coverage.world.cell_of(pose.x, pose.y))
                tile_sets.append(tuple(sorted(self.coverage.tiles_to_deliver(pose))))
            curve = self.database.rate_model.curve(cells[n])
            sizes.append(curve.as_tuple())
            delay_fns.append(self._delay_predictors[n].predict)
            if pose is None:
                # An empty seat (no pose ever observed) must not draw
                # budget away from live users: a zero capacity makes
                # even the minimum level unaffordable, so the
                # allocator skips it (allow_skip is always on here).
                caps.append(0.0)
                raw_caps.append(0.0)
            else:
                caps.append(self.estimated_cap(n))
                raw_caps.append(self._cap_estimates[n])

        problem = self.scheduler.build_slot_problem(
            sizes,
            delay_fns,
            caps,
            self.server_budget_mbps,
            raw_caps_mbps=raw_caps,
            router_of=self.router_of,
            router_budgets_mbps=self.router_budgets_mbps,
        )
        levels = self.scheduler.allocate(problem)
        if max_levels is not None:
            if len(max_levels) != self.num_users:
                raise ConfigurationError(
                    f"max_levels must have {self.num_users} entries, "
                    f"got {len(max_levels)}"
                )
            levels = [
                min(level, int(cap)) if cap >= 0 else level
                for level, cap in zip(levels, max_levels)
            ]

        users: List[UserPlan] = []
        for n in range(self.num_users):
            level = levels[n] if predicted[n] is not None else 0
            missing_keys: List[TileKey] = []
            missing_bits: List[float] = []
            startup_delay_s = 0.0
            if level > 0:
                # In-memory tile window: a miss pays the disk fetch
                # before transmission; the window then re-centres.
                if not self._tile_caches[n].lookup(cells[n]):
                    startup_delay_s = self.cache_miss_penalty_s
                self._tile_caches[n].move_to(cells[n])
            if level > 0:
                # Per-frame burstiness: the curve is the GoP average,
                # the wire carries I/P-sized frames.
                frame_multiplier = self.gop.multiplier(self._slot, stream_id=n)
                for key in self.database.tiles_for(cells[n], tile_sets[n], level):
                    if VideoId.encode(key) not in self._delivered[n]:
                        missing_keys.append(key)
                        missing_bits.append(
                            self.database.tile_size_bits(key, self.slot_s)
                            * frame_multiplier
                        )
            demand_mbps = sum(missing_bits) / 1e6 / self.slot_s
            users.append(
                UserPlan(
                    level=level,
                    predicted_pose=predicted[n],
                    cell_id=cells[n],
                    tile_indices=tile_sets[n],
                    missing_keys=missing_keys,
                    missing_bits=missing_bits,
                    demand_mbps=demand_mbps,
                    nominal_rate_mbps=sizes[n][level - 1] if level > 0 else 0.0,
                    startup_delay_s=startup_delay_s,
                )
            )
        return SlotPlan(slot=self._slot, users=users)

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------
    def complete_slot(
        self,
        plan: SlotPlan,
        indicators: Sequence[int],
        delays_slots: Sequence[float],
        achieved_mbps: Sequence[float],
        delivered_ids: Sequence[Sequence[int]],
        released_ids: Sequence[Sequence[int]],
    ) -> None:
        """Fold one slot's realized results into the server's state.

        ``delivered_ids[n]`` are the tiles that actually reached user
        ``n`` (the ACKs); ``released_ids[n]`` the tiles its cache
        evicted; ``achieved_mbps[n]`` the rate the link actually
        sustained while the flow was transmitting.
        """
        for n, user_plan in enumerate(plan.users):
            self._delivered[n].update(delivered_ids[n])
            self._delivered[n].difference_update(released_ids[n])

            demand = user_plan.demand_mbps
            achieved = float(achieved_mbps[n])
            if demand > _EPS:
                # The flow transmitted at its bottleneck rate, so the
                # achieved rate is a direct capacity sample (the EMA
                # estimation of Section V).
                est = self._cap_estimates[n]
                self._cap_estimates[n] = est + self._ema_alpha * (achieved - est)
            else:
                # Idle slot: no sample; probe upward slowly so the
                # estimate can recover after a bad stretch.
                self._cap_estimates[n] = min(
                    self._cap_estimates[n] * self.cap_probe_gain,
                    self.max_cap_mbps,
                )
            if user_plan.level > 0 and demand > _EPS:
                self._delay_predictors[n].observe(
                    user_plan.nominal_rate_mbps, float(delays_slots[n])
                )

        self.scheduler.record_outcomes(plan.levels, indicators, delays_slots)
        self._slot += 1
