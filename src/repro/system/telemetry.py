"""Per-slot telemetry for the system emulation.

The paper's evaluation reports end-of-run averages; debugging a
scheduler needs the *time series* — which slots missed, what the
estimates believed, how demand tracked capacity.  A
:class:`Telemetry` collector can be passed to
:meth:`repro.system.experiment.SystemExperiment.run_repeat` to capture
one record per (slot, user) with the planner's view and the realized
outcome, exportable as rows or CSV.
"""

from __future__ import annotations

import csv
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Union

from repro.errors import ConfigurationError

PathLike = Union[str, pathlib.Path]

#: Column order of the exported rows.
FIELDS = (
    "slot",
    "user",
    "level",
    "demand_mbps",
    "achieved_mbps",
    "believed_cap_mbps",
    "displayed",
    "covered",
    "delay_slots",
)


@dataclass(frozen=True)
class SlotUserRecord:
    """One user's planner view and outcome in one slot."""

    slot: int
    user: int
    level: int
    demand_mbps: float
    achieved_mbps: float
    believed_cap_mbps: float
    displayed: bool
    covered: bool
    delay_slots: float

    def as_row(self) -> List[object]:
        return [getattr(self, field) for field in FIELDS]


class Telemetry:
    """Append-only per-slot record store with summary helpers."""

    def __init__(self) -> None:
        self._records: List[SlotUserRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> Sequence[SlotUserRecord]:
        return tuple(self._records)

    def add(self, record: SlotUserRecord) -> None:
        self._records.append(record)

    def for_user(self, user: int) -> List[SlotUserRecord]:
        return [r for r in self._records if r.user == user]

    def for_slot(self, slot: int) -> List[SlotUserRecord]:
        return [r for r in self._records if r.slot == slot]

    def miss_slots(self, user: int) -> List[int]:
        """Slots where the user had content allocated but no display."""
        return [
            r.slot
            for r in self._records
            if r.user == user and r.level > 0 and not r.displayed
        ]

    def level_timeline(self, user: int) -> List[int]:
        """The user's allocated level per slot, in slot order."""
        return [r.level for r in sorted(self.for_user(user), key=lambda r: r.slot)]

    def utilisation(self, user: int) -> float:
        """Mean demand / achieved over the user's transmitting slots."""
        samples = [
            r.demand_mbps / r.achieved_mbps
            for r in self.for_user(user)
            if r.demand_mbps > 0 and r.achieved_mbps > 0
        ]
        return sum(samples) / len(samples) if samples else 0.0

    def summary(self) -> Dict[str, float]:
        """Aggregate counters across all records."""
        if not self._records:
            raise ConfigurationError("no telemetry recorded yet")
        total = len(self._records)
        transmitted = [r for r in self._records if r.level > 0]
        displayed = sum(1 for r in transmitted if r.displayed)
        return {
            "records": float(total),
            "transmit_fraction": len(transmitted) / total,
            "display_fraction": (
                displayed / len(transmitted) if transmitted else 0.0
            ),
            "mean_demand_mbps": (
                sum(r.demand_mbps for r in transmitted) / len(transmitted)
                if transmitted
                else 0.0
            ),
            "mean_achieved_mbps": (
                sum(r.achieved_mbps for r in transmitted) / len(transmitted)
                if transmitted
                else 0.0
            ),
        }

    def save_csv(self, path: PathLike) -> None:
        """Write all records as CSV with a header row."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(FIELDS)
            for record in self._records:
                writer.writerow(record.as_row())

    def clear(self) -> None:
        self._records.clear()
