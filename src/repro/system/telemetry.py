"""Per-slot telemetry for the system emulation.

The paper's evaluation reports end-of-run averages; debugging a
scheduler needs the *time series* — which slots missed, what the
estimates believed, how demand tracked capacity.  A
:class:`Telemetry` collector can be passed to
:meth:`repro.system.experiment.SystemExperiment.run_repeat` to capture
one record per (slot, user) with the planner's view and the realized
outcome, exportable as CSV or as a versioned JSONL stream.

A collector can optionally be attached to a
:class:`~repro.obs.registry.MetricsRegistry`
(:meth:`Telemetry.attach_registry`), which mirrors the record count
onto the process's ``/metrics`` page without changing what is stored.
"""

from __future__ import annotations

import csv
import json
import pathlib
from dataclasses import dataclass
from typing import IO, Dict, List, Optional, Sequence, Union

from repro.errors import ConfigurationError, ObservabilityError
from repro.obs.registry import Counter, MetricsRegistry

PathLike = Union[str, pathlib.Path]

#: Version of the telemetry JSONL schema (bump on incompatible change).
TELEMETRY_SCHEMA_VERSION = 1

#: ``kind`` value of the header line of a telemetry JSONL file.
TELEMETRY_STREAM_KIND = "repro.telemetry.slot_user"

#: Column order of the exported rows.
FIELDS = (
    "slot",
    "user",
    "level",
    "demand_mbps",
    "achieved_mbps",
    "believed_cap_mbps",
    "displayed",
    "covered",
    "delay_slots",
)


@dataclass(frozen=True)
class SlotUserRecord:
    """One user's planner view and outcome in one slot."""

    slot: int
    user: int
    level: int
    demand_mbps: float
    achieved_mbps: float
    believed_cap_mbps: float
    displayed: bool
    covered: bool
    delay_slots: float

    def as_row(self) -> List[object]:
        return [getattr(self, field) for field in FIELDS]

    def as_dict(self) -> Dict[str, object]:
        return {field: getattr(self, field) for field in FIELDS}

    @classmethod
    def from_dict(cls, raw: object) -> "SlotUserRecord":
        if not isinstance(raw, dict):
            raise ObservabilityError(
                f"telemetry record must be an object, got {type(raw).__name__}"
            )
        missing = [field for field in FIELDS if field not in raw]
        if missing:
            raise ObservabilityError(
                f"telemetry record missing fields {missing}"
            )
        try:
            return cls(
                slot=int(raw["slot"]),
                user=int(raw["user"]),
                level=int(raw["level"]),
                demand_mbps=float(raw["demand_mbps"]),
                achieved_mbps=float(raw["achieved_mbps"]),
                believed_cap_mbps=float(raw["believed_cap_mbps"]),
                displayed=bool(raw["displayed"]),
                covered=bool(raw["covered"]),
                delay_slots=float(raw["delay_slots"]),
            )
        except (TypeError, ValueError) as exc:
            raise ObservabilityError(
                f"telemetry record has non-numeric fields: {exc}"
            ) from exc


class Telemetry:
    """Append-only per-slot record store with summary helpers."""

    def __init__(self) -> None:
        self._records: List[SlotUserRecord] = []
        self._counter: Optional["Counter"] = None

    def attach_registry(self, registry: "MetricsRegistry") -> None:
        """Mirror the record count onto a metrics registry.

        Registers ``repro_telemetry_records_total`` and keeps it in
        step with records already collected and every later ``add``.
        """
        self._counter = registry.counter(
            "repro_telemetry_records_total",
            "Slot-user telemetry records collected",
        )
        if self._records:
            self._counter.inc(len(self._records))

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> Sequence[SlotUserRecord]:
        return tuple(self._records)

    def add(self, record: SlotUserRecord) -> None:
        self._records.append(record)
        if self._counter is not None:
            self._counter.inc()

    def for_user(self, user: int) -> List[SlotUserRecord]:
        return [r for r in self._records if r.user == user]

    def extract_user(self, user: int) -> List[SlotUserRecord]:
        """Remove and return one user's records (slot order preserved).

        Session migration moves a seat's telemetry to another shard's
        collector; the records leave this store so the run-level merge
        does not double-count them.  The mirrored
        ``repro_telemetry_records_total`` counter is monotonic and is
        deliberately *not* decremented — it counts collections, not
        residency.
        """
        extracted = [r for r in self._records if r.user == user]
        self._records = [r for r in self._records if r.user != user]
        return extracted

    def ingest(self, records: Sequence[SlotUserRecord]) -> None:
        """Append records handed over from another collector."""
        for record in records:
            self.add(record)

    def for_slot(self, slot: int) -> List[SlotUserRecord]:
        return [r for r in self._records if r.slot == slot]

    def miss_slots(self, user: int) -> List[int]:
        """Slots where the user had content allocated but no display."""
        return [
            r.slot
            for r in self._records
            if r.user == user and r.level > 0 and not r.displayed
        ]

    def level_timeline(self, user: int) -> List[int]:
        """The user's allocated level per slot, in slot order."""
        return [r.level for r in sorted(self.for_user(user), key=lambda r: r.slot)]

    def utilisation(self, user: int) -> float:
        """Mean demand / achieved over the user's transmitting slots."""
        samples = [
            r.demand_mbps / r.achieved_mbps
            for r in self.for_user(user)
            if r.demand_mbps > 0 and r.achieved_mbps > 0
        ]
        return sum(samples) / len(samples) if samples else 0.0

    def summary(self) -> Dict[str, float]:
        """Aggregate counters across all records."""
        if not self._records:
            raise ConfigurationError("no telemetry recorded yet")
        total = len(self._records)
        transmitted = [r for r in self._records if r.level > 0]
        displayed = sum(1 for r in transmitted if r.displayed)
        return {
            "records": float(total),
            "transmit_fraction": len(transmitted) / total,
            "display_fraction": (
                displayed / len(transmitted) if transmitted else 0.0
            ),
            "mean_demand_mbps": (
                sum(r.demand_mbps for r in transmitted) / len(transmitted)
                if transmitted
                else 0.0
            ),
            "mean_achieved_mbps": (
                sum(r.achieved_mbps for r in transmitted) / len(transmitted)
                if transmitted
                else 0.0
            ),
        }

    def save_csv(self, path: PathLike) -> None:
        """Write all records as CSV with a header row."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(FIELDS)
            for record in self._records:
                writer.writerow(record.as_row())

    def to_jsonl(self, handle: IO[str]) -> None:
        """Write all records as a versioned JSONL stream.

        The first line is a header carrying ``kind``,
        ``schema_version`` and the field list; each later line is one
        record object.  :meth:`load_jsonl` round-trips the stream.
        """
        header = {
            "kind": TELEMETRY_STREAM_KIND,
            "schema_version": TELEMETRY_SCHEMA_VERSION,
            "fields": list(FIELDS),
        }
        handle.write(json.dumps(header) + "\n")
        for record in self._records:
            handle.write(json.dumps(record.as_dict()) + "\n")

    def save_jsonl(self, path: PathLike) -> None:
        """:meth:`to_jsonl` to a file path."""
        with open(path, "w", encoding="utf-8") as handle:
            self.to_jsonl(handle)

    @classmethod
    def load_jsonl(cls, path: PathLike) -> "Telemetry":
        """Read a stream written by :meth:`save_jsonl`.

        Raises :class:`~repro.errors.ObservabilityError` on a missing
        or incompatible header and on any malformed record line.
        """
        telemetry = cls()
        with open(path, "r", encoding="utf-8") as handle:
            header_line = handle.readline()
            if not header_line.strip():
                raise ObservabilityError(
                    "telemetry stream is empty (no header line)"
                )
            header = _parse_json_line(header_line, 1)
            kind = header.get("kind")
            if kind != TELEMETRY_STREAM_KIND:
                raise ObservabilityError(
                    f"not a telemetry stream (kind={kind!r})"
                )
            version = header.get("schema_version")
            if version != TELEMETRY_SCHEMA_VERSION:
                raise ObservabilityError(
                    f"unsupported telemetry schema_version {version!r} "
                    f"(expected {TELEMETRY_SCHEMA_VERSION})"
                )
            for number, line in enumerate(handle, start=2):
                if not line.strip():
                    continue
                telemetry.add(
                    SlotUserRecord.from_dict(_parse_json_line(line, number))
                )
        return telemetry

    def clear(self) -> None:
        self._records.clear()


def _parse_json_line(line: str, number: int) -> Dict[str, object]:
    try:
        raw = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ObservabilityError(
            f"line {number}: invalid JSON: {exc}"
        ) from exc
    if not isinstance(raw, dict):
        raise ObservabilityError(f"line {number}: expected an object")
    return raw
