"""Network emulation: throttles, routers, fading, interference.

Section VI of the paper: every phone is throttled by Linux TC to one
of five guidelines (40-60 Mbps), all phones share one 802.11ac router
(setup 1) or two bridged routers (setup 2), and "the actual throughput
varies with time under the wireless network"; with two routers "the
variance of the bandwidth capacity is even larger ... due to the
possible wireless interference".

The emulation reproduces those effects per slot:

* :class:`ThrottledLink` — a TC guideline modulated by an
  Ornstein-Uhlenbeck fading factor (Wi-Fi rate adaptation);
* :class:`Router` — a shared medium with max-min fair sharing among
  the flows transmitting in a slot, plus a contention efficiency loss
  that grows with the number of active flows;
* :class:`InterferenceField` — correlated capacity collapses that
  strike *both* routers when two share the spectrum (the setup-2
  variance amplifier).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError

_EPS = 1e-9


def max_min_fair_share(
    demands: Sequence[float],
    caps: Sequence[float],
    capacity: float,
) -> List[float]:
    """Max-min fair rate allocation on a shared link.

    Each flow ``i`` receives at most ``min(demands[i], caps[i])``; the
    total never exceeds ``capacity``.  Water-filling: repeatedly give
    every unfrozen flow an equal share, freeze flows that need less
    than the share, and redistribute the slack.
    """
    if len(demands) != len(caps):
        raise ConfigurationError("demands and caps must have equal length")
    if capacity < 0:
        raise ConfigurationError(f"capacity must be non-negative, got {capacity}")
    wants = [min(max(d, 0.0), max(c, 0.0)) for d, c in zip(demands, caps)]
    rates = [0.0] * len(wants)
    active = [i for i, w in enumerate(wants) if w > _EPS]
    remaining = capacity
    while active and remaining > _EPS:
        share = remaining / len(active)
        satisfied = [i for i in active if wants[i] - rates[i] <= share + _EPS]
        if satisfied:
            for i in satisfied:
                remaining -= wants[i] - rates[i]
                rates[i] = wants[i]
            active = [i for i in active if i not in set(satisfied)]
        else:
            for i in active:
                rates[i] += share
            remaining = 0.0
    return rates


class FadingProcess:
    """Mean-reverting multiplicative fading factor.

    An Ornstein-Uhlenbeck process around 1.0, clamped to
    ``[floor, ceiling]`` — the slow breathing of a Wi-Fi link's PHY
    rate as the environment changes.
    """

    def __init__(
        self,
        reversion: float = 0.05,
        sigma: float = 0.04,
        floor: float = 0.35,
        ceiling: float = 1.15,
    ) -> None:
        if not 0 < reversion <= 1:
            raise ConfigurationError(f"reversion must be in (0, 1], got {reversion}")
        if sigma < 0:
            raise ConfigurationError(f"sigma must be non-negative, got {sigma}")
        if not 0 < floor <= 1 <= ceiling:
            raise ConfigurationError(
                f"need floor <= 1 <= ceiling, got [{floor}, {ceiling}]"
            )
        self.reversion = reversion
        self.sigma = sigma
        self.floor = floor
        self.ceiling = ceiling
        self._value = 1.0

    @property
    def value(self) -> float:
        return self._value

    def step(self, rng: np.random.Generator) -> float:
        """Advance one slot and return the new factor."""
        self._value += self.reversion * (1.0 - self._value) + float(
            rng.normal(0.0, self.sigma)
        )
        self._value = min(max(self._value, self.floor), self.ceiling)
        return self._value


class ThrottledLink:
    """One user's TC throttle with time-varying effective capacity."""

    def __init__(
        self,
        guideline_mbps: float,
        fading: FadingProcess = None,
    ) -> None:
        if guideline_mbps <= 0:
            raise ConfigurationError(
                f"throttle guideline must be positive, got {guideline_mbps}"
            )
        self.guideline_mbps = guideline_mbps
        self.fading = fading if fading is not None else FadingProcess()
        self._effective = guideline_mbps

    @property
    def effective_mbps(self) -> float:
        """Capacity during the current slot."""
        return self._effective

    def step(self, rng: np.random.Generator) -> float:
        """Advance the fading process one slot."""
        self._effective = self.guideline_mbps * self.fading.step(rng)
        return self._effective


class InterferenceField:
    """Correlated capacity collapses across co-channel routers.

    With probability ``onset_probability`` per slot an interference
    burst begins; it lasts a geometric number of slots and multiplies
    every attached router's capacity by a draw from
    ``severity_range``.  A single router (setup 1) uses a field with
    ``onset_probability = 0``; two bridged routers (setup 2) share one
    active field, which is what makes their joint capacity variance
    larger, as the paper observes.
    """

    def __init__(
        self,
        onset_probability: float = 0.0,
        mean_duration_slots: float = 30.0,
        severity_range=(0.25, 0.6),
    ) -> None:
        if not 0.0 <= onset_probability <= 1.0:
            raise ConfigurationError(
                f"onset probability must be in [0, 1], got {onset_probability}"
            )
        if mean_duration_slots <= 0:
            raise ConfigurationError(
                f"mean duration must be positive, got {mean_duration_slots}"
            )
        lo, hi = severity_range
        if not 0 < lo <= hi <= 1:
            raise ConfigurationError(f"invalid severity range {severity_range}")
        self.onset_probability = onset_probability
        self.mean_duration_slots = mean_duration_slots
        self.severity_range = severity_range
        self._remaining = 0
        self._factor = 1.0

    @property
    def factor(self) -> float:
        """Current multiplicative capacity factor (1.0 = clean air)."""
        return self._factor if self._remaining > 0 else 1.0

    def step(self, rng: np.random.Generator) -> float:
        """Advance one slot and return the factor for this slot."""
        if self._remaining > 0:
            self._remaining -= 1
            if self._remaining == 0:
                self._factor = 1.0
        elif self.onset_probability > 0 and rng.uniform() < self.onset_probability:
            self._remaining = 1 + int(rng.geometric(1.0 / self.mean_duration_slots))
            self._factor = float(rng.uniform(*self.severity_range))
        return self.factor


class Router:
    """A shared wireless medium serving a set of user links.

    Per slot, the router's effective capacity is its nominal capacity
    times its fading factor, times the interference factor, times a
    contention efficiency that decays with the number of active
    flows (CSMA overhead).  Flows then split it max-min fairly,
    individually capped by their TC throttles.
    """

    def __init__(
        self,
        capacity_mbps: float,
        interference: InterferenceField = None,
        fading: FadingProcess = None,
        contention_loss_per_flow: float = 0.015,
        min_efficiency: float = 0.6,
    ) -> None:
        if capacity_mbps <= 0:
            raise ConfigurationError(
                f"router capacity must be positive, got {capacity_mbps}"
            )
        if not 0 <= contention_loss_per_flow < 1:
            raise ConfigurationError(
                f"contention loss must be in [0, 1), got {contention_loss_per_flow}"
            )
        if not 0 < min_efficiency <= 1:
            raise ConfigurationError(
                f"min efficiency must be in (0, 1], got {min_efficiency}"
            )
        self.capacity_mbps = capacity_mbps
        self.interference = interference if interference is not None else InterferenceField()
        self.fading = fading if fading is not None else FadingProcess(sigma=0.02)
        self.contention_loss_per_flow = contention_loss_per_flow
        self.min_efficiency = min_efficiency
        self._slot_capacity = capacity_mbps

    @property
    def slot_capacity_mbps(self) -> float:
        """Capacity available in the current slot (before contention)."""
        return self._slot_capacity

    def step(self, rng: np.random.Generator) -> float:
        """Advance fading and interference one slot."""
        self._slot_capacity = (
            self.capacity_mbps * self.fading.step(rng) * self.interference.step(rng)
        )
        return self._slot_capacity

    def transmit(
        self, demands_mbps: Sequence[float], caps_mbps: Sequence[float]
    ) -> List[float]:
        """Achieved rate per flow for this slot's transmissions."""
        active = sum(1 for d in demands_mbps if d > _EPS)
        efficiency = max(
            1.0 - self.contention_loss_per_flow * max(active - 1, 0),
            self.min_efficiency,
        )
        return max_min_fair_share(
            demands_mbps, caps_mbps, self._slot_capacity * efficiency
        )


class TokenBucket:
    """The token-bucket filter behind Linux TC's ``tbf`` qdisc.

    Tokens accrue at ``rate_mbps`` up to ``burst_bits``; sending
    consumes tokens, and a payload larger than the current balance
    waits for the refill.  :class:`ThrottledLink` models the throttle
    at slot granularity (rate x fading); this primitive answers the
    finer-grained question — *when* does a given payload finish under
    the shaper — for analyses that care about sub-slot pacing.
    """

    def __init__(self, rate_mbps: float, burst_bits: float) -> None:
        if rate_mbps <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate_mbps}")
        if burst_bits <= 0:
            raise ConfigurationError(f"burst must be positive, got {burst_bits}")
        self.rate_mbps = rate_mbps
        self.burst_bits = burst_bits
        self._tokens = burst_bits
        self._updated_s = 0.0

    @property
    def tokens(self) -> float:
        """Current token balance in bits (as of the last operation)."""
        return self._tokens

    def _refill(self, now_s: float) -> None:
        if now_s < self._updated_s:
            raise ConfigurationError(
                f"time went backwards: {now_s} < {self._updated_s}"
            )
        self._tokens = min(
            self.burst_bits,
            self._tokens + (now_s - self._updated_s) * self.rate_mbps * 1e6,
        )
        self._updated_s = now_s

    def send(self, bits: float, now_s: float) -> float:
        """Consume tokens for a payload; returns its completion time.

        A payload within the balance departs immediately (the burst);
        the remainder drains at the token rate.  The balance may go
        negative transiently, exactly like tbf's deficit accounting.
        """
        if bits < 0:
            raise ConfigurationError(f"payload must be non-negative, got {bits}")
        self._refill(now_s)
        if bits == 0:
            return now_s
        self._tokens -= bits
        if self._tokens >= 0:
            return now_s
        # Deficit drains at the token rate.
        delay_s = -self._tokens / (self.rate_mbps * 1e6)
        return now_s + delay_s

    def time_to_send(self, bits: float, now_s: float) -> float:
        """Completion time *without* consuming tokens (a what-if)."""
        if bits < 0:
            raise ConfigurationError(f"payload must be non-negative, got {bits}")
        balance = min(
            self.burst_bits,
            self._tokens + max(now_s - self._updated_s, 0.0) * self.rate_mbps * 1e6,
        )
        deficit = bits - balance
        if deficit <= 0:
            return now_s
        return now_s + deficit / (self.rate_mbps * 1e6)
