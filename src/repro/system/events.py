"""A minimal discrete-event engine.

Events are ``(time, sequence, callback)`` triples on a binary heap;
the sequence number breaks ties FIFO so same-time events run in
scheduling order, which keeps the slot pipeline deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError


class EventScheduler:
    """Priority-queue event loop with a monotone clock."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled, not yet executed events."""
        return len(self._queue)

    def schedule_at(self, time_s: float, callback: Callable[[], None]) -> None:
        """Schedule a callback at an absolute time (>= now)."""
        if time_s < self._now - 1e-12:
            raise ConfigurationError(
                f"cannot schedule in the past: {time_s} < now {self._now}"
            )
        heapq.heappush(self._queue, (time_s, next(self._sequence), callback))

    def schedule_in(self, delay_s: float, callback: Callable[[], None]) -> None:
        """Schedule a callback ``delay_s`` seconds from now."""
        if delay_s < 0:
            raise ConfigurationError(f"delay must be non-negative, got {delay_s}")
        self.schedule_at(self._now + delay_s, callback)

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        if not self._queue:
            return False
        time_s, _, callback = heapq.heappop(self._queue)
        if time_s < self._now - 1e-12:
            raise SimulationError("event queue produced a time in the past")
        self._now = time_s
        callback()
        return True

    def run_until(self, t_end_s: float, max_events: Optional[int] = None) -> int:
        """Run events with time <= ``t_end_s``; returns the event count.

        ``max_events`` guards against runaway self-rescheduling loops.
        """
        executed = 0
        while self._queue and self._queue[0][0] <= t_end_s + 1e-12:
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"run_until exceeded max_events={max_events}; "
                    "suspected runaway event loop"
                )
            self.step()
            executed += 1
        # Advance the clock to the horizon even if the queue went quiet.
        self._now = max(self._now, t_end_s)
        return executed

    def run_all(self, max_events: int = 1_000_000) -> int:
        """Drain the queue completely (bounded by ``max_events``)."""
        executed = 0
        while self.step():
            executed += 1
            if executed > max_events:
                raise SimulationError(
                    f"run_all exceeded max_events={max_events}; "
                    "suspected runaway event loop"
                )
        return executed
