"""The M/M/1 delivery-delay model (eq. 13 and Fig. 1b).

Section IV generates the delivery delay as::

    d_n(f) = f / (B_n(t) - f)

"This models the delay as that in M/M/1 queueing system ..., which is
usually used to model the queueing delay in wireless transmission."
The delay is dimensionless in slot units (multiply by the slot
duration for seconds) and is convex and increasing in ``f`` for
``f < B`` — the structural property Section II assumes.

:func:`sample_rtts` reproduces the Fig. 1b measurement: a capped link
carries traffic at a given sending rate while parallel pings sample
the round-trip time; the mean RTT versus sending rate is convex.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MM1DelayModel:
    """Eq. (13) with a finite saturation guard.

    Parameters
    ----------
    max_delay:
        Value returned once the sending rate reaches (or exceeds) the
        bandwidth, where the ideal formula diverges.  Keeping it
        finite lets objective curves stay well defined while making
        saturated levels catastrophically unattractive.
    """

    max_delay: float = 100.0

    def __post_init__(self) -> None:
        if self.max_delay <= 0:
            raise ConfigurationError(
                f"max_delay must be positive, got {self.max_delay}"
            )

    def delay(self, rate_mbps: float, bandwidth_mbps: float) -> float:
        """``d(f) = f / (B - f)``, clipped to ``max_delay``."""
        if rate_mbps < 0:
            raise ConfigurationError(f"rate must be non-negative, got {rate_mbps}")
        if bandwidth_mbps <= 0:
            return self.max_delay if rate_mbps > 0 else 0.0
        if rate_mbps >= bandwidth_mbps:
            return self.max_delay
        return min(rate_mbps / (bandwidth_mbps - rate_mbps), self.max_delay)

    def delay_fn(self, bandwidth_mbps: float) -> Callable[[float], float]:
        """Freeze the bandwidth: the per-user ``d_n`` of one slot."""
        return lambda rate_mbps: self.delay(rate_mbps, bandwidth_mbps)


def sample_rtts(
    sending_rate_mbps: float,
    capacity_mbps: float = 15.0,
    num_samples: int = 10_000,
    packet_bits: float = 12_000.0,
    base_rtt_ms: float = 2.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Simulate the Fig. 1b experiment: RTTs on a loaded, capped link.

    Packets arrive as a Poisson process at the sending rate and are
    served at the link capacity with exponential service times; the
    waiting time follows Lindley's recursion.  Each RTT is the base
    propagation RTT plus the queueing sojourn of a probe.

    Returns the sampled RTTs in milliseconds.
    """
    if sending_rate_mbps < 0:
        raise ConfigurationError(
            f"sending rate must be non-negative, got {sending_rate_mbps}"
        )
    if capacity_mbps <= 0:
        raise ConfigurationError(f"capacity must be positive, got {capacity_mbps}")
    if sending_rate_mbps >= capacity_mbps:
        raise ConfigurationError(
            "sending rate must stay below capacity for a stable queue; got "
            f"{sending_rate_mbps} >= {capacity_mbps}"
        )
    if num_samples < 1:
        raise ConfigurationError(f"num_samples must be >= 1, got {num_samples}")
    if rng is None:
        rng = np.random.default_rng(0)

    service_rate_pps = capacity_mbps * 1e6 / packet_bits
    arrival_rate_pps = max(sending_rate_mbps, 1e-6) * 1e6 / packet_bits

    inter_arrivals = rng.exponential(1.0 / arrival_rate_pps, size=num_samples)
    services = rng.exponential(1.0 / service_rate_pps, size=num_samples)

    # Lindley recursion: W_{k+1} = max(W_k + S_k - A_{k+1}, 0).
    waits = np.empty(num_samples)
    w = 0.0
    for k in range(num_samples):
        waits[k] = w
        w = max(w + services[k] - inter_arrivals[k], 0.0)
    sojourn_s = waits + services
    return base_rtt_ms + sojourn_s * 1e3


def mean_rtt_curve(
    rates_mbps: Sequence[float],
    capacity_mbps: float = 15.0,
    num_samples: int = 10_000,
    seed: int = 0,
) -> List[float]:
    """Mean RTT at each sending rate — the Fig. 1b curve."""
    rng = np.random.default_rng(seed)
    return [
        float(np.mean(sample_rtts(rate, capacity_mbps, num_samples, rng=rng)))
        for rate in rates_mbps
    ]
