"""The trace-driven simulator of Section IV.

Each episode replays one network trace and one motion trace per user.
Per slot the simulator:

1. predicts every user's pose with linear regression over the poses
   the server has received so far;
2. derives the content (viewpoint cell) and its rate curve
   ``f_c^R(q)``;
3. builds the per-slot problem with the *true* ``B_n(t)`` and ``B(t)``
   (the paper's simulation assumes the server knows the network
   perfectly) and asks the allocator for quality levels;
4. computes the M/M/1 delivery delay (eq. 13) of each user's chosen
   level;
5. evaluates the coverage indicator ``1_n(t)`` by comparing the
   delivered FoV-with-margin against the true pose;
6. folds everything into the per-user QoE ledgers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

from repro.content.projection import FieldOfView
from repro.content.rate import RateModel
from repro.content.tiles import GridWorld, TileGrid
from repro.core.allocation import QualityAllocator
from repro.core.qoe import QoEWeights
from repro.core.scheduler import CollaborativeVrScheduler
from repro.errors import ConfigurationError
from repro.prediction.fov import CoverageEvaluator
from repro.prediction.motion import LinearMotionPredictor
from repro.prediction.predictors import make_predictor
from repro.prediction.throughput import EmaThroughputEstimator
from repro.simulation.delaymodel import MM1DelayModel
from repro.simulation.metrics import (
    EpisodeResult,
    MultiEpisodeResults,
    summarize_ledger,
)
from repro.traces.dataset import TraceDataset
from repro.traces.network import TraceCatalog
from repro.units import (
    DEFAULT_NUM_LEVELS,
    SERVER_MBPS_PER_USER,
    SLOT_DURATION_S,
)


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of the Section IV simulation.

    Defaults follow the paper: six quality levels, alpha=0.02,
    beta=0.5, server budget 36 Mbps per user, 20-100 Mbps user traces.
    ``duration_slots`` defaults to a compact 30 simulated seconds —
    long enough for the running statistics to converge — rather than
    the paper's full 300 s; scale it up freely.
    """

    num_users: int = 5
    num_levels: int = DEFAULT_NUM_LEVELS
    weights: QoEWeights = field(default_factory=QoEWeights.simulation_defaults)
    duration_slots: int = 1800
    slot_s: float = SLOT_DURATION_S
    server_mbps_per_user: float = SERVER_MBPS_PER_USER
    margin_deg: float = 15.0
    cell_tolerance: int = 1
    predictor: str = "linear-regression"
    predictor_window: int = 10
    world_size_m: float = 8.0
    content_spread: float = 0.2
    #: Section IV assumes "the server has the perfect knowledge of the
    #: delay and throughput"; set False to feed the allocator EMA
    #: bandwidth estimates instead (the Section VI regime), bridging
    #: the simulator toward the real-system robustness study.
    perfect_network_knowledge: bool = True
    ema_alpha: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_users < 1:
            raise ConfigurationError(f"num_users must be >= 1, got {self.num_users}")
        if self.duration_slots < 1:
            raise ConfigurationError(
                f"duration_slots must be >= 1, got {self.duration_slots}"
            )
        if self.server_mbps_per_user <= 0:
            raise ConfigurationError(
                f"server budget per user must be positive, got {self.server_mbps_per_user}"
            )

    @property
    def server_budget_mbps(self) -> float:
        """``B(t) = 36 Mbps * N`` (constant, Section IV)."""
        return self.server_mbps_per_user * self.num_users


class TraceSimulator:
    """Replays episodes and evaluates allocators on them.

    The random substrate (traces, motion, content curves) depends only
    on ``(config.seed, episode)`` — every allocator sees exactly the
    same world, which is what makes the CDF comparisons of Figs. 2-3
    paired and fair.
    """

    def __init__(self, config: SimulationConfig = SimulationConfig()) -> None:
        self.config = config
        self.world = GridWorld(
            0.0, config.world_size_m, 0.0, config.world_size_m, cell_size=0.05
        )
        self.grid = TileGrid()
        self.rate_model = RateModel(
            num_levels=config.num_levels,
            content_spread=config.content_spread,
            seed=config.seed,
        )
        self.dataset = TraceDataset(
            self.world,
            catalog=TraceCatalog(seed=config.seed),
            slot_s=config.slot_s,
            seed=config.seed,
        )
        self.coverage = CoverageEvaluator(
            self.world,
            self.grid,
            FieldOfView(),
            margin_deg=config.margin_deg,
            cell_tolerance=config.cell_tolerance,
        )
        self.delay_model = MM1DelayModel()

    def _make_predictor(self):
        """Instantiate the configured motion predictor."""
        if self.config.predictor == "linear-regression":
            return LinearMotionPredictor(
                window=self.config.predictor_window, horizon=1
            )
        return make_predictor(self.config.predictor, horizon=1)

    def run_episode(
        self,
        allocator: QualityAllocator,
        episode: int = 0,
        telemetry=None,
    ) -> EpisodeResult:
        """Simulate one episode with the given allocator.

        Pass a :class:`~repro.system.telemetry.Telemetry` collector to
        capture per-slot records (level, planned rate, believed and
        true bandwidth, coverage, delay) — the same forensics view the
        system emulation offers.
        """
        cfg = self.config
        schedule = self.dataset.episode(cfg.num_users, cfg.duration_slots, episode)
        allocator.reset()
        scheduler = CollaborativeVrScheduler(
            cfg.num_users, allocator, cfg.weights, allow_skip=False
        )
        predictors = [self._make_predictor() for _ in range(cfg.num_users)]
        estimators = (
            [
                EmaThroughputEstimator(alpha=cfg.ema_alpha)
                for _ in range(cfg.num_users)
            ]
            if not cfg.perfect_network_knowledge
            else None
        )

        # Cache rate curves per content cell: users revisit cells often.
        curve_cache: Dict[int, Sequence[float]] = {}

        num_slots = min(cfg.duration_slots, schedule.num_slots)
        for t in range(num_slots):
            caps = schedule.bandwidth_mbps[:, t]
            if estimators is None:
                believed_caps = [float(c) for c in caps]
            else:
                # Imperfect knowledge: the allocator sees the EMA of
                # *past* bandwidth samples, never the current truth.
                believed_caps = [
                    est.estimate() if est.num_samples else float(caps[n])
                    for n, est in enumerate(estimators)
                ]
            sizes: List[Sequence[float]] = []
            delay_fns = []
            predicted_poses = []
            for n in range(cfg.num_users):
                predicted = predictors[n].predict()
                if predicted is None:
                    # Connection setup delivers the initial pose.
                    predicted = schedule.poses[n][t]
                predicted_poses.append(predicted)
                cell = self.world.cell_of(predicted.x, predicted.y)
                if cell not in curve_cache:
                    curve_cache[cell] = self.rate_model.curve(cell).as_tuple()
                sizes.append(curve_cache[cell])
                delay_fns.append(self.delay_model.delay_fn(believed_caps[n]))

            problem = scheduler.build_slot_problem(
                sizes, delay_fns, believed_caps, cfg.server_budget_mbps
            )
            levels = scheduler.allocate(problem)

            indicators = []
            delays = []
            for n in range(cfg.num_users):
                actual = schedule.poses[n][t]
                if levels[n] > 0:
                    outcome = self.coverage.evaluate(predicted_poses[n], actual)
                    indicators.append(outcome.indicator)
                    delays.append(
                        self.delay_model.delay(
                            sizes[n][levels[n] - 1], float(caps[n])
                        )
                    )
                else:
                    indicators.append(0)
                    delays.append(0.0)
                predictors[n].observe(actual)

            scheduler.record_outcomes(levels, indicators, delays)
            if telemetry is not None:
                from repro.system.telemetry import SlotUserRecord

                for n in range(cfg.num_users):
                    rate = sizes[n][levels[n] - 1] if levels[n] > 0 else 0.0
                    telemetry.add(
                        SlotUserRecord(
                            slot=t,
                            user=n,
                            level=levels[n],
                            demand_mbps=rate,
                            achieved_mbps=float(caps[n]),
                            believed_cap_mbps=believed_caps[n],
                            displayed=levels[n] > 0,
                            covered=bool(indicators[n]),
                            delay_slots=delays[n],
                        )
                    )
            if estimators is not None:
                for n in range(cfg.num_users):
                    estimators[n].observe(float(caps[n]))

        return EpisodeResult(
            users=[
                summarize_ledger(ledger, cfg.weights)
                for ledger in scheduler.ledgers
            ],
            episode=episode,
        )

    def run(
        self,
        allocator: QualityAllocator,
        num_episodes: int = 1,
        first_episode: int = 0,
    ) -> MultiEpisodeResults:
        """Simulate several episodes and pool the per-user samples."""
        if num_episodes < 1:
            raise ConfigurationError(
                f"num_episodes must be >= 1, got {num_episodes}"
            )
        results = MultiEpisodeResults(algorithm=allocator.name)
        for episode in range(first_episode, first_episode + num_episodes):
            results.add(self.run_episode(allocator, episode))
        return results

    def compare(
        self,
        allocators: Mapping[str, QualityAllocator],
        num_episodes: int = 1,
    ) -> Dict[str, MultiEpisodeResults]:
        """Run every allocator over the same episodes."""
        if not allocators:
            raise ConfigurationError("compare needs at least one allocator")
        return {
            name: self.run(allocator, num_episodes)
            for name, allocator in allocators.items()
        }
