"""The trace-driven simulator of Section IV.

Each episode replays one network trace and one motion trace per user.
Per slot the simulator:

1. predicts every user's pose with linear regression over the poses
   the server has received so far;
2. derives the content (viewpoint cell) and its rate curve
   ``f_c^R(q)``;
3. builds the per-slot problem with the *true* ``B_n(t)`` and ``B(t)``
   (the paper's simulation assumes the server knows the network
   perfectly) and asks the allocator for quality levels;
4. computes the M/M/1 delivery delay (eq. 13) of each user's chosen
   level;
5. evaluates the coverage indicator ``1_n(t)`` by comparing the
   delivered FoV-with-margin against the true pose;
6. folds everything into the per-user QoE ledgers.

Fast path
---------
The per-slot pipeline is hoisted out of the hot loop wherever the
inputs are allocator-independent: pose predictions and viewpoint
cells are precomputed per episode with vectorized numpy (bit-identical
to the sequential predictor — see
:func:`repro.prediction.motion.batch_linear_predictions`), rate curves
and M/M/1 delay closures are memoized, and the coverage evaluator
memoizes its tile-overlap queries on exact keys.  Because the random
substrate depends only on ``(config.seed, episode)``, episodes are
independent and :meth:`TraceSimulator.run` can fan them out over a
process pool (``max_workers``) with results identical to the serial
path and returned in episode order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.content.projection import FieldOfView
from repro.content.rate import RateModel
from repro.content.tiles import GridWorld, TileGrid
from repro.core.allocation import QualityAllocator
from repro.core.qoe import QoEWeights
from repro.core.scheduler import CollaborativeVrScheduler
from repro.errors import ConfigurationError
from repro.obs.config import Obs
from repro.prediction.fov import CoverageEvaluator
from repro.prediction.motion import LinearMotionPredictor, batch_linear_predictions
from repro.prediction.pose import Pose
from repro.prediction.predictors import make_predictor
from repro.prediction.throughput import EmaThroughputEstimator
from repro.simulation import workers
from repro.simulation.delaymodel import MM1DelayModel
from repro.simulation.metrics import (
    EpisodeResult,
    MultiEpisodeResults,
    summarize_ledger,
)
from repro.system.telemetry import SlotUserRecord, Telemetry
from repro.traces.dataset import SlotSchedule, TraceDataset
from repro.traces.network import TraceCatalog
from repro.units import (
    DEFAULT_NUM_LEVELS,
    SERVER_MBPS_PER_USER,
    SLOT_DURATION_S,
)

#: Episodes of precomputed schedules/predictions kept per simulator.
_EPISODE_CACHE_LIMIT = 8
#: Distinct bandwidth values whose delay closures are memoized.
_DELAY_CACHE_LIMIT = 65536
#: Distinct viewpoint cells whose rate curves are memoized.  The
#: default 8 m world at 5 cm cells has 160 x 160 = 25 600 cells, so
#: the bound never binds there — it exists to keep a custom huge world
#: from growing the cache without limit.
_CURVE_CACHE_LIMIT = 65536


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of the Section IV simulation.

    Defaults follow the paper: six quality levels, alpha=0.02,
    beta=0.5, server budget 36 Mbps per user, 20-100 Mbps user traces.
    ``duration_slots`` defaults to a compact 30 simulated seconds —
    long enough for the running statistics to converge — rather than
    the paper's full 300 s; scale it up freely.
    """

    num_users: int = 5
    num_levels: int = DEFAULT_NUM_LEVELS
    weights: QoEWeights = field(default_factory=QoEWeights.simulation_defaults)
    duration_slots: int = 1800
    slot_s: float = SLOT_DURATION_S
    server_mbps_per_user: float = SERVER_MBPS_PER_USER
    margin_deg: float = 15.0
    cell_tolerance: int = 1
    predictor: str = "linear-regression"
    predictor_window: int = 10
    world_size_m: float = 8.0
    content_spread: float = 0.2
    #: Section IV assumes "the server has the perfect knowledge of the
    #: delay and throughput"; set False to feed the allocator EMA
    #: bandwidth estimates instead (the Section VI regime), bridging
    #: the simulator toward the real-system robustness study.
    perfect_network_knowledge: bool = True
    ema_alpha: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_users < 1:
            raise ConfigurationError(f"num_users must be >= 1, got {self.num_users}")
        if self.duration_slots < 1:
            raise ConfigurationError(
                f"duration_slots must be >= 1, got {self.duration_slots}"
            )
        if self.server_mbps_per_user <= 0:
            raise ConfigurationError(
                f"server budget per user must be positive, got {self.server_mbps_per_user}"
            )

    @property
    def server_budget_mbps(self) -> float:
        """``B(t) = 36 Mbps * N`` (constant, Section IV)."""
        return self.server_mbps_per_user * self.num_users


class TraceSimulator:
    """Replays episodes and evaluates allocators on them.

    The random substrate (traces, motion, content curves) depends only
    on ``(config.seed, episode)`` — every allocator sees exactly the
    same world, which is what makes the CDF comparisons of Figs. 2-3
    paired and fair.  The same independence lets :meth:`run` replay
    episodes in parallel worker processes, and lets one simulator
    reuse an episode's precomputed schedule and pose predictions
    across the allocators of a :meth:`compare`.
    """

    def __init__(self, config: SimulationConfig = SimulationConfig()) -> None:
        self.config = config
        self.world = GridWorld(
            0.0, config.world_size_m, 0.0, config.world_size_m, cell_size=0.05
        )
        self.grid = TileGrid()
        self.rate_model = RateModel(
            num_levels=config.num_levels,
            content_spread=config.content_spread,
            seed=config.seed,
        )
        self.dataset = TraceDataset(
            self.world,
            catalog=TraceCatalog(seed=config.seed),
            slot_s=config.slot_s,
            seed=config.seed,
        )
        self.coverage = CoverageEvaluator(
            self.world,
            self.grid,
            FieldOfView(),
            margin_deg=config.margin_deg,
            cell_tolerance=config.cell_tolerance,
        )
        self.delay_model = MM1DelayModel()
        # Allocator-independent per-episode state, reused across the
        # allocators of a compare(); bounded to the last few episodes.
        self._schedule_cache: Dict[Tuple[int, int, int], SlotSchedule] = {}
        self._prediction_cache: Dict[Tuple[int, int, int], List[List[Pose]]] = {}
        # Rate curves depend only on (model seed, cell): share forever.
        self._curve_cache: Dict[int, Tuple[float, ...]] = {}
        # One M/M/1 closure per distinct bandwidth value.
        self._delay_fn_cache: Dict[float, Callable[[float], float]] = {}

    def _make_predictor(self):
        """Instantiate the configured motion predictor."""
        if self.config.predictor == "linear-regression":
            return LinearMotionPredictor(
                window=self.config.predictor_window, horizon=1
            )
        return make_predictor(self.config.predictor, horizon=1)

    @staticmethod
    def _cache_put(cache: Dict, key, value) -> None:
        """Insert into a bounded insertion-ordered cache."""
        if len(cache) >= _EPISODE_CACHE_LIMIT:
            cache.pop(next(iter(cache)))
        cache[key] = value

    def _episode_schedule(self, episode: int) -> SlotSchedule:
        """The episode's replay inputs, memoized across allocators."""
        cfg = self.config
        key = (cfg.num_users, cfg.duration_slots, episode)
        schedule = self._schedule_cache.get(key)
        if schedule is None:
            schedule = self.dataset.episode(cfg.num_users, cfg.duration_slots, episode)
            self._cache_put(self._schedule_cache, key, schedule)
        return schedule

    def _episode_predictions(
        self, schedule: SlotSchedule, num_slots: int, episode: int
    ) -> List[List[Pose]]:
        """Predicted pose per (user, slot) — allocator-independent.

        The predictor only ever observes the *true* poses, which the
        schedule fixes upfront, so the whole prediction sequence can
        be computed once per episode.  The linear-regression default
        goes through the vectorized batch fit (bit-identical to the
        sequential predictor); other predictors replay sequentially.
        """
        cfg = self.config
        key = (cfg.num_users, num_slots, episode)
        cached = self._prediction_cache.get(key)
        if cached is not None:
            return cached
        predicted: List[List[Pose]] = []
        if cfg.predictor == "linear-regression":
            for n in range(cfg.num_users):
                vectors = np.array(
                    [p.as_vector() for p in schedule.poses[n][:num_slots]],
                    dtype=float,
                )
                fitted = batch_linear_predictions(
                    vectors, window=cfg.predictor_window, horizon=1
                )
                # Slot 0 has no observations: connection setup
                # delivers the initial pose, exactly as the sequential
                # loop falls back.
                row = [schedule.poses[n][0]]
                row.extend(Pose.from_vector(fitted[t]) for t in range(1, num_slots))
                predicted.append(row)
        else:
            for n in range(cfg.num_users):
                predictor = self._make_predictor()
                row = []
                for t in range(num_slots):
                    pose = predictor.predict()
                    row.append(pose if pose is not None else schedule.poses[n][t])
                    predictor.observe(schedule.poses[n][t])
                predicted.append(row)
        self._cache_put(self._prediction_cache, key, predicted)
        return predicted

    def _curve(self, cell: int) -> Tuple[float, ...]:
        """Rate curve of a viewpoint cell, memoized across episodes."""
        curve = self._curve_cache.get(cell)
        if curve is None:
            if len(self._curve_cache) >= _CURVE_CACHE_LIMIT:
                self._curve_cache.clear()
            curve = self._curve_cache[cell] = self.rate_model.curve(cell).as_tuple()
        return curve

    def _delay_fn(self, bandwidth_mbps: float) -> Callable[[float], float]:
        """Per-bandwidth M/M/1 closure, memoized instead of rebuilt."""
        fn = self._delay_fn_cache.get(bandwidth_mbps)
        if fn is None:
            if len(self._delay_fn_cache) >= _DELAY_CACHE_LIMIT:
                self._delay_fn_cache.clear()
            fn = self._delay_fn_cache[bandwidth_mbps] = self.delay_model.delay_fn(
                bandwidth_mbps
            )
        return fn

    def run_episode(
        self,
        allocator: QualityAllocator,
        episode: int = 0,
        telemetry: Optional[Telemetry] = None,
        obs: Optional[Obs] = None,
    ) -> EpisodeResult:
        """Simulate one episode with the given allocator.

        Pass a :class:`~repro.system.telemetry.Telemetry` collector to
        capture per-slot records (level, planned rate, believed and
        true bandwidth, coverage, delay) — the same forensics view the
        system emulation offers.  An :class:`~repro.obs.config.Obs`
        bundle mirrors episode/slot progress into its registry; both
        are pure observers of the seeded run.
        """
        cfg = self.config
        schedule = self._episode_schedule(episode)
        allocator.reset()
        scheduler = CollaborativeVrScheduler(
            cfg.num_users, allocator, cfg.weights, allow_skip=False
        )
        if obs is not None:
            scheduler.attach_registry(obs.registry)
            obs.registry.counter(
                "repro_sim_episodes_total", "Simulation episodes started"
            ).inc()
        estimators = (
            [
                EmaThroughputEstimator(alpha=cfg.ema_alpha)
                for _ in range(cfg.num_users)
            ]
            if not cfg.perfect_network_knowledge
            else None
        )

        num_slots = min(cfg.duration_slots, schedule.num_slots)
        predicted_poses = self._episode_predictions(schedule, num_slots, episode)
        # Viewpoint cells for every (user, slot) in two vectorized
        # sweeps; bit-identical to calling world.cell_of per slot.
        predicted_cells = self.world.cells_of(
            [[p.x for p in row] for row in predicted_poses],
            [[p.y for p in row] for row in predicted_poses],
        )
        actual_cells = self.world.cells_of(
            [[p.x for p in row[:num_slots]] for row in schedule.poses],
            [[p.y for p in row[:num_slots]] for row in schedule.poses],
        )

        for t in range(num_slots):
            caps = schedule.bandwidth_mbps[:, t]
            if estimators is None:
                believed_caps = [float(c) for c in caps]
            else:
                # Imperfect knowledge: the allocator sees the EMA of
                # *past* bandwidth samples, never the current truth.
                believed_caps = [
                    est.estimate() if est.num_samples else float(caps[n])
                    for n, est in enumerate(estimators)
                ]
            sizes: List[Sequence[float]] = []
            delay_fns = []
            for n in range(cfg.num_users):
                sizes.append(self._curve(int(predicted_cells[n][t])))
                delay_fns.append(self._delay_fn(believed_caps[n]))

            problem = scheduler.build_slot_problem(
                sizes, delay_fns, believed_caps, cfg.server_budget_mbps
            )
            levels = scheduler.allocate(problem)

            indicators = []
            delays = []
            for n in range(cfg.num_users):
                actual = schedule.poses[n][t]
                if levels[n] > 0:
                    outcome = self.coverage.evaluate(
                        predicted_poses[n][t],
                        actual,
                        predicted_cell=int(predicted_cells[n][t]),
                        actual_cell=int(actual_cells[n][t]),
                    )
                    indicators.append(outcome.indicator)
                    delays.append(
                        self.delay_model.delay(
                            sizes[n][levels[n] - 1], float(caps[n])
                        )
                    )
                else:
                    indicators.append(0)
                    delays.append(0.0)

            scheduler.record_outcomes(levels, indicators, delays)
            if telemetry is not None:
                for n in range(cfg.num_users):
                    rate = sizes[n][levels[n] - 1] if levels[n] > 0 else 0.0
                    telemetry.add(
                        SlotUserRecord(
                            slot=t,
                            user=n,
                            level=levels[n],
                            demand_mbps=rate,
                            achieved_mbps=float(caps[n]),
                            believed_cap_mbps=believed_caps[n],
                            displayed=levels[n] > 0,
                            covered=bool(indicators[n]),
                            delay_slots=delays[n],
                        )
                    )
            if estimators is not None:
                for n in range(cfg.num_users):
                    estimators[n].observe(float(caps[n]))

        return EpisodeResult(
            users=[
                summarize_ledger(ledger, cfg.weights)
                for ledger in scheduler.ledgers
            ],
            episode=episode,
        )

    def run(
        self,
        allocator: QualityAllocator,
        num_episodes: int = 1,
        first_episode: int = 0,
        max_workers: Optional[int] = None,
    ) -> MultiEpisodeResults:
        """Simulate several episodes and pool the per-user samples.

        ``max_workers`` fans the episodes out over the persistent
        worker pool of :mod:`repro.simulation.workers`.  Episodes are
        independent by construction (seeded by ``(config.seed,
        episode)``), so the parallel path returns exactly the same
        :class:`MultiEpisodeResults` as the serial one, in episode
        order.  Serial replay is used whenever the pool would not pay
        for itself — ``None``/0/1 workers, a single episode, a
        single-core machine (see
        :func:`~repro.simulation.workers.parallel_decision`) — or
        cannot be used at all (unpicklable allocator, no fork
        support).
        """
        if num_episodes < 1:
            raise ConfigurationError(
                f"num_episodes must be >= 1, got {num_episodes}"
            )
        if max_workers is not None and max_workers < 0:
            raise ConfigurationError(
                f"max_workers must be non-negative, got {max_workers}"
            )
        results = MultiEpisodeResults(algorithm=allocator.name)
        episodes = range(first_episode, first_episode + num_episodes)
        decision = workers.parallel_decision(num_episodes, max_workers)
        if decision.use_parallel:
            assert max_workers is not None
            episode_results = workers.run_episodes(
                self.config, allocator, episodes, max_workers
            )
            if episode_results is not None:
                for episode_result in episode_results:
                    results.add(episode_result)
                return results
        for episode in episodes:
            results.add(self.run_episode(allocator, episode))
        return results

    def compare(
        self,
        allocators: Mapping[str, QualityAllocator],
        num_episodes: int = 1,
        max_workers: Optional[int] = None,
    ) -> Dict[str, MultiEpisodeResults]:
        """Run every allocator over the same episodes."""
        if not allocators:
            raise ConfigurationError("compare needs at least one allocator")
        return {
            name: self.run(allocator, num_episodes, max_workers=max_workers)
            for name, allocator in allocators.items()
        }
