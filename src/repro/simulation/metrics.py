"""Per-episode and cross-episode metric collection.

The paper's CDF figures (Figs. 2-3) pool per-user averages over many
(user, trace) pairs; :class:`MultiEpisodeResults` accumulates exactly
those samples and exposes them as :class:`~repro.analysis.cdf.EmpiricalCdf`
objects per metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.cdf import EmpiricalCdf
from repro.core.qoe import QoEWeights, UserQoELedger
from repro.errors import ConfigurationError

#: Metric keys reported by the simulation figures.
METRICS = ("qoe", "quality", "delay", "variance")


@dataclass(frozen=True)
class UserEpisodeSummary:
    """One user's averaged metrics over one episode.

    ``qoe`` is the per-slot average QoE (the paper plots per-user
    average QoE); ``quality`` is the mean successfully-viewed quality;
    ``delay`` the mean delivery delay; ``variance`` the viewed-quality
    variance; ``fps`` the realized display rate (system emulation
    only).
    """

    qoe: float
    quality: float
    delay: float
    variance: float
    mean_level: float
    fps: Optional[float] = None

    def metric(self, key: str) -> float:
        """Look up a metric by its figure key."""
        try:
            return float(getattr(self, key))
        except AttributeError:
            raise ConfigurationError(f"unknown metric {key!r}") from None


def summarize_ledger(
    ledger: UserQoELedger, weights: QoEWeights, fps: Optional[float] = None
) -> UserEpisodeSummary:
    """Collapse a QoE ledger into the figure metrics."""
    return UserEpisodeSummary(
        qoe=ledger.qoe_per_slot(weights),
        quality=ledger.mean_viewed_quality(),
        delay=ledger.mean_delay(),
        variance=ledger.quality_variance(),
        mean_level=ledger.mean_allocated_level(),
        fps=fps,
    )


@dataclass
class EpisodeResult:
    """All users' summaries for one episode, plus system aggregates."""

    users: List[UserEpisodeSummary]
    episode: int = 0

    def __post_init__(self) -> None:
        if not self.users:
            raise ConfigurationError("an episode result needs at least one user")

    @property
    def num_users(self) -> int:
        return len(self.users)

    def mean(self, key: str) -> float:
        """Population mean of a metric across users."""
        return sum(u.metric(key) for u in self.users) / self.num_users

    def system_qoe_per_slot(self) -> float:
        """Sum of per-slot-average QoE over users (eq. (1) scaled by T)."""
        return sum(u.qoe for u in self.users)

    def fairness(self, key: str = "qoe") -> float:
        """Jain's fairness index of a metric across users."""
        from repro.analysis.stats import jain_fairness

        return jain_fairness([u.metric(key) for u in self.users])

    def mean_fps(self) -> Optional[float]:
        values = [u.fps for u in self.users if u.fps is not None]
        return sum(values) / len(values) if values else None


@dataclass
class MultiEpisodeResults:
    """Pooled per-user samples across episodes for one algorithm."""

    algorithm: str
    episodes: List[EpisodeResult] = field(default_factory=list)

    def add(self, result: EpisodeResult) -> None:
        self.episodes.append(result)

    @property
    def num_episodes(self) -> int:
        return len(self.episodes)

    def samples(self, key: str) -> List[float]:
        """All (user, episode) samples of one metric."""
        return [u.metric(key) for ep in self.episodes for u in ep.users]

    def cdf(self, key: str) -> EmpiricalCdf:
        """Empirical CDF of a metric — one curve of Fig. 2/3."""
        return EmpiricalCdf(self.samples(key))

    def mean(self, key: str) -> float:
        values = self.samples(key)
        if not values:
            raise ConfigurationError("no episodes recorded yet")
        return sum(values) / len(values)

    def means(self, keys: Sequence[str] = METRICS) -> Dict[str, float]:
        return {k: self.mean(k) for k in keys}

    def mean_fps(self) -> Optional[float]:
        values = [
            u.fps for ep in self.episodes for u in ep.users if u.fps is not None
        ]
        return sum(values) / len(values) if values else None

    def mean_fairness(self, key: str = "qoe") -> float:
        """Mean per-episode Jain fairness of a metric."""
        if not self.episodes:
            raise ConfigurationError("no episodes recorded yet")
        return sum(ep.fairness(key) for ep in self.episodes) / len(self.episodes)
