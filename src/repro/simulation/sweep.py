"""Parameter sweeps over the simulation configuration.

Section II frames ``alpha`` and ``beta`` as application knobs (gaming
is delay-sensitive, museum touring is consistency-sensitive); the
margin and the server budget rule are further design constants the
paper fixes by experimentation.  This module runs structured sweeps
over any subset of :class:`~repro.simulation.simulator.SimulationConfig`
fields and collects per-point metrics, so those choices can be
re-examined quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import product
from typing import Callable, List, Mapping, Sequence, Tuple

from repro.core.allocation import QualityAllocator
from repro.core.qoe import QoEWeights
from repro.errors import ConfigurationError
from repro.simulation.metrics import MultiEpisodeResults
from repro.simulation.simulator import SimulationConfig, TraceSimulator


@dataclass(frozen=True)
class SweepPoint:
    """One configuration point and its pooled results."""

    overrides: Tuple[Tuple[str, object], ...]
    results: MultiEpisodeResults

    def override(self, field: str) -> object:
        for name, value in self.overrides:
            if name == field:
                return value
        raise ConfigurationError(f"field {field!r} not part of this sweep")


def _apply_overrides(
    base: SimulationConfig, overrides: Mapping[str, object]
) -> SimulationConfig:
    weights_fields = {
        k: v for k, v in overrides.items() if k in ("alpha", "beta")
    }
    config_fields = {
        k: v for k, v in overrides.items() if k not in ("alpha", "beta")
    }
    config = replace(base, **config_fields) if config_fields else base
    if weights_fields:
        config = replace(
            config,
            weights=QoEWeights(
                alpha=float(weights_fields.get("alpha", config.weights.alpha)),
                beta=float(weights_fields.get("beta", config.weights.beta)),
            ),
        )
    return config


def run_sweep(
    base: SimulationConfig,
    allocator_factory: Callable[[], QualityAllocator],
    grid: Mapping[str, Sequence[object]],
    num_episodes: int = 1,
) -> List[SweepPoint]:
    """Run the allocator across the Cartesian product of a grid.

    Parameters
    ----------
    base:
        Baseline configuration; each point overrides some fields.
        ``alpha``/``beta`` are accepted as virtual fields that rebuild
        the :class:`QoEWeights`.
    allocator_factory:
        Zero-argument callable producing a fresh allocator per point
        (stateful allocators must not leak across points).
    grid:
        ``{field: [values...]}``.
    """
    if not grid:
        raise ConfigurationError("a sweep needs at least one field")
    for field, values in grid.items():
        if not values:
            raise ConfigurationError(f"field {field!r} has no sweep values")

    fields = list(grid)
    points: List[SweepPoint] = []
    for combo in product(*(grid[f] for f in fields)):
        overrides = dict(zip(fields, combo))
        config = _apply_overrides(base, overrides)
        simulator = TraceSimulator(config)
        allocator: QualityAllocator = allocator_factory()
        results = simulator.run(allocator, num_episodes=num_episodes)
        points.append(SweepPoint(tuple(overrides.items()), results))
    return points


def sweep_table(
    points: Sequence[SweepPoint],
    metrics: Sequence[str] = ("qoe", "quality", "delay", "variance"),
) -> List[List[object]]:
    """Rows of [override values..., metric values...] for reporting."""
    if not points:
        raise ConfigurationError("no sweep points to tabulate")
    rows = []
    for point in points:
        row: List[object] = [value for _, value in point.overrides]
        row.extend(point.results.mean(metric) for metric in metrics)
        rows.append(row)
    return rows


def best_point(
    points: Sequence[SweepPoint], metric: str = "qoe"
) -> SweepPoint:
    """The sweep point maximising a metric."""
    if not points:
        raise ConfigurationError("no sweep points to compare")
    return max(points, key=lambda p: p.results.mean(metric))
