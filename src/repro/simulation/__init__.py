"""Trace-driven simulation (Section IV of the paper).

The simulator replays network and motion traces slot by slot: it
predicts each user's pose, selects the tiles to deliver, asks the
configured allocator for quality levels under the true throughput
constraints (the paper's simulation assumes perfect network
knowledge), computes the M/M/1 delivery delay (eq. 13), evaluates the
coverage indicator against the true pose, and accumulates each user's
QoE ledger.
"""

from repro.simulation.delaymodel import MM1DelayModel, sample_rtts
from repro.simulation.metrics import (
    EpisodeResult,
    MultiEpisodeResults,
    UserEpisodeSummary,
    summarize_ledger,
)
from repro.simulation.simulator import SimulationConfig, TraceSimulator
from repro.simulation.sweep import SweepPoint, best_point, run_sweep, sweep_table

__all__ = [
    "SweepPoint",
    "run_sweep",
    "sweep_table",
    "best_point",
    "MM1DelayModel",
    "sample_rtts",
    "UserEpisodeSummary",
    "EpisodeResult",
    "MultiEpisodeResults",
    "summarize_ledger",
    "SimulationConfig",
    "TraceSimulator",
]
