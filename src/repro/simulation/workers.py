"""Persistent worker pool for parallel episode replay.

The original fan-out created a fresh :class:`ProcessPoolExecutor` per
``run()`` and pickled ``(config, allocator, episode)`` for every
episode — process startup plus repeated payload shipping often cost
more than the episodes themselves.  This module keeps one module-wide
pool alive across runs (spawn once) and ships each worker a *chunk*
``(config, allocator, [episode seeds])`` — the heavyweight objects
cross the process boundary once per worker, the episodes as plain
ints.  Workers rebuild their simulator only when the config changes,
so consecutive runs reuse warm caches.

:func:`parallel_decision` centralizes the "would a pool even pay for
itself?" call: single-episode runs and single-core boxes always take
the serial path, and the perf harness records that decision honestly
(``parallel_fallback`` in ``BENCH_simulator.json``) instead of
reporting a meaningless sub-1.0 speedup.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pickle import PicklingError, dumps as _pickle_dumps
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.simulation.metrics import EpisodeResult
    from repro.simulation.simulator import SimulationConfig, TraceSimulator


@dataclass(frozen=True)
class ParallelDecision:
    """Whether episode fan-out should use worker processes, and why."""

    use_parallel: bool
    reason: str


def parallel_decision(
    num_episodes: int, max_workers: Optional[int]
) -> ParallelDecision:
    """Decide whether a pool can pay for itself.

    Serial when the caller asked for it (``None``/0/1 workers), when
    there is only one episode to replay, or when the box has a single
    CPU core (worker processes would just time-slice the same core
    while paying pickling and startup on top).
    """
    if max_workers is None or max_workers <= 1:
        return ParallelDecision(False, "serial replay requested (max_workers <= 1)")
    if num_episodes <= 1:
        return ParallelDecision(False, "a single episode cannot be split")
    cores = os.cpu_count() or 1
    if cores < 2:
        return ParallelDecision(
            False,
            f"{cores} CPU core: worker processes cannot overlap and "
            "would only add startup and pickling cost",
        )
    workers = min(max_workers, num_episodes)
    return ParallelDecision(
        True, f"{workers} workers over {num_episodes} episodes on {cores} cores"
    )


_POOL: Optional[ProcessPoolExecutor] = None
_POOL_WORKERS = 0

#: Errors that mean "the pool itself is unusable" — the caller falls
#: back to serial replay.  Genuine episode errors propagate.
POOL_ERRORS = (
    ImportError,
    NotImplementedError,
    OSError,
    PicklingError,
    BrokenProcessPool,
)


def get_pool(max_workers: int) -> ProcessPoolExecutor:
    """The shared pool, (re)created only when the size changes."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS != max_workers:
        shutdown_pool()
    if _POOL is None:
        _POOL = ProcessPoolExecutor(max_workers=max_workers)
        _POOL_WORKERS = max_workers
    return _POOL


def shutdown_pool() -> None:
    """Dispose of the shared pool (atexit, or after a pool failure)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=True, cancel_futures=True)
        _POOL = None
        _POOL_WORKERS = 0


atexit.register(shutdown_pool)


def _chunks(episodes: List[int], num_chunks: int) -> List[List[int]]:
    """Contiguous near-equal chunks, one per worker."""
    size, extra = divmod(len(episodes), num_chunks)
    out: List[List[int]] = []
    start = 0
    for i in range(num_chunks):
        end = start + size + (1 if i < extra else 0)
        if end > start:
            out.append(episodes[start:end])
        start = end
    return out


#: Per-process simulator reused across the chunks a worker handles.
_WORKER_SIMULATOR: Optional["TraceSimulator"] = None


def _chunk_task(
    payload: Tuple["SimulationConfig", object, List[int]]
) -> List["EpisodeResult"]:
    """Worker-process entry point: replay one chunk of episodes."""
    global _WORKER_SIMULATOR
    from repro.simulation.simulator import TraceSimulator

    config, allocator, episodes = payload
    if _WORKER_SIMULATOR is None or _WORKER_SIMULATOR.config != config:
        _WORKER_SIMULATOR = TraceSimulator(config)
    return [
        _WORKER_SIMULATOR.run_episode(allocator, episode) for episode in episodes
    ]


def run_episodes(
    config: "SimulationConfig",
    allocator: object,
    episodes: Sequence[int],
    max_workers: int,
) -> Optional[List["EpisodeResult"]]:
    """Replay episodes on the shared pool; ``None`` means fall back.

    Results come back in episode order, identical to the serial path.
    """
    episode_list = [int(e) for e in episodes]
    try:
        # Pre-flight: the payload must cross the process boundary.
        # Unpicklable objects raise PicklingError, AttributeError
        # (local objects), or TypeError depending on the cause;
        # confining the catch to this explicit dumps() keeps the
        # pool.map clause below from masking episode errors.
        _pickle_dumps((config, allocator))
    except (PicklingError, AttributeError, TypeError):
        return None
    workers = min(max_workers, len(episode_list))
    payloads = [
        (config, allocator, chunk) for chunk in _chunks(episode_list, workers)
    ]
    try:
        pool = get_pool(workers)
        nested = list(pool.map(_chunk_task, payloads))
    except POOL_ERRORS:
        # A broken pool must not poison later runs.
        shutdown_pool()
        return None
    return [result for chunk in nested for result in chunk]
