"""Deterministic fault schedules for the live serving path.

The paper's testbed (Sec. V) runs commodity phones over throttled
Wi-Fi where disconnects, stalls, and garbled frames are routine; a
serving stack that only survives clean rate caps has not reproduced
that environment.  A :class:`FaultSchedule` is the scripted version
of that hostility: a set of :class:`FaultEvent` entries, each firing
*once* at an exact ``(slot, seat)`` coordinate, drawn either from an
explicit JSON script or from a seeded RNG — so the same seed always
produces the same fault timeline, and a chaos test can assert the
same recovery outcome bit-for-bit across runs.

Kinds are split by which side of the wire injects them:

* server-side (:data:`SERVER_KINDS`): ``disconnect`` (abort the
  seat's connection), ``stall_read`` / ``stall_write`` (pause the
  seat's uplink read / delay its plan frame by ``duration_s``),
  ``truncate_frame`` (send a cut-short plan frame, then abort);
* client-side (:data:`CLIENT_KINDS`): ``crash_client`` (drop the
  connection without a bye), ``corrupt_report`` (bit-flip the report
  frame body), ``delay_report`` (hold the report for ``duration_s``);
* shard-level (:data:`SHARD_KINDS`, schema version 2): ``shard_kill``
  (the coordinator pulls a whole shard out of service and migrates
  its sessions) and ``migration_stall`` (the coordinator delays a
  migrating session's redirect by ``duration_s``).  For shard kinds
  the ``seat`` field carries the *shard index*, not a seat.

The same schedule format drives the emulated testbed: passed to
:meth:`repro.system.experiment.SystemExperiment.run_repeat`, the
connection-level kinds become link outages for the affected slots.

Schema versioning: scripts that use only the original seat-level
kinds are written as version 1 (byte-stable with older releases);
any shard-level event bumps the written script to version 2, and a
version-1 script containing shard kinds is rejected as corrupt.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError

#: Server-side kinds: the serve slot loop / connection handlers inject.
FAULT_DISCONNECT = "disconnect"
FAULT_STALL_READ = "stall_read"
FAULT_STALL_WRITE = "stall_write"
FAULT_TRUNCATE_FRAME = "truncate_frame"

#: Client-side kinds: the load-generator clients inject on themselves.
FAULT_CRASH_CLIENT = "crash_client"
FAULT_CORRUPT_REPORT = "corrupt_report"
FAULT_DELAY_REPORT = "delay_report"

#: Shard-level kinds: the shard coordinator injects.  ``seat`` holds
#: the target *shard index* for these (a shard has no seat identity).
FAULT_SHARD_KILL = "shard_kill"
FAULT_MIGRATION_STALL = "migration_stall"

SERVER_KINDS = (
    FAULT_DISCONNECT, FAULT_STALL_READ, FAULT_STALL_WRITE,
    FAULT_TRUNCATE_FRAME,
)
CLIENT_KINDS = (FAULT_CRASH_CLIENT, FAULT_CORRUPT_REPORT, FAULT_DELAY_REPORT)
SHARD_KINDS = (FAULT_SHARD_KILL, FAULT_MIGRATION_STALL)
FAULT_KINDS = SERVER_KINDS + CLIENT_KINDS + SHARD_KINDS

#: Kinds that need a positive ``duration_s`` to mean anything.
TIMED_KINDS = (
    FAULT_STALL_READ, FAULT_STALL_WRITE, FAULT_DELAY_REPORT,
    FAULT_MIGRATION_STALL,
)

#: Schema tag of the JSON script format.
SCHEDULE_SCHEMA_KIND = "repro.faults.schedule"
#: Highest schema version this release reads and writes.  Version 2
#: adds the shard-level kinds; :meth:`FaultSchedule.to_dict` still
#: emits version 1 for schedules that do not use them, so scripts
#: written by older releases round-trip byte-identically.
SCHEDULE_SCHEMA_VERSION = 2
SCHEDULE_SCHEMA_VERSION_BASE = 1

#: Sub-stream tag for the seeded schedule generator (see the RNG
#: conventions in repro.serve.slotloop: (seed, ..., tag) tuples).
SCHEDULE_RNG_TAG = 23


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: ``kind`` fired once at ``(slot, seat)``.

    ``duration_s`` parameterizes the timed kinds (stalls, report
    delays, migration stalls); connection-level kinds ignore it on
    the serving path and the emulated testbed reads it as an outage
    length.  For the shard-level kinds (:data:`SHARD_KINDS`) the
    ``seat`` field carries the target *shard index*.
    """

    slot: int
    seat: int
    kind: str
    duration_s: float = 0.0

    def __post_init__(self) -> None:
        if self.slot < 0:
            raise ConfigurationError(f"slot must be >= 0, got {self.slot}")
        if self.seat < 0:
            raise ConfigurationError(f"seat must be >= 0, got {self.seat}")
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.duration_s < 0:
            raise ConfigurationError(
                f"duration_s must be >= 0, got {self.duration_s}"
            )
        if self.kind in TIMED_KINDS and self.duration_s == 0:
            raise ConfigurationError(
                f"fault kind {self.kind!r} needs duration_s > 0"
            )

    @property
    def key(self) -> Tuple[int, int, str]:
        """The one-shot identity of this event."""
        return (self.slot, self.seat, self.kind)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slot": self.slot,
            "seat": self.seat,
            "kind": self.kind,
            "duration_s": self.duration_s,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultEvent":
        for key in ("slot", "seat"):
            value = payload.get(key)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigurationError(
                    f"fault event field {key!r} must be an integer, "
                    f"got {value!r}"
                )
        kind = payload.get("kind")
        if not isinstance(kind, str):
            raise ConfigurationError(
                f"fault event field 'kind' must be a string, got {kind!r}"
            )
        duration = payload.get("duration_s", 0.0)
        if isinstance(duration, bool) or not isinstance(duration, (int, float)):
            raise ConfigurationError(
                f"fault event field 'duration_s' must be a number, "
                f"got {duration!r}"
            )
        return cls(
            slot=int(payload["slot"]),
            seat=int(payload["seat"]),
            kind=kind,
            duration_s=float(duration),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable set of one-shot fault events.

    Events are canonically ordered by ``(slot, seat, kind)`` and must
    be unique on that key, so a schedule *is* its timeline — equality
    of schedules is equality of fault timelines.
    """

    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: e.key))
        seen = set()
        for event in ordered:
            if event.key in seen:
                raise ConfigurationError(
                    f"duplicate fault event for {event.key}; one-shot "
                    "events must be unique per (slot, seat, kind)"
                )
            seen.add(event.key)
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def restricted_to(self, kinds: Tuple[str, ...]) -> "FaultSchedule":
        """The sub-schedule holding only the given kinds."""
        return FaultSchedule(
            events=tuple(e for e in self.events if e.kind in kinds)
        )

    @property
    def server_events(self) -> "FaultSchedule":
        return self.restricted_to(SERVER_KINDS)

    @property
    def client_events(self) -> "FaultSchedule":
        return self.restricted_to(CLIENT_KINDS)

    @property
    def shard_events(self) -> "FaultSchedule":
        return self.restricted_to(SHARD_KINDS)

    def max_slot(self) -> int:
        """The latest slot any event fires at (-1 when empty)."""
        return max((e.slot for e in self.events), default=-1)

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # JSON script format
    # ------------------------------------------------------------------
    def schema_version(self) -> int:
        """The lowest schema version that can express this schedule."""
        if any(event.kind in SHARD_KINDS for event in self.events):
            return SCHEDULE_SCHEMA_VERSION
        return SCHEDULE_SCHEMA_VERSION_BASE

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": SCHEDULE_SCHEMA_KIND,
            "version": self.schema_version(),
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultSchedule":
        if payload.get("kind") != SCHEDULE_SCHEMA_KIND:
            raise ConfigurationError(
                f"not a fault schedule: kind={payload.get('kind')!r} "
                f"(expected {SCHEDULE_SCHEMA_KIND!r})"
            )
        version = payload.get("version")
        if version not in (
            SCHEDULE_SCHEMA_VERSION_BASE, SCHEDULE_SCHEMA_VERSION
        ):
            raise ConfigurationError(
                f"unsupported fault-schedule version {version!r}"
            )
        events = payload.get("events")
        if not isinstance(events, list):
            raise ConfigurationError("fault schedule 'events' must be a list")
        parsed: List[FaultEvent] = []
        for entry in events:
            if not isinstance(entry, dict):
                raise ConfigurationError(
                    f"fault event must be an object, got {entry!r}"
                )
            event = FaultEvent.from_dict(entry)
            if (
                version == SCHEDULE_SCHEMA_VERSION_BASE
                and event.kind in SHARD_KINDS
            ):
                raise ConfigurationError(
                    f"fault kind {event.kind!r} requires schema version "
                    f"{SCHEDULE_SCHEMA_VERSION}, but the script declares "
                    f"version {SCHEDULE_SCHEMA_VERSION_BASE}"
                )
            parsed.append(event)
        return cls(events=tuple(parsed))

    def save(self, path: Union[str, Path]) -> Path:
        """Write the schedule as a JSON script; returns the path."""
        target = Path(path)
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return target

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultSchedule":
        """Read a JSON fault script written by :meth:`save`."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read fault script {path}: {exc}"
            ) from exc
        except ValueError as exc:
            raise ConfigurationError(
                f"fault script {path} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"fault script {path} must hold a JSON object"
            )
        return cls.from_dict(payload)

    # ------------------------------------------------------------------
    # Seeded generation
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        num_slots: int,
        num_seats: int,
        rates: Mapping[str, float],
        duration_s: float = 0.05,
        min_slot: int = 1,
        num_shards: int = 0,
    ) -> "FaultSchedule":
        """Draw a schedule from a seeded RNG (same seed, same timeline).

        ``rates`` maps fault kinds to a per-(slot, seat) firing
        probability.  Kinds are visited in sorted order and slots and
        seats in increasing order, so the draw sequence — hence the
        schedule — is a pure function of the arguments.  ``min_slot``
        keeps the opening slots clean (joins and initial poses).

        Shard-level kinds target shard indices ``0..num_shards - 1``
        instead of seats, and are drawn *after* all seat-level kinds
        so schedules without shard rates keep the historical draw
        sequence bit-for-bit.
        """
        if num_slots < 1:
            raise ConfigurationError(
                f"num_slots must be >= 1, got {num_slots}"
            )
        if num_seats < 1:
            raise ConfigurationError(
                f"num_seats must be >= 1, got {num_seats}"
            )
        seat_rates: Dict[str, float] = {}
        shard_rates: Dict[str, float] = {}
        for kind, rate in rates.items():
            if kind not in FAULT_KINDS:
                raise ConfigurationError(
                    f"unknown fault kind {kind!r}; expected one of "
                    f"{FAULT_KINDS}"
                )
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"rate for {kind!r} must be in [0, 1], got {rate}"
                )
            if kind in SHARD_KINDS:
                shard_rates[kind] = rate
            else:
                seat_rates[kind] = rate
        if shard_rates and num_shards < 1:
            raise ConfigurationError(
                f"shard-level kinds {tuple(sorted(shard_rates))} need "
                f"num_shards >= 1, got {num_shards}"
            )
        rng = np.random.default_rng((seed, SCHEDULE_RNG_TAG))
        events: List[FaultEvent] = []
        for slot in range(max(min_slot, 0), num_slots):
            for seat in range(num_seats):
                for kind in sorted(seat_rates):
                    if float(rng.random()) < seat_rates[kind]:
                        events.append(
                            FaultEvent(
                                slot=slot,
                                seat=seat,
                                kind=kind,
                                duration_s=(
                                    duration_s if kind in TIMED_KINDS else 0.0
                                ),
                            )
                        )
        for slot in range(max(min_slot, 0), num_slots):
            for shard in range(num_shards if shard_rates else 0):
                for kind in sorted(shard_rates):
                    if float(rng.random()) < shard_rates[kind]:
                        events.append(
                            FaultEvent(
                                slot=slot,
                                seat=shard,
                                kind=kind,
                                duration_s=(
                                    duration_s if kind in TIMED_KINDS else 0.0
                                ),
                            )
                        )
        return cls(events=tuple(events))
