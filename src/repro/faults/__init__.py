"""repro.faults — deterministic fault injection for the serving path.

The paper's evaluation runs phones over throttled Wi-Fi where
disconnects, stalls, and corrupt frames are the norm; this package
makes that hostility *scriptable and reproducible*.  A seeded (or
hand-written JSON) :class:`~repro.faults.schedule.FaultSchedule`
names exactly which fault hits which seat at which slot; a
:class:`~repro.faults.injection.FaultInjector` hands each event out
once and records the realized timeline; the serving stack
(:mod:`repro.serve`) and the emulated testbed
(:mod:`repro.system.experiment`) consume the same schedule format.
The chaos test tier (``tests/chaos``) asserts that one seed always
yields one fault timeline and one recovery outcome.
"""

from repro.faults.injection import (
    FaultInjector,
    corrupt_frame_bytes,
    truncate_frame_bytes,
)
from repro.faults.schedule import (
    CLIENT_KINDS,
    FAULT_CORRUPT_REPORT,
    FAULT_CRASH_CLIENT,
    FAULT_DELAY_REPORT,
    FAULT_DISCONNECT,
    FAULT_KINDS,
    FAULT_MIGRATION_STALL,
    FAULT_SHARD_KILL,
    FAULT_STALL_READ,
    FAULT_STALL_WRITE,
    FAULT_TRUNCATE_FRAME,
    SERVER_KINDS,
    SHARD_KINDS,
    TIMED_KINDS,
    FaultEvent,
    FaultSchedule,
)

__all__ = [
    "CLIENT_KINDS",
    "FAULT_CORRUPT_REPORT",
    "FAULT_CRASH_CLIENT",
    "FAULT_DELAY_REPORT",
    "FAULT_DISCONNECT",
    "FAULT_KINDS",
    "FAULT_MIGRATION_STALL",
    "FAULT_SHARD_KILL",
    "FAULT_STALL_READ",
    "FAULT_STALL_WRITE",
    "FAULT_TRUNCATE_FRAME",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "SERVER_KINDS",
    "SHARD_KINDS",
    "TIMED_KINDS",
    "corrupt_frame_bytes",
    "truncate_frame_bytes",
]
