"""The fault injector: one-shot delivery of scheduled faults.

A :class:`FaultInjector` wraps a :class:`~repro.faults.schedule.FaultSchedule`
for one run.  Injection points (the serve slot loop, connection
handlers, and load-generator clients) ask it *"does fault K fire for
seat S at slot T?"*; each scheduled event is handed out exactly once,
every hand-out is appended to an ordered ``injected`` timeline (the
thing chaos tests compare across runs), and — when a metrics registry
is attached — counted under ``repro_faults_injected_total{kind=...}``.

The frame-mangling helpers (:func:`corrupt_frame_bytes`,
:func:`truncate_frame_bytes`) are deterministic functions of the
frame bytes, so a corrupted wire is as reproducible as a clean one.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.faults.schedule import FAULT_KINDS, FaultEvent, FaultSchedule
from repro.obs.registry import MetricFamily, MetricsRegistry

_LENGTH_PREFIX = struct.Struct("!I")

#: XOR mask used by :func:`corrupt_frame_bytes` — chosen to garble
#: JSON structure (flips bits in printable range) deterministically.
CORRUPT_XOR_MASK = 0x5A

# Mirrors the binary wire header in ``repro.serve.protocol2`` (kept
# local so the fault layer never imports the serve package it is
# injected into).  First byte of every codec-2 frame is the magic;
# a JSON frame starts with its length prefix's high byte, which the
# 1 MiB frame cap keeps at zero — so the magic doubles as a codec
# discriminator on raw frame bytes.
_BINARY_MAGIC = 0xB2
_BINARY_HEADER_SIZE = 8

#: Bytes of ``0xFF`` stamped into a binary body: ten continuation
#: bytes overflow the varint limit no matter where the first field
#: read lands, so two extra cover a leading fixed-width byte or two.
_BINARY_STAMP = 12


class FaultInjector:
    """Hands out each scheduled fault exactly once.

    A ``None`` schedule builds a permanently-quiet injector, so the
    hot paths can hold one unconditionally and stay branch-cheap.
    """

    def __init__(
        self,
        schedule: Optional[FaultSchedule] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self._pending: Dict[Tuple[int, int, str], FaultEvent] = (
            {event.key: event for event in schedule.events}
            if schedule is not None
            else {}
        )
        #: Events handed out, in hand-out order: the fault timeline.
        self.injected: List[FaultEvent] = []
        self._counts: Dict[str, int] = {}
        self._family: Optional[MetricFamily] = None
        if registry is not None:
            self._family = registry.counter_family(
                "repro_faults_injected_total",
                "Scheduled faults injected, by kind",
                ("kind",),
            )

    @property
    def enabled(self) -> bool:
        """True while any scheduled event has not fired yet."""
        return bool(self._pending)

    @property
    def counts(self) -> Dict[str, int]:
        """Injected-event counts by kind (insertion-ordered)."""
        return dict(self._counts)

    def timeline(self) -> Tuple[Tuple[int, int, str], ...]:
        """The injected events' keys, in hand-out order."""
        return tuple(event.key for event in self.injected)

    def _fire(self, event: FaultEvent) -> FaultEvent:
        del self._pending[event.key]
        self.injected.append(event)
        self._counts[event.kind] = self._counts.get(event.kind, 0) + 1
        if self._family is not None:
            self._family.counter_child(kind=event.kind).inc()
        return event

    def take(self, slot: int, seat: int, kind: str) -> Optional[FaultEvent]:
        """Fire the ``(slot, seat, kind)`` event if it is scheduled."""
        if kind not in FAULT_KINDS:
            raise ConfigurationError(f"unknown fault kind {kind!r}")
        event = self._pending.get((slot, seat, kind))
        return self._fire(event) if event is not None else None

    def take_kind(self, slot: int, kind: str) -> List[FaultEvent]:
        """Fire every event of one kind at ``slot``, seat-ordered."""
        if kind not in FAULT_KINDS:
            raise ConfigurationError(f"unknown fault kind {kind!r}")
        keys = sorted(
            key for key in self._pending
            if key[0] == slot and key[2] == kind
        )
        return [self._fire(self._pending[key]) for key in keys]


def corrupt_frame_bytes(frame: bytes) -> bytes:
    """Damage a frame's body; the header/length framing stays intact.

    The result is a frame the receiving codec *reads* completely
    (framing is preserved) but cannot decode — the case the server's
    corrupt-frame quarantine must absorb without killing the session.

    JSON frames get one byte mid-body bit-flipped, which reliably
    breaks JSON structure.  Binary (codec 2) frames carry no checksum,
    so a single flipped bit can decode as a structurally valid —
    merely wrong — value; those get an overlong-varint stamp at the
    start of the body instead, which the decoder is contractually
    required to quarantine wherever its first field read lands.
    """
    if len(frame) <= _LENGTH_PREFIX.size:
        raise ConfigurationError(
            f"cannot corrupt a {len(frame)}-byte frame (no body)"
        )
    mangled = bytearray(frame)
    if frame[0] == _BINARY_MAGIC:
        body_len = len(frame) - _BINARY_HEADER_SIZE
        if body_len <= 0:
            raise ConfigurationError(
                f"cannot corrupt a {len(frame)}-byte binary frame (no body)"
            )
        end = _BINARY_HEADER_SIZE + min(body_len, _BINARY_STAMP)
        for position in range(_BINARY_HEADER_SIZE, end):
            mangled[position] = 0xFF
        return bytes(mangled)
    body_len = len(frame) - _LENGTH_PREFIX.size
    position = _LENGTH_PREFIX.size + body_len // 2
    mangled[position] ^= CORRUPT_XOR_MASK
    return bytes(mangled)


def truncate_frame_bytes(frame: bytes) -> bytes:
    """Cut a frame short mid-body (length prefix promises more).

    The receiver blocks on the missing bytes until the injecting side
    closes the connection, then surfaces a mid-frame transport error —
    the garbled-wire shape the reconnect machinery must recover from.
    """
    if len(frame) <= _LENGTH_PREFIX.size + 1:
        raise ConfigurationError(
            f"cannot truncate a {len(frame)}-byte frame (no body)"
        )
    body_len = len(frame) - _LENGTH_PREFIX.size
    return frame[: _LENGTH_PREFIX.size + max(1, body_len // 2)]
