"""The ``repro faults`` command family: fault-script tooling.

* ``repro faults generate`` — draw a seeded schedule and write the
  JSON script (the reproducible way to make a chaos scenario);
* ``repro faults show FILE`` — validate a script and print its
  timeline as a table.

Exit codes follow the house contract: ``0`` success, ``1`` the script
exists but is invalid, ``2`` usage error (unreadable file, bad flags).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Dict, Optional, TextIO

from repro.errors import ConfigurationError
from repro.faults.schedule import (
    CLIENT_KINDS,
    FaultSchedule,
    SERVER_KINDS,
    SHARD_KINDS,
)

EXIT_OK = 0
EXIT_INVALID = 1
EXIT_USAGE = 2


def add_faults_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``faults`` subcommands to a (sub)parser."""
    sub = parser.add_subparsers(dest="faults_command", required=True)

    generate = sub.add_parser(
        "generate", help="draw a seeded fault schedule and write the script"
    )
    generate.add_argument("--out", required=True,
                          help="path for the JSON fault script")
    generate.add_argument("--slots", type=int, default=100,
                          help="schedule horizon in slots (default: 100)")
    generate.add_argument("--seats", type=int, default=8,
                          help="seats faults may target (default: 8)")
    generate.add_argument("--rate", type=float, default=0.002,
                          help="per-(slot, seat) firing probability applied "
                               "to every selected kind (default: 0.002)")
    generate.add_argument("--kinds",
                          default=",".join(SERVER_KINDS + CLIENT_KINDS),
                          help="comma-separated fault kinds to draw "
                               "(default: all seat-level kinds; shard-level "
                               "kinds need --shards)")
    generate.add_argument("--duration-ms", type=float, default=50.0,
                          help="duration for timed kinds (default: 50 ms)")
    generate.add_argument("--min-slot", type=int, default=1,
                          help="first slot faults may fire at (default: 1)")
    generate.add_argument("--shards", type=int, default=0,
                          help="shards the shard-level kinds "
                               f"({', '.join(SHARD_KINDS)}) may target "
                               "(default: 0 = shard kinds disabled)")

    show = sub.add_parser(
        "show", help="validate a fault script and print its timeline"
    )
    show.add_argument("script", help="JSON fault script to inspect")


def run_faults_command(
    args: argparse.Namespace,
    stdout: Optional[TextIO] = None,
    stderr: Optional[TextIO] = None,
) -> int:
    """Execute ``repro faults <subcommand>`` from parsed arguments."""
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    try:
        if args.faults_command == "generate":
            return _cmd_generate(args, out, err)
        return _cmd_show(args, out, err)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.  Point
        # stdout at devnull so the interpreter's exit-time flush of the
        # dead pipe cannot raise again.
        if out is sys.stdout:
            devnull = os.open(os.devnull, os.O_WRONLY)
            os.dup2(devnull, sys.stdout.fileno())
        return EXIT_OK


def _cmd_generate(
    args: argparse.Namespace, out: TextIO, err: TextIO
) -> int:
    kinds = [k for k in args.kinds.split(",") if k]
    try:
        rates: Dict[str, float] = {kind: args.rate for kind in kinds}
        schedule = FaultSchedule.random(
            seed=args.seed,
            num_slots=args.slots,
            num_seats=args.seats,
            rates=rates,
            duration_s=args.duration_ms / 1e3,
            min_slot=args.min_slot,
            num_shards=args.shards,
        )
        path = schedule.save(args.out)
    except ConfigurationError as exc:
        print(f"faults generate failed: {exc}", file=err)
        return EXIT_USAGE
    except OSError as exc:
        print(f"cannot write {args.out}: {exc}", file=err)
        return EXIT_USAGE
    counts = ", ".join(
        f"{kind}={count}" for kind, count in sorted(
            schedule.counts_by_kind().items()
        )
    ) or "none"
    print(
        f"wrote {path}: {len(schedule)} event(s) over {args.slots} slot(s) "
        f"x {args.seats} seat(s) [{counts}]",
        file=out,
    )
    return EXIT_OK


def _cmd_show(args: argparse.Namespace, out: TextIO, err: TextIO) -> int:
    if not Path(args.script).is_file():
        print(f"no such fault script: {args.script}", file=err)
        return EXIT_USAGE
    try:
        schedule = FaultSchedule.load(args.script)
    except ConfigurationError as exc:
        print(f"invalid fault script: {exc}", file=err)
        return EXIT_INVALID
    print(
        f"{args.script}: {len(schedule)} event(s), "
        f"last slot {schedule.max_slot()}",
        file=out,
    )
    for event in schedule.events:
        if event.kind in SERVER_KINDS:
            side, target = "server", "seat"
        elif event.kind in SHARD_KINDS:
            side, target = "shard", "shard"
        else:
            side, target = "client", "seat"
        timed = (
            f" duration={event.duration_s * 1e3:.1f}ms"
            if event.duration_s > 0
            else ""
        )
        print(
            f"  slot {event.slot:>5}  {target} {event.seat:>3}  "
            f"{event.kind:<15} [{side}]{timed}",
            file=out,
        )
    return EXIT_OK
