"""Equirectangular projection and field-of-view geometry.

The paper projects each panoramic scene into a rectangular texture
using the equirectangular method and splits it into tiles (Fig. 5).
For scheduling purposes we need the *angular* geometry: which portion
of the panorama a user's field of view (FoV) occupies, how much a
safety margin enlarges it, and what fraction of the sphere it covers
(Section II quotes ~20%).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError


def wrap_angle_deg(angle: float) -> float:
    """Wrap an angle in degrees into ``[-180, 180)``."""
    wrapped = (angle + 180.0) % 360.0 - 180.0
    return wrapped


def angular_difference_deg(a: float, b: float) -> float:
    """Smallest absolute difference between two angles in degrees."""
    return abs(wrap_angle_deg(a - b))


@dataclass(frozen=True)
class FieldOfView:
    """A rectangular (in angle space) field of view.

    Parameters
    ----------
    horizontal_deg:
        Horizontal extent (yaw span) in degrees.
    vertical_deg:
        Vertical extent (pitch span) in degrees.

    The default 90 x 90 degrees covers ~18% of the sphere, matching
    the paper's "about 20% of the panoramic view".
    """

    horizontal_deg: float = 90.0
    vertical_deg: float = 90.0

    def __post_init__(self) -> None:
        if not 0 < self.horizontal_deg <= 360:
            raise ConfigurationError(
                f"horizontal_deg must be in (0, 360], got {self.horizontal_deg}"
            )
        if not 0 < self.vertical_deg <= 180:
            raise ConfigurationError(
                f"vertical_deg must be in (0, 180], got {self.vertical_deg}"
            )

    def with_margin(self, margin_deg: float) -> "FieldOfView":
        """Enlarge the FoV by ``margin_deg`` on every side.

        This is the fixed margin of Section II used to absorb head
        orientation prediction error.
        """
        if margin_deg < 0:
            raise ConfigurationError(f"margin must be non-negative, got {margin_deg}")
        return FieldOfView(
            min(self.horizontal_deg + 2 * margin_deg, 360.0),
            min(self.vertical_deg + 2 * margin_deg, 180.0),
        )

    def yaw_range(self, yaw_deg: float) -> Tuple[float, float]:
        """(lo, hi) yaw bounds around a center; may straddle +-180."""
        half = self.horizontal_deg / 2.0
        return (yaw_deg - half, yaw_deg + half)

    def pitch_range(self, pitch_deg: float) -> Tuple[float, float]:
        """(lo, hi) pitch bounds around a center, clamped to the poles."""
        half = self.vertical_deg / 2.0
        return (max(pitch_deg - half, -90.0), min(pitch_deg + half, 90.0))

    def contains(self, yaw_deg: float, pitch_deg: float, center_yaw: float, center_pitch: float) -> bool:
        """True when a direction falls inside the FoV at a given center."""
        if angular_difference_deg(yaw_deg, center_yaw) > self.horizontal_deg / 2.0:
            return False
        return abs(pitch_deg - center_pitch) <= self.vertical_deg / 2.0


def fov_solid_angle_fraction(fov: FieldOfView) -> float:
    """Fraction of the full sphere subtended by the FoV.

    For a yaw span ``H`` and pitch span ``V`` centred on the equator,
    the solid angle is ``H_rad * 2 * sin(V/2)``; dividing by ``4 pi``
    gives the fraction.  The default 90 x 90 FoV yields ~0.177,
    consistent with the paper's 20% figure.
    """
    h_rad = math.radians(fov.horizontal_deg)
    v_half_rad = math.radians(fov.vertical_deg / 2.0)
    return h_rad * 2.0 * math.sin(v_half_rad) / (4.0 * math.pi)


@dataclass(frozen=True)
class EquirectangularProjection:
    """Mapping between view directions and texture coordinates.

    The panorama texture spans yaw in ``[-180, 180)`` left-to-right
    and pitch in ``[90, -90]`` top-to-bottom, the standard
    equirectangular layout.  ``width``/``height`` default to the
    paper's Quad HD render target (Section VI).
    """

    width: int = 2560
    height: int = 1440

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ConfigurationError(
                f"projection dimensions must be positive, got {self.width}x{self.height}"
            )

    def to_uv(self, yaw_deg: float, pitch_deg: float) -> Tuple[float, float]:
        """Map a direction to normalized texture coordinates in [0, 1)."""
        if not -90.0 <= pitch_deg <= 90.0:
            raise ConfigurationError(f"pitch must be in [-90, 90], got {pitch_deg}")
        u = (wrap_angle_deg(yaw_deg) + 180.0) / 360.0
        v = (90.0 - pitch_deg) / 180.0
        return (u % 1.0, min(v, 1.0 - 1e-12))

    def to_pixel(self, yaw_deg: float, pitch_deg: float) -> Tuple[int, int]:
        """Map a direction to integer pixel coordinates."""
        u, v = self.to_uv(yaw_deg, pitch_deg)
        return (int(u * self.width), int(v * self.height))

    def to_direction(self, u: float, v: float) -> Tuple[float, float]:
        """Inverse mapping from normalized coordinates to (yaw, pitch)."""
        if not (0.0 <= u < 1.0 and 0.0 <= v <= 1.0):
            raise ConfigurationError(f"(u, v) must lie in [0,1)x[0,1], got ({u}, {v})")
        yaw = u * 360.0 - 180.0
        pitch = 90.0 - v * 180.0
        return (yaw, pitch)
