"""Content substrate: tiles, projection, and the size-vs-quality model.

The paper prepares its content offline: a Unity scene is rendered into
equirectangular panoramas on a 5 cm grid of viewpoints, each panorama
is split into four tiles (Fig. 5), and every tile is encoded by FFmpeg
at six CRF values (Section VI).  This subpackage reproduces that
pipeline parametrically — the actual pixels are irrelevant to the
scheduling problem; what matters is the *geometry* (which tiles a
field of view touches) and the *rate curve* (how tile size grows with
quality, Fig. 1a), both of which are modelled here.
"""

from repro.content.crf import (
    CRF_BITRATE_DOUBLING,
    crf_to_level,
    level_to_crf,
    quality_levels,
)
from repro.content.rate import QualityRateCurve, RateModel
from repro.content.projection import (
    EquirectangularProjection,
    FieldOfView,
    fov_solid_angle_fraction,
    wrap_angle_deg,
)
from repro.content.tiles import GridWorld, TileGrid, TileKey, VideoId
from repro.content.database import ClientTileCache, ServerTileCache, TileDatabase
from repro.content.gop import GopModel

__all__ = [
    "CRF_BITRATE_DOUBLING",
    "crf_to_level",
    "level_to_crf",
    "quality_levels",
    "QualityRateCurve",
    "RateModel",
    "EquirectangularProjection",
    "FieldOfView",
    "fov_solid_angle_fraction",
    "wrap_angle_deg",
    "TileGrid",
    "GridWorld",
    "TileKey",
    "VideoId",
    "TileDatabase",
    "ServerTileCache",
    "ClientTileCache",
    "GopModel",
]
