"""Tile database index and the server-side cache window.

Section V: "we have rendered all possible tiles of the scene in Unity
before the transmission ... the server will hold a buffer in the
memory during the runtime to cache some of the tiles ... the server
only needs to cache the tiles within a range of the user's current
position and dynamically adjust the cached content".

:class:`TileDatabase` is the offline index: it knows the size of every
(cell, tile, level) and the total footprint (the paper quotes 171 GB
for the Office scene).  :class:`ServerTileCache` is the runtime memory
window that tracks hits/misses as users move.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.content.rate import RateModel
from repro.content.tiles import GridWorld, TileGrid, TileKey, VideoId
from repro.errors import ConfigurationError
from repro.units import SLOT_DURATION_S


@dataclass
class TileDatabase:
    """Offline index of every encoded tile in the scene.

    Tile sizes derive from the :class:`RateModel`, whose curve is
    calibrated to the *delivered tile set* (what Fig. 1a plots and
    what the 36 Mbps-per-user budget rule of Section IV refers to):
    one tile costs ``curve(level) / typical_tiles_delivered``.  With the
    default 2x2 grid and a 120-degree delivery FoV the request usually
    overlaps all 4 tiles, so ``typical_tiles_delivered = 4`` makes the
    nominal rate curve the allocator reasons with, while the actual
    per-slot demand fluctuates with the real overlap count.
    """

    world: GridWorld
    grid: TileGrid = field(default_factory=TileGrid)
    rate_model: RateModel = field(default_factory=RateModel)
    typical_tiles_delivered: float = 4.0

    def __post_init__(self) -> None:
        if self.typical_tiles_delivered <= 0:
            raise ConfigurationError(
                "typical_tiles_delivered must be positive, got "
                f"{self.typical_tiles_delivered}"
            )

    @property
    def num_levels(self) -> int:
        return self.rate_model.num_levels

    def tile_rate_mbps(self, key: TileKey) -> float:
        """Mbps-equivalent delivery rate of one tile for one slot."""
        if not 0 <= key.tile_index < self.grid.num_tiles:
            raise ConfigurationError(
                f"tile_index must be in 0..{self.grid.num_tiles - 1}, got {key.tile_index}"
            )
        curve = self.rate_model.curve(key.cell_id)
        return curve.size(key.level) / self.typical_tiles_delivered

    def tile_size_bits(self, key: TileKey, slot_s: float = SLOT_DURATION_S) -> float:
        """Stored size of one tile in bits."""
        return self.tile_rate_mbps(key) * 1e6 * slot_s

    def tiles_for(
        self, cell_id: int, tile_indices: Iterable[int], level: int
    ) -> List[TileKey]:
        """Tile keys for a set of tile indices at one cell and level."""
        return [TileKey(cell_id, idx, level) for idx in sorted(set(tile_indices))]

    def total_footprint_gb(self, slot_s: float = SLOT_DURATION_S) -> float:
        """Total database size across all cells, tiles, and levels."""
        total_bits = 0.0
        per_tile_factor = self.grid.num_tiles / self.typical_tiles_delivered
        for cell in range(self.world.num_cells):
            curve = self.rate_model.curve(cell)
            for level in range(1, self.num_levels + 1):
                total_bits += curve.size(level) * per_tile_factor * 1e6 * slot_s
        return total_bits / 8.0 / 1e9

    def video_ids_for(
        self, cell_id: int, tile_indices: Iterable[int], level: int
    ) -> List[int]:
        """Encoded video ids for a tile request (the wire format)."""
        return VideoId.encode_many(self.tiles_for(cell_id, tile_indices, level))


class ServerTileCache:
    """Runtime memory window over the database, per user.

    The cache admits every tile of every cell within ``radius_cells``
    of the user's current cell.  Moving shifts the window: cells that
    fall out are evicted, new cells are loaded (counted as misses, the
    "swapping overhead" the paper's buffer avoids during steady state).
    """

    def __init__(self, database: TileDatabase, radius_cells: int = 10) -> None:
        if radius_cells < 0:
            raise ConfigurationError(
                f"radius_cells must be non-negative, got {radius_cells}"
            )
        self._db = database
        self._radius = radius_cells
        self._window: Set[int] = set()
        self._center: int = -1
        self.hits: int = 0
        self.misses: int = 0

    @property
    def center_cell(self) -> int:
        return self._center

    @property
    def cached_cells(self) -> Set[int]:
        return set(self._window)

    def move_to(self, cell_id: int) -> Tuple[int, int]:
        """Re-centre the window on a new cell.

        Returns ``(loaded, evicted)`` cell counts for instrumentation.
        """
        new_window = set(self._db.world.cells_within(cell_id, self._radius))
        loaded = len(new_window - self._window)
        evicted = len(self._window - new_window)
        self._window = new_window
        self._center = cell_id
        return loaded, evicted

    def lookup(self, cell_id: int) -> bool:
        """True (hit) when a cell's tiles are resident in memory."""
        if cell_id in self._window:
            self.hits += 1
            return True
        self.misses += 1
        return False

    def hit_ratio(self) -> float:
        """Fraction of lookups served from memory (0 when none yet)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ClientTileCache:
    """Client-side received-tile store with threshold eviction.

    Section V ("Handling repetitive tiles"): the user holds received
    tiles in RAM up to a device-specific threshold; when full, the
    *oldest* tiles are released and release-ACKs are emitted so the
    server knows it must retransmit them if requested again.
    """

    def __init__(self, capacity_tiles: int) -> None:
        if capacity_tiles < 1:
            raise ConfigurationError(
                f"capacity must be at least one tile, got {capacity_tiles}"
            )
        self._capacity = capacity_tiles
        self._tiles: "OrderedDict[int, None]" = OrderedDict()

    def __contains__(self, video_id: int) -> bool:
        return video_id in self._tiles

    def __len__(self) -> int:
        return len(self._tiles)

    @property
    def capacity(self) -> int:
        return self._capacity

    def insert(self, video_id: int) -> List[int]:
        """Store a tile; returns the video ids released to make room."""
        released: List[int] = []
        if video_id in self._tiles:
            self._tiles.move_to_end(video_id)
            return released
        self._tiles[video_id] = None
        while len(self._tiles) > self._capacity:
            old_id, _ = self._tiles.popitem(last=False)
            released.append(old_id)
        return released

    def release_all(self) -> List[int]:
        """Drop everything (e.g., scene change); returns released ids."""
        released = list(self._tiles.keys())
        self._tiles.clear()
        return released
