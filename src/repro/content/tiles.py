"""Tile partitioning, the viewpoint grid world, and video ids.

Section V-VI of the paper: the panorama at every viewpoint of a 5 cm
grid is split into four tiles, and "all the tiles will be indexed by a
video ID corresponding to their position, tile ID, and quality", so
that runtime communication only exchanges compact integer ids.  This
module reproduces the grid world, the tile partition (Fig. 5), the
FoV-to-tile overlap query, and the video-id codec.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Set, Tuple

import numpy as np
from numpy.typing import ArrayLike

from repro.content.projection import FieldOfView, wrap_angle_deg
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TileGrid:
    """Partition of an equirectangular panorama into a tile grid.

    The paper splits each texture into four tiles (Fig. 5); the default
    2 x 2 grid matches that.  Tiles are indexed row-major: tile 0 is
    the top-left (westmost yaw, highest pitch).
    """

    cols: int = 2
    rows: int = 2

    def __post_init__(self) -> None:
        if self.cols < 1 or self.rows < 1:
            raise ConfigurationError(
                f"tile grid must be at least 1x1, got {self.cols}x{self.rows}"
            )

    @property
    def num_tiles(self) -> int:
        return self.cols * self.rows

    def tile_of(self, yaw_deg: float, pitch_deg: float) -> int:
        """Tile index containing a view direction."""
        u = (wrap_angle_deg(yaw_deg) + 180.0) / 360.0
        v = (90.0 - pitch_deg) / 180.0
        col = min(int(u * self.cols), self.cols - 1)
        row = min(int(v * self.rows), self.rows - 1)
        return row * self.cols + col

    def _col_range(self, yaw_lo: float, yaw_hi: float) -> Set[int]:
        """Columns overlapped by a yaw interval (handles wraparound)."""
        span = yaw_hi - yaw_lo
        if span >= 360.0 - 1e-9:
            return set(range(self.cols))
        cols: Set[int] = set()
        # March across the interval in steps finer than one column so
        # no overlapped column is skipped; cheap because cols is tiny
        # (2 in the paper).
        steps = max(4 * self.cols, 8)
        for i in range(steps + 1):
            yaw = yaw_lo + span * i / steps
            u = (wrap_angle_deg(yaw) + 180.0) / 360.0
            cols.add(min(int(u * self.cols), self.cols - 1))
        return cols

    def row_of(self, pitch_deg: float) -> int:
        """Row index containing a pitch angle."""
        return min(int((90.0 - pitch_deg) / 180.0 * self.rows), self.rows - 1)

    def tiles_overlapping(
        self,
        center_yaw_deg: float,
        center_pitch_deg: float,
        fov: FieldOfView,
    ) -> FrozenSet[int]:
        """Tiles overlapped by a FoV centred at the given direction.

        The paper transmits "all tiles that overlap with this margin"
        (Section V); this is the overlap query it relies on.
        """
        yaw_lo, yaw_hi = fov.yaw_range(center_yaw_deg)
        pitch_lo, pitch_hi = fov.pitch_range(center_pitch_deg)
        cols = self._col_range(yaw_lo, yaw_hi)
        rows = set(range(self.row_of(pitch_hi), self.row_of(pitch_lo) + 1))
        return frozenset(r * self.cols + c for r in rows for c in cols)


@dataclass(frozen=True)
class GridWorld:
    """The 5 cm viewpoint grid of the offline-rendered scene.

    Continuous positions (metres) map to integer cells; each cell has
    a pre-rendered panorama in the tile database.
    """

    x_min: float = 0.0
    x_max: float = 10.0
    y_min: float = 0.0
    y_max: float = 10.0
    cell_size: float = 0.05

    def __post_init__(self) -> None:
        if self.cell_size <= 0:
            raise ConfigurationError(f"cell_size must be positive, got {self.cell_size}")
        if self.x_max <= self.x_min or self.y_max <= self.y_min:
            raise ConfigurationError("grid world bounds must be non-degenerate")

    @property
    def cols(self) -> int:
        return int(math.ceil((self.x_max - self.x_min) / self.cell_size))

    @property
    def rows(self) -> int:
        return int(math.ceil((self.y_max - self.y_min) / self.cell_size))

    @property
    def num_cells(self) -> int:
        return self.cols * self.rows

    def clamp(self, x: float, y: float) -> Tuple[float, float]:
        """Clamp a position into the world bounds."""
        eps = 1e-9
        return (
            min(max(x, self.x_min), self.x_max - eps),
            min(max(y, self.y_min), self.y_max - eps),
        )

    def cell_of(self, x: float, y: float) -> int:
        """Integer cell id of a continuous position."""
        x, y = self.clamp(x, y)
        col = int((x - self.x_min) / self.cell_size)
        row = int((y - self.y_min) / self.cell_size)
        col = min(col, self.cols - 1)
        row = min(row, self.rows - 1)
        return row * self.cols + col

    def cells_of(self, xs: ArrayLike, ys: ArrayLike) -> np.ndarray:
        """Vectorized :meth:`cell_of` over position arrays.

        Accepts array-likes of equal shape and returns an integer
        array of cell ids; replicates the scalar clamp/truncate
        arithmetic exactly, so ``cells_of(xs, ys)[i] ==
        cell_of(xs[i], ys[i])`` bit-for-bit.
        """
        eps = 1e-9
        x = np.minimum(np.maximum(np.asarray(xs, dtype=float), self.x_min), self.x_max - eps)
        y = np.minimum(np.maximum(np.asarray(ys, dtype=float), self.y_min), self.y_max - eps)
        col = np.minimum(((x - self.x_min) / self.cell_size).astype(int), self.cols - 1)
        row = np.minimum(((y - self.y_min) / self.cell_size).astype(int), self.rows - 1)
        return row * self.cols + col

    def cell_center(self, cell_id: int) -> Tuple[float, float]:
        """Continuous centre position of a cell."""
        if not 0 <= cell_id < self.num_cells:
            raise ConfigurationError(
                f"cell_id must be in 0..{self.num_cells - 1}, got {cell_id}"
            )
        row, col = divmod(cell_id, self.cols)
        return (
            self.x_min + (col + 0.5) * self.cell_size,
            self.y_min + (row + 0.5) * self.cell_size,
        )

    def cells_within(self, cell_id: int, radius_cells: int) -> List[int]:
        """Cells within a Chebyshev radius — the server's cache window.

        Section V: "the server only needs to cache the tiles within a
        range of the user's current position".
        """
        if radius_cells < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius_cells}")
        row, col = divmod(cell_id, self.cols)
        cells = []
        for r in range(max(0, row - radius_cells), min(self.rows, row + radius_cells + 1)):
            for c in range(max(0, col - radius_cells), min(self.cols, col + radius_cells + 1)):
                cells.append(r * self.cols + c)
        return cells


#: Bit widths of the video-id codec fields.
_LEVEL_BITS = 4
_TILE_BITS = 4


@dataclass(frozen=True)
class TileKey:
    """(viewpoint cell, tile index, quality level) — one encoded tile."""

    cell_id: int
    tile_index: int
    level: int

    def __post_init__(self) -> None:
        if self.cell_id < 0:
            raise ConfigurationError(f"cell_id must be non-negative, got {self.cell_id}")
        if not 0 <= self.tile_index < (1 << _TILE_BITS):
            raise ConfigurationError(f"tile_index out of range: {self.tile_index}")
        if not 1 <= self.level < (1 << _LEVEL_BITS):
            raise ConfigurationError(f"level out of range: {self.level}")


class VideoId:
    """Compact integer codec for :class:`TileKey`.

    The paper indexes tiles "by a video ID corresponding to their
    position, tile ID, and quality" so only ids travel on the wire.
    """

    @staticmethod
    def encode(key: TileKey) -> int:
        return (
            (key.cell_id << (_TILE_BITS + _LEVEL_BITS))
            | (key.tile_index << _LEVEL_BITS)
            | key.level
        )

    @staticmethod
    def decode(video_id: int) -> TileKey:
        if video_id < 0:
            raise ConfigurationError(f"video id must be non-negative, got {video_id}")
        level = video_id & ((1 << _LEVEL_BITS) - 1)
        tile_index = (video_id >> _LEVEL_BITS) & ((1 << _TILE_BITS) - 1)
        cell_id = video_id >> (_TILE_BITS + _LEVEL_BITS)
        return TileKey(cell_id, tile_index, level)

    @staticmethod
    def encode_many(keys: Iterable[TileKey]) -> List[int]:
        return [VideoId.encode(k) for k in keys]
