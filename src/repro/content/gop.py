"""Group-of-pictures (GoP) frame-size burstiness.

The paper encodes tiles with FFmpeg at fixed CRF values; a CRF stream
is not constant-bitrate per frame — intra (I) frames are several times
larger than predicted (P) frames, repeating every GoP.  The rate
curve ``f_c^R(q)`` the scheduler plans with is the *average* rate; the
wire sees the bursty per-frame sizes.  This module models that
burstiness so the emulation can charge per-slot tile sizes that
average to the curve while spiking on I-frames.

The model is disabled by default (``gop_length = 0`` reproduces the
paper's constant-size abstraction) and enabled per experiment for the
burstiness ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class GopModel:
    """Deterministic per-slot frame-size multipliers.

    Parameters
    ----------
    gop_length:
        Frames per GoP (one I frame then ``gop_length - 1`` P frames).
        0 disables the model (every multiplier is 1.0).
    i_to_p_ratio:
        Size ratio between an I frame and a P frame (x264 at the
        paper's CRF range typically lands between 3 and 8).
    stagger:
        When True, each stream's GoP phase is offset by its stream id
        so the users' I-frames do not synchronise — what independent
        encoder instances naturally do.
    """

    gop_length: int = 0
    i_to_p_ratio: float = 5.0
    stagger: bool = True

    def __post_init__(self) -> None:
        if self.gop_length < 0:
            raise ConfigurationError(
                f"gop_length must be >= 0, got {self.gop_length}"
            )
        if self.gop_length > 0 and self.i_to_p_ratio < 1.0:
            raise ConfigurationError(
                f"i_to_p_ratio must be >= 1, got {self.i_to_p_ratio}"
            )

    @property
    def enabled(self) -> bool:
        return self.gop_length > 0

    def _p_multiplier(self) -> float:
        """P-frame multiplier such that one GoP averages to 1.0.

        With ``g`` frames per GoP: ``(r + (g - 1)) * p = g`` where
        ``r`` is the I:P ratio and the I multiplier is ``r * p``.
        """
        g = self.gop_length
        return g / (self.i_to_p_ratio + (g - 1))

    def multiplier(self, slot: int, stream_id: int = 0) -> float:
        """Frame-size multiplier for a stream in a slot (mean 1.0)."""
        if slot < 0:
            raise ConfigurationError(f"slot must be >= 0, got {slot}")
        if not self.enabled:
            return 1.0
        phase_offset = (stream_id * 7919) % self.gop_length if self.stagger else 0
        phase = (slot + phase_offset) % self.gop_length
        p = self._p_multiplier()
        return self.i_to_p_ratio * p if phase == 0 else p

    def is_i_frame(self, slot: int, stream_id: int = 0) -> bool:
        """True when the stream emits an intra frame this slot."""
        if not self.enabled:
            return False
        phase_offset = (stream_id * 7919) % self.gop_length if self.stagger else 0
        return (slot + phase_offset) % self.gop_length == 0

    def mean_multiplier(self) -> float:
        """The long-run average multiplier (1.0 by construction)."""
        if not self.enabled:
            return 1.0
        g = self.gop_length
        p = self._p_multiplier()
        return (self.i_to_p_ratio * p + (g - 1) * p) / g
