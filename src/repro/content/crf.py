"""CRF <-> quality-level mapping.

Section VI of the paper encodes every tile at six Constant Rate Factor
values {15, 19, 23, 27, 31, 35} and indexes them with quality levels
{6, 5, 4, 3, 2, 1} respectively: a *lower* CRF means a *higher*
bitrate and a *higher* quality level.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ConfigurationError
from repro.units import CRF_VALUES, DEFAULT_NUM_LEVELS

#: The x264/x265 rule of thumb: bitrate roughly doubles every time CRF
#: decreases by this many points.  With the paper's 4-point CRF steps
#: this yields a per-level size ratio of ``2 ** (4 / 6) ~= 1.587``,
#: which produces the convex, increasing size curve of Fig. 1a.
CRF_BITRATE_DOUBLING: float = 6.0


def quality_levels(num_levels: int = DEFAULT_NUM_LEVELS) -> Tuple[int, ...]:
    """The quality-level set ``Q = {1, ..., L}`` of Section II."""
    if num_levels < 1:
        raise ConfigurationError(f"need at least one quality level, got {num_levels}")
    return tuple(range(1, num_levels + 1))


def level_to_crf(level: int) -> int:
    """Map a quality level in {1..6} to its CRF value.

    Level 6 (best) maps to CRF 15; level 1 (worst) maps to CRF 35.
    """
    if not 1 <= level <= len(CRF_VALUES):
        raise ConfigurationError(
            f"quality level must be in 1..{len(CRF_VALUES)}, got {level}"
        )
    return CRF_VALUES[len(CRF_VALUES) - level]


def crf_to_level(crf: int) -> int:
    """Map a CRF value from the paper's encoding set to a quality level."""
    try:
        index = CRF_VALUES.index(crf)
    except ValueError:
        raise ConfigurationError(
            f"CRF {crf} is not one of the paper's encoding values {CRF_VALUES}"
        ) from None
    return len(CRF_VALUES) - index


def size_ratio_per_level(crf_step: float = 4.0) -> float:
    """Multiplicative size growth from one quality level to the next.

    Derived from :data:`CRF_BITRATE_DOUBLING`; with the paper's
    uniform 4-point CRF steps the ratio is ``2 ** (4 / 6)``.
    """
    if crf_step <= 0:
        raise ConfigurationError(f"crf_step must be positive, got {crf_step}")
    return 2.0 ** (crf_step / CRF_BITRATE_DOUBLING)
