"""The size-vs-quality curve ``f_c^R(q)`` (Fig. 1a of the paper).

The paper measures, for each VR content, the total size of the tiles
covering a field of view at each of the six CRF encodings, and
observes that the curve is **convex and increasing** in the quality
level.  Our parametric stand-in reproduces exactly that structure:

* a geometric growth factor per level derived from the CRF spacing
  (bitrate doubles every ~6 CRF points, levels are 4 points apart),
* a per-content base size drawn deterministically from the content id
  so that different scenes/viewpoints have different curves, and
* a calibration such that a *medium* quality FoV costs about 36 Mbps,
  matching the paper's server-budget rule ``B = 36 * N`` (Section IV).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.content.crf import size_ratio_per_level
from repro.errors import ConfigurationError
from repro.units import (
    DEFAULT_NUM_LEVELS,
    FOV_FRACTION,
    SERVER_MBPS_PER_USER,
    SLOT_DURATION_S,
)


@dataclass(frozen=True)
class QualityRateCurve:
    """An immutable, validated ``f_c^R``: Mbps-equivalent size per level.

    ``sizes[0]`` is the size at quality level 1; ``sizes[L-1]`` at
    level ``L``.  Construction enforces the convex-increasing shape
    the paper measures in Fig. 1a (strictly increasing values with
    non-decreasing increments).
    """

    sizes: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) < 1:
            raise ConfigurationError("a rate curve needs at least one level")
        if self.sizes[0] <= 0:
            raise ConfigurationError(f"sizes must be positive, got {self.sizes[0]}")
        for a, b in zip(self.sizes, self.sizes[1:]):
            if b <= a:
                raise ConfigurationError(
                    f"f_c^R must be strictly increasing, got {self.sizes}"
                )
        increments = [b - a for a, b in zip(self.sizes, self.sizes[1:])]
        for a, b in zip(increments, increments[1:]):
            if b < a - 1e-9:
                raise ConfigurationError(
                    f"f_c^R must be convex (non-decreasing increments), got {self.sizes}"
                )

    @property
    def num_levels(self) -> int:
        return len(self.sizes)

    def size(self, level: int) -> float:
        """Size (Mbps-equivalent) of the content at quality ``level``.

        ``level`` follows the paper's 1-based convention; level 0 means
        "skip delivery" and costs nothing.
        """
        if level == 0:
            return 0.0
        if not 1 <= level <= self.num_levels:
            raise ConfigurationError(
                f"level must be in 0..{self.num_levels}, got {level}"
            )
        return self.sizes[level - 1]

    def max_level_within(self, rate_budget: float) -> int:
        """Highest level whose size fits in ``rate_budget`` (0 if none)."""
        best = 0
        for level, s in enumerate(self.sizes, start=1):
            if s <= rate_budget + 1e-9:
                best = level
        return best

    def as_tuple(self) -> Tuple[float, ...]:
        return self.sizes


class RateModel:
    """Deterministic factory of per-content rate curves.

    Parameters
    ----------
    num_levels:
        Number of quality levels ``L``.
    medium_level_mbps:
        Calibration target: average of the two middle levels' sizes for
        a nominal content, in Mbps (the paper's 36 Mbps rule).
    content_spread:
        Multiplicative half-range of per-content base variation; a
        spread of 0.2 draws base multipliers in ``[0.8, 1.2]``.
    crf_step:
        CRF spacing between adjacent levels (4 in the paper).
    level_ratio:
        Per-level multiplicative size growth.  ``None`` (default)
        derives it from the CRF spacing via the bitrate-doubling rule
        (~1.59 per level).  Real content varies: complex scenes grow
        slower per CRF step.  The real-system experiments use a
        flatter ~1.25 so that levels 3-5 straddle the 40-60 Mbps
        throttle guidelines, mirroring the paper's non-trivial
        allocation regime.
    seed:
        Seed for the deterministic per-content variation.
    """

    def __init__(
        self,
        num_levels: int = DEFAULT_NUM_LEVELS,
        medium_level_mbps: float = SERVER_MBPS_PER_USER,
        content_spread: float = 0.2,
        crf_step: float = 4.0,
        level_ratio: float = None,
        seed: int = 0,
    ) -> None:
        if num_levels < 1:
            raise ConfigurationError(f"num_levels must be >= 1, got {num_levels}")
        if medium_level_mbps <= 0:
            raise ConfigurationError(
                f"medium_level_mbps must be positive, got {medium_level_mbps}"
            )
        if not 0 <= content_spread < 1:
            raise ConfigurationError(
                f"content_spread must be in [0, 1), got {content_spread}"
            )
        if level_ratio is not None and level_ratio <= 1.0:
            raise ConfigurationError(
                f"level_ratio must exceed 1, got {level_ratio}"
            )
        self.num_levels = num_levels
        self.medium_level_mbps = medium_level_mbps
        self.content_spread = content_spread
        self._ratio = (
            float(level_ratio) if level_ratio is not None else size_ratio_per_level(crf_step)
        )
        self._seed = seed
        growth = [self._ratio ** k for k in range(num_levels)]
        mid_lo = (num_levels - 1) // 2
        mid_hi = num_levels // 2
        mid_growth = 0.5 * (growth[mid_lo] + growth[mid_hi])
        self._base_mbps = medium_level_mbps / mid_growth
        self._growth = tuple(growth)

    @property
    def nominal_base_mbps(self) -> float:
        """Level-1 size for a content with unit multiplier."""
        return self._base_mbps

    def _content_multiplier(self, content_id: int) -> float:
        """Deterministic per-content base multiplier in the spread range."""
        # A content-seeded generator keeps curves reproducible without
        # any global state: the same content id always yields the same
        # curve for a given model seed.
        rng = np.random.default_rng((self._seed, int(content_id)))
        u = float(rng.uniform(-1.0, 1.0))
        return 1.0 + self.content_spread * u

    def curve(self, content_id: int) -> QualityRateCurve:
        """The rate curve of a given content (scene/viewpoint) id."""
        base = self._base_mbps * self._content_multiplier(content_id)
        return QualityRateCurve(tuple(base * g for g in self._growth))

    def curves(self, content_ids: Sequence[int]) -> Tuple[QualityRateCurve, ...]:
        """Rate curves for a batch of content ids."""
        return tuple(self.curve(c) for c in content_ids)

    def tile_curve(self, content_id: int, tiles_delivered: int, tiles_total: int = 4) -> QualityRateCurve:
        """Rate curve for delivering a subset of a panorama's tiles.

        The FoV-with-margin typically overlaps 1-4 of the four tiles
        (Fig. 5); the size scales with the delivered fraction.
        """
        if not 1 <= tiles_delivered <= tiles_total:
            raise ConfigurationError(
                f"tiles_delivered must be in 1..{tiles_total}, got {tiles_delivered}"
            )
        full = self.curve(content_id)
        frac = tiles_delivered / tiles_total
        return QualityRateCurve(tuple(s * frac for s in full.sizes))


def storage_footprint_gb(
    model: RateModel,
    num_cells: int,
    tiles_per_cell: int = 4,
    slot_duration_s: float = SLOT_DURATION_S,
) -> float:
    """Estimate the offline tile-database size, mirroring the paper's 171 GB.

    Every grid cell stores ``tiles_per_cell`` tiles at every quality
    level; a tile's stored size is its Mbps-equivalent rate times the
    slot duration.
    """
    if num_cells < 0:
        raise ConfigurationError(f"num_cells must be non-negative, got {num_cells}")
    if tiles_per_cell < 1:
        raise ConfigurationError(f"tiles_per_cell must be >= 1, got {tiles_per_cell}")
    total_bits = 0.0
    for cell in range(num_cells):
        # model.curve() describes a FoV's worth of tiles; the full
        # panorama stored on disk is ~1/FOV_FRACTION times larger.
        fov_curve = model.curve(cell)
        panorama_bits = sum(
            s / FOV_FRACTION * 1e6 * slot_duration_s for s in fov_curve.sizes
        )
        total_bits += panorama_bits
    return total_bits / 8.0 / 1e9


def is_convex_increasing(sizes: Sequence[float]) -> bool:
    """Check the Fig. 1a property on an arbitrary size sequence."""
    if len(sizes) < 2:
        return True
    if any(b <= a for a, b in zip(sizes, sizes[1:])):
        return False
    inc = [b - a for a, b in zip(sizes, sizes[1:])]
    return all(b >= a - 1e-9 for a, b in zip(inc, inc[1:]))


def delay_slope_check(curve: QualityRateCurve, bandwidth: float) -> bool:
    """True when the composed M/M/1 delay is convex along this curve.

    Convexity of ``d(f(q))`` with convex increasing ``d`` and ``f`` is
    the structural assumption of Section II; this helper lets tests
    confirm it numerically for any generated curve.
    """
    delays = []
    for s in curve.sizes:
        if s >= bandwidth:
            return True  # saturated levels are excluded by the caps
        delays.append(s / (bandwidth - s))
    inc = [b - a for a, b in zip(delays, delays[1:])]
    return all(
        b >= a - 1e-9 for a, b in zip(inc, inc[1:])
    ) and all(d >= 0 for d in inc) and not math.isnan(sum(delays))
