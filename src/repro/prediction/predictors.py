"""Alternative motion predictors.

Section II: "any existing motion prediction model can be applied to
this paper to predict each user's 6-DoF motion".  The evaluated
system uses per-axis linear regression
(:class:`~repro.prediction.motion.LinearMotionPredictor`); this module
adds drop-in alternatives so the sensitivity of the scheduler to
prediction quality can be studied:

* :class:`LastPosePredictor` — the zero-order hold (no prediction);
* :class:`ConstantVelocityPredictor` — first-order extrapolation from
  the last two poses (cheaper than regression, noisier);
* :class:`ExponentialSmoothingPredictor` — double exponential
  smoothing (Holt's method) per axis, an online alternative that
  needs no window.

All predictors implement the same ``observe / predict / reset``
protocol as the linear-regression predictor and are registered in
:data:`PREDICTOR_REGISTRY` for configuration by name.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Protocol

import numpy as np

from repro.content.projection import wrap_angle_deg
from repro.errors import ConfigurationError
from repro.prediction.motion import LinearMotionPredictor
from repro.prediction.pose import Pose

_ANGULAR_AXES = (3, 5)
_PITCH_AXIS = 4


class PosePredictor(Protocol):
    """The ``observe / predict / reset`` protocol every predictor obeys."""

    def observe(self, pose: Pose) -> None:
        """Feed one received pose sample."""

    def predict(self, horizon: Optional[int] = None) -> Optional[Pose]:
        """Pose expected ``horizon`` slots ahead, or ``None`` if cold."""

    def reset(self) -> None:
        """Forget all observed history."""


def _finalize(vector: np.ndarray) -> Pose:
    """Clamp/wrap a predicted 6-DoF vector into a valid pose."""
    vector = np.array(vector, dtype=float)
    vector[_PITCH_AXIS] = min(max(vector[_PITCH_AXIS], -90.0), 90.0)
    for axis in _ANGULAR_AXES:
        vector[axis] = wrap_angle_deg(vector[axis])
    return Pose.from_vector(vector)


def _angle_delta(current: float, previous: float) -> float:
    """Shortest signed angular step in degrees."""
    return wrap_angle_deg(current - previous)


class LastPosePredictor:
    """Zero-order hold: predict the last observed pose.

    The weakest baseline — equivalent to no motion prediction, i.e.
    the margin alone must absorb all motion between the pose upload
    and display.
    """

    def __init__(self, horizon: int = 1) -> None:
        if horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
        self.horizon = horizon
        self._last: Optional[Pose] = None

    def observe(self, pose: Pose) -> None:
        self._last = pose

    def predict(self, horizon: Optional[int] = None) -> Optional[Pose]:
        del horizon
        return self._last

    def reset(self) -> None:
        self._last = None


class ConstantVelocityPredictor:
    """First-order extrapolation from the last two poses."""

    def __init__(self, horizon: int = 1) -> None:
        if horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
        self.horizon = horizon
        self._previous: Optional[Pose] = None
        self._last: Optional[Pose] = None

    def observe(self, pose: Pose) -> None:
        self._previous = self._last
        self._last = pose

    def predict(self, horizon: Optional[int] = None) -> Optional[Pose]:
        if self._last is None:
            return None
        h = self.horizon if horizon is None else horizon
        if h < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {h}")
        if self._previous is None:
            return self._last
        last = np.array(self._last.as_vector())
        prev = np.array(self._previous.as_vector())
        velocity = last - prev
        for axis in _ANGULAR_AXES:
            velocity[axis] = _angle_delta(last[axis], prev[axis])
        return _finalize(last + h * velocity)

    def reset(self) -> None:
        self._previous = None
        self._last = None


class ExponentialSmoothingPredictor:
    """Holt's double exponential smoothing per axis.

    Maintains a smoothed level and trend per DoF axis; prediction is
    ``level + horizon * trend``.  Compared to windowed regression it
    adapts continuously and needs O(1) state.
    """

    def __init__(
        self,
        horizon: int = 1,
        level_alpha: float = 0.5,
        trend_beta: float = 0.3,
    ) -> None:
        if horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
        if not 0 < level_alpha <= 1:
            raise ConfigurationError(
                f"level_alpha must be in (0, 1], got {level_alpha}"
            )
        if not 0 < trend_beta <= 1:
            raise ConfigurationError(
                f"trend_beta must be in (0, 1], got {trend_beta}"
            )
        self.horizon = horizon
        self.level_alpha = level_alpha
        self.trend_beta = trend_beta
        self._level: Optional[np.ndarray] = None
        self._trend: Optional[np.ndarray] = None
        self._last_raw: Optional[np.ndarray] = None

    def observe(self, pose: Pose) -> None:
        raw = np.array(pose.as_vector(), dtype=float)
        if self._level is None:
            self._level = raw.copy()
            self._trend = np.zeros(6)
            self._last_raw = raw
            return
        # Work in unwrapped coordinates for the angular axes.
        adjusted = raw.copy()
        for axis in _ANGULAR_AXES:
            adjusted[axis] = self._level[axis] + _angle_delta(
                raw[axis], self._level[axis]
            )
        previous_level = self._level.copy()
        self._level = (
            self.level_alpha * adjusted
            + (1 - self.level_alpha) * (self._level + self._trend)
        )
        self._trend = (
            self.trend_beta * (self._level - previous_level)
            + (1 - self.trend_beta) * self._trend
        )
        self._last_raw = raw

    def predict(self, horizon: Optional[int] = None) -> Optional[Pose]:
        if self._level is None:
            return None
        h = self.horizon if horizon is None else horizon
        if h < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {h}")
        return _finalize(self._level + h * self._trend)

    def reset(self) -> None:
        self._level = None
        self._trend = None
        self._last_raw = None


#: Predictor factories by name, each accepting a ``horizon`` kwarg.
PREDICTOR_REGISTRY: Dict[str, Callable[..., PosePredictor]] = {
    "linear-regression": LinearMotionPredictor,
    "last-pose": LastPosePredictor,
    "constant-velocity": ConstantVelocityPredictor,
    "exponential-smoothing": ExponentialSmoothingPredictor,
}


def make_predictor(name: str, horizon: int = 1, **kwargs: object) -> PosePredictor:
    """Instantiate a registered predictor by name."""
    try:
        factory = PREDICTOR_REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown predictor {name!r}; available: {sorted(PREDICTOR_REGISTRY)}"
        ) from None
    return factory(horizon=horizon, **kwargs)
