"""Per-axis linear-regression 6-DoF motion prediction.

Section V: "We use linear regression to predict the virtual position
and head orientation in each axis independently, which follows the
methodology in [Firefly]."

A sliding window of the last ``window`` observed poses is kept per
user; each axis is fit with a degree-1 least-squares line over slot
indices and extrapolated ``horizon`` slots ahead.  Angular axes are
unwrapped before fitting so a yaw trajectory crossing the +-180
boundary does not produce a spurious 360-degree jump.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Sequence, Tuple

import numpy as np

from repro.content.projection import wrap_angle_deg
from repro.errors import ConfigurationError
from repro.prediction.pose import Pose

#: Axis indices within Pose.as_vector() that hold wrapping angles.
_ANGULAR_AXES = (3, 5)
#: Axis index of pitch (clamped, not wrapped).
_PITCH_AXIS = 4


def _unwrap_deg(values: np.ndarray) -> np.ndarray:
    """Unwrap a degree series so consecutive steps are < 180 apart."""
    return np.degrees(np.unwrap(np.radians(values)))


class LinearMotionPredictor:
    """Sliding-window linear regression over each DoF axis.

    Parameters
    ----------
    window:
        Number of most recent poses used for the fit.  With fewer than
        two observations the predictor falls back to the last pose
        (or ``None`` before any observation).
    horizon:
        How many slots ahead to extrapolate (the paper predicts the
        next time slot; the t/t+1/t+2 pipeline of Section V needs a
        2-slot horizon on the client display path).
    """

    def __init__(self, window: int = 10, horizon: int = 1) -> None:
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        if horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
        self.window = window
        self.horizon = horizon
        self._history: Deque[Pose] = deque(maxlen=window)

    def observe(self, pose: Pose) -> None:
        """Record the pose measured in the current slot."""
        self._history.append(pose)

    @property
    def num_observations(self) -> int:
        return len(self._history)

    def reset(self) -> None:
        """Forget all history (e.g., after a teleport/scene change)."""
        self._history.clear()

    def export_state(self) -> Tuple[Tuple[float, ...], ...]:
        """The observed pose window as plain vectors (oldest first)."""
        return tuple(tuple(p.as_vector()) for p in self._history)

    def restore_state(self, vectors: Sequence[Sequence[float]]) -> None:
        """Rebuild the pose window from :meth:`export_state` output.

        Replays the vectors through :meth:`observe`, so a restored
        predictor produces bit-identical predictions to the original
        (the session-migration handoff relies on this).
        """
        self._history.clear()
        for vector in vectors:
            self.observe(Pose.from_vector(vector))

    def predict(self, horizon: Optional[int] = None) -> Optional[Pose]:
        """Extrapolate the pose ``horizon`` slots past the last one.

        Returns ``None`` before the first observation; with a single
        observation returns it unchanged (zero-velocity assumption).
        """
        if not self._history:
            return None
        h = self.horizon if horizon is None else horizon
        if h < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {h}")
        if len(self._history) == 1:
            return self._history[0]

        n = len(self._history)
        times = np.arange(n, dtype=float)
        target_t = float(n - 1 + h)
        data = np.array([p.as_vector() for p in self._history], dtype=float)

        predicted = np.empty(6, dtype=float)
        for axis in range(6):
            series = data[:, axis]
            if axis in _ANGULAR_AXES:
                series = _unwrap_deg(series)
            # Degree-1 least squares fit; closed form avoids polyfit's
            # rank warnings on constant series.
            t_mean = times.mean()
            s_mean = series.mean()
            denom = float(((times - t_mean) ** 2).sum())
            slope = float(((times - t_mean) * (series - s_mean)).sum()) / denom
            predicted[axis] = s_mean + slope * (target_t - t_mean)

        predicted[_PITCH_AXIS] = min(max(predicted[_PITCH_AXIS], -90.0), 90.0)
        for axis in _ANGULAR_AXES:
            predicted[axis] = wrap_angle_deg(predicted[axis])
        return Pose.from_vector(predicted)

    def predict_or_last(self, horizon: Optional[int] = None) -> Pose:
        """Like :meth:`predict` but raises if no pose was ever seen."""
        pose = self.predict(horizon)
        if pose is None:
            raise ConfigurationError("predict_or_last called before any observation")
        return pose


def _fit_window_vector(data: np.ndarray, horizon: int) -> np.ndarray:
    """One window's prediction — the exact per-axis math of `predict`."""
    n = data.shape[0]
    times = np.arange(n, dtype=float)
    target_t = float(n - 1 + horizon)
    predicted = np.empty(6, dtype=float)
    for axis in range(6):
        series = data[:, axis]
        if axis in _ANGULAR_AXES:
            series = _unwrap_deg(series)
        t_mean = times.mean()
        s_mean = series.mean()
        denom = float(((times - t_mean) ** 2).sum())
        slope = float(((times - t_mean) * (series - s_mean)).sum()) / denom
        predicted[axis] = s_mean + slope * (target_t - t_mean)
    predicted[_PITCH_AXIS] = min(max(predicted[_PITCH_AXIS], -90.0), 90.0)
    for axis in _ANGULAR_AXES:
        predicted[axis] = wrap_angle_deg(predicted[axis])
    return predicted


def batch_linear_predictions(
    pose_vectors: np.ndarray, window: int, horizon: int = 1
) -> np.ndarray:
    """All of one trajectory's predictions at once, for the simulator.

    ``pose_vectors`` holds a user's *observed* poses as a ``(T, 6)``
    array (``Pose.as_vector`` rows).  Returns a ``(T, 6)`` array whose
    row ``t`` equals what ``LinearMotionPredictor(window, horizon)``
    would return from ``predict()`` after observing poses ``0..t-1`` —
    the simulator's per-slot call sequence — computed with identical
    arithmetic, so the results match the sequential predictor
    bit-for-bit.  Row 0 is NaN (no observation yet); the caller
    applies its own fallback, as the simulator does.

    Warm-up rows (fewer than ``window`` observations) reuse the
    sequential per-window fit; full windows are evaluated in one
    vectorized sweep over a sliding-window view.
    """
    if window < 2:
        raise ConfigurationError(f"window must be >= 2, got {window}")
    if horizon < 1:
        raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
    vectors = np.asarray(pose_vectors, dtype=float)
    if vectors.ndim != 2 or vectors.shape[1] != 6:
        raise ConfigurationError(
            f"pose_vectors must have shape (T, 6), got {vectors.shape}"
        )
    num_slots = vectors.shape[0]
    out = np.full((num_slots, 6), np.nan)
    if num_slots > 1:
        out[1] = vectors[0]  # single observation: zero-velocity fallback
    for t in range(2, min(window, num_slots)):
        out[t] = _fit_window_vector(vectors[:t], horizon)
    if num_slots <= window:
        return out

    times = np.arange(window, dtype=float)
    t_mean = times.mean()
    centered = times - t_mean
    denom = float((centered ** 2).sum())
    target_t = float(window - 1 + horizon)
    # windows[i] = vectors[i : i + window] predicts slot t = i + window.
    windows = np.lib.stride_tricks.sliding_window_view(vectors, window, axis=0)
    windows = windows[: num_slots - window]
    for axis in range(6):
        series = windows[:, axis, :]
        if axis in _ANGULAR_AXES:
            series = _unwrap_deg(series)
        s_mean = series.mean(axis=-1)
        slope = (centered * (series - s_mean[:, None])).sum(axis=-1) / denom
        out[window:, axis] = s_mean + slope * (target_t - t_mean)
    out[window:, _PITCH_AXIS] = np.minimum(
        np.maximum(out[window:, _PITCH_AXIS], -90.0), 90.0
    )
    for axis in _ANGULAR_AXES:
        out[window:, axis] = (out[window:, axis] + 180.0) % 360.0 - 180.0
    return out
