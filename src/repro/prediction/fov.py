"""The coverage indicator ``1_n(t)``.

Section II: the server delivers "a portion that covers the FoV with
some fixed margin"; ``1_n(t) = 1`` when the delivered portion covers
the *actual* FoV, considering both virtual location and head
orientation.  The footnote notes that the margin only absorbs
orientation error; location error is judged by whether the predicted
grid cell matches the actual one (a wrong viewpoint cell means the
delivered panorama is the wrong one entirely).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

from repro.content.projection import FieldOfView, wrap_angle_deg
from repro.content.tiles import GridWorld, TileGrid
from repro.errors import ConfigurationError
from repro.prediction.pose import Pose

#: Bound on each tile-overlap memo.  The exact-bucket key space is
#: tiny for any sane geometry (buckets x pitch rows squared), so the
#: limit never binds there; it guards against a pathological bucket
#: width growing the memo without limit over a long-lived server.
_TILE_CACHE_LIMIT = 65536


@dataclass(frozen=True)
class CoverageOutcome:
    """Result of evaluating one slot's delivery against the truth."""

    covered: bool
    delivered_tiles: FrozenSet[int]
    needed_tiles: FrozenSet[int]
    predicted_cell: int
    actual_cell: int

    @property
    def indicator(self) -> int:
        """``1_n(t)`` as an integer."""
        return 1 if self.covered else 0


class CoverageEvaluator:
    """Decides which tiles to deliver and whether they covered the FoV.

    Parameters
    ----------
    world:
        Viewpoint grid (position -> cell).
    grid:
        Panorama tile partition (Fig. 5).
    fov:
        The user's true field of view.
    margin_deg:
        Fixed angular margin added on every side of the predicted FoV
        when selecting tiles to deliver (Section V: "transmit all
        tiles that overlap with this margin").
    cell_tolerance:
        Chebyshev cell distance within which a predicted viewpoint
        still shows the correct panorama.  0 requires an exact cell
        match; the 5 cm grid of the paper makes a small tolerance
        realistic since adjacent panoramas are nearly identical.
    cache:
        Memoize the tile-overlap queries (the hot cost of
        :meth:`evaluate`) on exact yaw-bucket / pitch-row keys.  The
        bucket width is derived from the tile geometry so that every
        direction in a bucket provably yields the same tile set (see
        :meth:`_bucket_deg`); when the geometry does not admit an
        exact bucket the cache disables itself, so caching never
        changes results.
    """

    def __init__(
        self,
        world: GridWorld,
        grid: TileGrid,
        fov: FieldOfView = FieldOfView(),
        margin_deg: float = 15.0,
        cell_tolerance: int = 1,
        cache: bool = True,
    ) -> None:
        if margin_deg < 0:
            raise ConfigurationError(f"margin must be non-negative, got {margin_deg}")
        if cell_tolerance < 0:
            raise ConfigurationError(
                f"cell_tolerance must be non-negative, got {cell_tolerance}"
            )
        self.world = world
        self.grid = grid
        self.fov = fov
        self.margin_deg = margin_deg
        self.cell_tolerance = cell_tolerance
        self._delivery_fov = fov.with_margin(margin_deg)
        self._deliver_bucket = self._bucket_deg(self._delivery_fov) if cache else None
        self._needed_bucket = self._bucket_deg(self.fov) if cache else None
        self._deliver_cache: Dict[tuple, FrozenSet[int]] = {}
        self._needed_cache: Dict[tuple, FrozenSet[int]] = {}

    def _bucket_deg(self, fov: FieldOfView) -> Optional[float]:
        """Yaw bucket width under which the overlap query is constant.

        :meth:`TileGrid.tiles_overlapping` samples the yaw interval at
        ``step = span / steps`` spacing; the resulting column set is a
        function of ``floor(wrap(yaw_lo) / step)`` alone whenever the
        column width ``360 / cols`` is an integer multiple of the step
        (every sample then crosses column boundaries at multiples of
        the step).  Returns that exact bucket width, ``inf`` when the
        FoV spans the full circle (yaw-independent), or ``None`` when
        no exact bucket exists and caching must stay off.
        """
        yaw_lo, yaw_hi = fov.yaw_range(0.0)
        span = yaw_hi - yaw_lo
        if span >= 360.0 - 1e-9:
            return math.inf
        steps = max(4 * self.grid.cols, 8)
        step = span / steps
        if step <= 0.0:
            return None
        ratio = (360.0 / self.grid.cols) / step
        if abs(ratio - round(ratio)) > 1e-9:
            return None
        return step

    def _tiles_cached(
        self,
        yaw_deg: float,
        pitch_deg: float,
        fov: FieldOfView,
        bucket: Optional[float],
        cache: Dict[tuple, FrozenSet[int]],
    ) -> FrozenSet[int]:
        """Overlap query through the exact memo (or straight through)."""
        if bucket is None:
            return self.grid.tiles_overlapping(yaw_deg, pitch_deg, fov)
        yaw_lo, _yaw_hi = fov.yaw_range(yaw_deg)
        pitch_lo, pitch_hi = fov.pitch_range(pitch_deg)
        yaw_key = (
            0 if math.isinf(bucket) else math.floor(wrap_angle_deg(yaw_lo) / bucket)
        )
        key = (yaw_key, self.grid.row_of(pitch_lo), self.grid.row_of(pitch_hi))
        tiles = cache.get(key)
        if tiles is None:
            if len(cache) >= _TILE_CACHE_LIMIT:
                cache.clear()
            tiles = cache[key] = self.grid.tiles_overlapping(yaw_deg, pitch_deg, fov)
        return tiles

    def tiles_to_deliver(self, predicted: Pose) -> FrozenSet[int]:
        """Tiles overlapping the predicted FoV enlarged by the margin."""
        return self._tiles_cached(
            predicted.yaw,
            predicted.pitch,
            self._delivery_fov,
            self._deliver_bucket,
            self._deliver_cache,
        )

    def tiles_needed(self, actual: Pose) -> FrozenSet[int]:
        """Tiles overlapping the true (margin-free) FoV."""
        return self._tiles_cached(
            actual.yaw, actual.pitch, self.fov, self._needed_bucket, self._needed_cache
        )

    def _cells_close(self, cell_a: int, cell_b: int) -> bool:
        row_a, col_a = divmod(cell_a, self.world.cols)
        row_b, col_b = divmod(cell_b, self.world.cols)
        return (
            abs(row_a - row_b) <= self.cell_tolerance
            and abs(col_a - col_b) <= self.cell_tolerance
        )

    def evaluate(
        self,
        predicted: Pose,
        actual: Pose,
        predicted_cell: Optional[int] = None,
        actual_cell: Optional[int] = None,
    ) -> CoverageOutcome:
        """Compute ``1_n(t)`` for one slot.

        Coverage requires (a) the predicted viewpoint cell to be within
        the tolerance of the actual cell and (b) every tile the true
        FoV needs to be inside the delivered set.  Callers that have
        already looked the cells up (the simulator precomputes them
        per episode) may pass them to skip the redundant grid queries.
        """
        delivered = self.tiles_to_deliver(predicted)
        needed = self.tiles_needed(actual)
        if predicted_cell is None:
            predicted_cell = self.world.cell_of(predicted.x, predicted.y)
        if actual_cell is None:
            actual_cell = self.world.cell_of(actual.x, actual.y)
        covered = self._cells_close(predicted_cell, actual_cell) and needed <= delivered
        return CoverageOutcome(covered, delivered, needed, predicted_cell, actual_cell)
