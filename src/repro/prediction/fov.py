"""The coverage indicator ``1_n(t)``.

Section II: the server delivers "a portion that covers the FoV with
some fixed margin"; ``1_n(t) = 1`` when the delivered portion covers
the *actual* FoV, considering both virtual location and head
orientation.  The footnote notes that the margin only absorbs
orientation error; location error is judged by whether the predicted
grid cell matches the actual one (a wrong viewpoint cell means the
delivered panorama is the wrong one entirely).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from repro.content.projection import FieldOfView
from repro.content.tiles import GridWorld, TileGrid
from repro.errors import ConfigurationError
from repro.prediction.pose import Pose


@dataclass(frozen=True)
class CoverageOutcome:
    """Result of evaluating one slot's delivery against the truth."""

    covered: bool
    delivered_tiles: FrozenSet[int]
    needed_tiles: FrozenSet[int]
    predicted_cell: int
    actual_cell: int

    @property
    def indicator(self) -> int:
        """``1_n(t)`` as an integer."""
        return 1 if self.covered else 0


class CoverageEvaluator:
    """Decides which tiles to deliver and whether they covered the FoV.

    Parameters
    ----------
    world:
        Viewpoint grid (position -> cell).
    grid:
        Panorama tile partition (Fig. 5).
    fov:
        The user's true field of view.
    margin_deg:
        Fixed angular margin added on every side of the predicted FoV
        when selecting tiles to deliver (Section V: "transmit all
        tiles that overlap with this margin").
    cell_tolerance:
        Chebyshev cell distance within which a predicted viewpoint
        still shows the correct panorama.  0 requires an exact cell
        match; the 5 cm grid of the paper makes a small tolerance
        realistic since adjacent panoramas are nearly identical.
    """

    def __init__(
        self,
        world: GridWorld,
        grid: TileGrid,
        fov: FieldOfView = FieldOfView(),
        margin_deg: float = 15.0,
        cell_tolerance: int = 1,
    ) -> None:
        if margin_deg < 0:
            raise ConfigurationError(f"margin must be non-negative, got {margin_deg}")
        if cell_tolerance < 0:
            raise ConfigurationError(
                f"cell_tolerance must be non-negative, got {cell_tolerance}"
            )
        self.world = world
        self.grid = grid
        self.fov = fov
        self.margin_deg = margin_deg
        self.cell_tolerance = cell_tolerance
        self._delivery_fov = fov.with_margin(margin_deg)

    def tiles_to_deliver(self, predicted: Pose) -> FrozenSet[int]:
        """Tiles overlapping the predicted FoV enlarged by the margin."""
        return self.grid.tiles_overlapping(predicted.yaw, predicted.pitch, self._delivery_fov)

    def tiles_needed(self, actual: Pose) -> FrozenSet[int]:
        """Tiles overlapping the true (margin-free) FoV."""
        return self.grid.tiles_overlapping(actual.yaw, actual.pitch, self.fov)

    def _cells_close(self, cell_a: int, cell_b: int) -> bool:
        row_a, col_a = divmod(cell_a, self.world.cols)
        row_b, col_b = divmod(cell_b, self.world.cols)
        return (
            abs(row_a - row_b) <= self.cell_tolerance
            and abs(col_a - col_b) <= self.cell_tolerance
        )

    def evaluate(self, predicted: Pose, actual: Pose) -> CoverageOutcome:
        """Compute ``1_n(t)`` for one slot.

        Coverage requires (a) the predicted viewpoint cell to be within
        the tolerance of the actual cell and (b) every tile the true
        FoV needs to be inside the delivered set.
        """
        delivered = self.tiles_to_deliver(predicted)
        needed = self.tiles_needed(actual)
        predicted_cell = self.world.cell_of(predicted.x, predicted.y)
        actual_cell = self.world.cell_of(actual.x, actual.y)
        covered = self._cells_close(predicted_cell, actual_cell) and needed <= delivered
        return CoverageOutcome(covered, delivered, needed, predicted_cell, actual_cell)
