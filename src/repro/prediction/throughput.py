"""Exponential-moving-average throughput estimation.

Section V: "We estimate the available bandwidth for each user using
Exponential Moving Average (EMA)."  The estimator consumes per-slot
observed goodput samples (Mbps) and exposes the smoothed estimate the
scheduler plugs into constraints (2)-(3) in place of the true
``B_n(t)``.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError


class EmaThroughputEstimator:
    """EMA over observed per-slot throughput samples.

    Parameters
    ----------
    alpha:
        Smoothing factor in (0, 1]; higher reacts faster.
    initial_mbps:
        Estimate returned before any sample arrives.  ``None`` makes
        the first sample the initial estimate.
    safety_factor:
        Multiplier in (0, 1] applied by :meth:`conservative` — a
        scheduler that fills 100% of an EMA estimate overshoots on
        every downward fluctuation, so the system emulation budgets a
        fraction of it.
    """

    def __init__(
        self,
        alpha: float = 0.3,
        initial_mbps: Optional[float] = None,
        safety_factor: float = 0.9,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        if initial_mbps is not None and initial_mbps < 0:
            raise ConfigurationError(
                f"initial estimate must be non-negative, got {initial_mbps}"
            )
        if not 0.0 < safety_factor <= 1.0:
            raise ConfigurationError(
                f"safety_factor must be in (0, 1], got {safety_factor}"
            )
        self.alpha = alpha
        self.safety_factor = safety_factor
        self._estimate = initial_mbps
        self._samples = 0

    @property
    def num_samples(self) -> int:
        return self._samples

    def observe(self, mbps: float) -> float:
        """Fold in a throughput sample; returns the updated estimate."""
        if mbps < 0:
            raise ConfigurationError(f"throughput sample must be >= 0, got {mbps}")
        if self._estimate is None:
            self._estimate = mbps
        else:
            self._estimate += self.alpha * (mbps - self._estimate)
        self._samples += 1
        return self._estimate

    def estimate(self) -> float:
        """Current smoothed estimate (0.0 before any data)."""
        return self._estimate if self._estimate is not None else 0.0

    def conservative(self) -> float:
        """Safety-discounted estimate for budget decisions."""
        return self.estimate() * self.safety_factor

    def reset(self, initial_mbps: Optional[float] = None) -> None:
        self._estimate = initial_mbps
        self._samples = 0
