"""Running estimators for the prediction success probability.

Section III: "the successful prediction probability can be estimated
via the average prediction probability ``delta_bar_n(t)``, which
converges to ``delta_n`` as ``t -> infinity``".  The tracker here is
that running average, with a small-sample prior so the scheduler does
not divide its world by the first unlucky slot.
"""

from __future__ import annotations

from typing import Tuple

from repro.errors import ConfigurationError


class RunningMean:
    """Numerically stable incremental mean (Welford's update)."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        """Current mean; 0.0 before any update."""
        return self._mean

    def update(self, value: float) -> float:
        """Fold in a new sample and return the updated mean."""
        self._count += 1
        self._mean += (value - self._mean) / self._count
        return self._mean

    def reset(self) -> None:
        self._count = 0
        self._mean = 0.0

    def export_state(self) -> Tuple[int, float]:
        """``(count, mean)`` — everything the running mean is."""
        return (self._count, self._mean)

    def restore_state(self, count: int, mean: float) -> None:
        """Reinstate a mean captured by :meth:`export_state`."""
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        self._count = int(count)
        self._mean = float(mean) if count else 0.0


class PredictionAccuracyTracker:
    """Estimates ``delta_n`` from observed coverage indicators.

    A Beta-style prior (``prior_success`` successes out of
    ``prior_count`` pseudo-observations) keeps early estimates away
    from the degenerate 0/1 extremes; as real observations accumulate
    the estimate converges to the empirical mean, matching the paper's
    ``delta_bar_n(t) -> delta_n``.
    """

    def __init__(self, prior_success: float = 0.9, prior_count: float = 5.0) -> None:
        if not 0.0 <= prior_success <= 1.0:
            raise ConfigurationError(
                f"prior_success must be in [0, 1], got {prior_success}"
            )
        if prior_count < 0:
            raise ConfigurationError(
                f"prior_count must be non-negative, got {prior_count}"
            )
        self._prior_success = prior_success
        self._prior_count = prior_count
        self._successes = 0
        self._trials = 0

    @property
    def trials(self) -> int:
        return self._trials

    @property
    def successes(self) -> int:
        return self._successes

    def record(self, indicator: int) -> None:
        """Record one slot's ``1_n(t)`` (0 or 1)."""
        if indicator not in (0, 1):
            raise ConfigurationError(f"indicator must be 0 or 1, got {indicator}")
        self._trials += 1
        self._successes += indicator

    def estimate(self) -> float:
        """Current ``delta_bar_n(t)`` including the prior."""
        num = self._successes + self._prior_success * self._prior_count
        den = self._trials + self._prior_count
        return num / den if den > 0 else self._prior_success

    def empirical(self) -> float:
        """Prior-free empirical success rate (NaN-free: 0 when empty)."""
        return self._successes / self._trials if self._trials else 0.0

    def reset(self) -> None:
        self._successes = 0
        self._trials = 0

    def export_state(self) -> Tuple[int, int]:
        """``(trials, successes)`` — the tracker's whole posterior."""
        return (self._trials, self._successes)

    def restore_state(self, trials: int, successes: int) -> None:
        """Reinstate counts captured by :meth:`export_state`."""
        if trials < 0 or successes < 0 or successes > trials:
            raise ConfigurationError(
                f"need 0 <= successes <= trials, got {successes}/{trials}"
            )
        self._trials = int(trials)
        self._successes = int(successes)
