"""Polynomial-regression delay prediction.

Section V: "the relationship between the delay and the rate is
non-linear.  Therefore, we use polynomial regression to predict the
delay instead of linear regression to avoid extra performance
degradation."

The predictor keeps a sliding window of measured (rate, delay)
samples — on the real system these come from first/last-packet
timestamps per slot — fits a low-degree polynomial, and answers
"what delay should I expect if I send at rate r?" queries for the
scheduler's ``E[d_n(f^R(q))]`` term.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


class PolynomialDelayPredictor:
    """Sliding-window polynomial fit of delay as a function of rate.

    Parameters
    ----------
    degree:
        Polynomial degree; 2 captures the convex bend of the measured
        RTT curve (Fig. 1b) without overfitting.
    window:
        Number of recent samples retained.
    min_samples:
        Below this count the predictor answers with the mean observed
        delay (or ``fallback_delay`` when empty) instead of fitting.
    fallback_delay:
        Prediction before any data arrives.
    """

    def __init__(
        self,
        degree: int = 2,
        window: int = 120,
        min_samples: int = 8,
        fallback_delay: float = 0.5,
    ) -> None:
        if degree < 1:
            raise ConfigurationError(f"degree must be >= 1, got {degree}")
        if window < degree + 1:
            raise ConfigurationError(
                f"window must exceed degree; got window={window}, degree={degree}"
            )
        if min_samples < degree + 1:
            raise ConfigurationError(
                f"min_samples must be at least degree + 1, got {min_samples}"
            )
        if fallback_delay < 0:
            raise ConfigurationError(
                f"fallback_delay must be non-negative, got {fallback_delay}"
            )
        self.degree = degree
        self.min_samples = min_samples
        self.fallback_delay = fallback_delay
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=window)
        self._coeffs: np.ndarray = np.array([])
        self._dirty = True

    @property
    def num_samples(self) -> int:
        return len(self._samples)

    def observe(self, rate_mbps: float, delay: float) -> None:
        """Record one measured (sending rate, delay) pair."""
        if rate_mbps < 0:
            raise ConfigurationError(f"rate must be non-negative, got {rate_mbps}")
        if delay < 0:
            raise ConfigurationError(f"delay must be non-negative, got {delay}")
        self._samples.append((rate_mbps, delay))
        self._dirty = True

    def _fit(self) -> None:
        rates = np.array([s[0] for s in self._samples], dtype=float)
        delays = np.array([s[1] for s in self._samples], dtype=float)
        # A window of near-identical rates makes the Vandermonde matrix
        # rank deficient; degrade the fit degree to what the data
        # supports instead of emitting garbage coefficients.
        distinct = len(np.unique(np.round(rates, 6)))
        degree = min(self.degree, max(distinct - 1, 0))
        if degree == 0:
            self._coeffs = np.array([float(delays.mean())])
        else:
            self._coeffs = np.polyfit(rates, delays, degree)
        self._dirty = False

    def predict(self, rate_mbps: float) -> float:
        """Expected delay at the given sending rate (never negative)."""
        if rate_mbps < 0:
            raise ConfigurationError(f"rate must be non-negative, got {rate_mbps}")
        if len(self._samples) < self.min_samples:
            if not self._samples:
                return self.fallback_delay
            return float(np.mean([s[1] for s in self._samples]))
        if self._dirty:
            self._fit()
        value = float(np.polyval(self._coeffs, rate_mbps))
        return max(value, 0.0)

    def reset(self) -> None:
        self._samples.clear()
        self._coeffs = np.array([])
        self._dirty = True

    def export_state(self) -> Tuple[Tuple[float, float], ...]:
        """The (rate, delay) sample window (oldest first)."""
        return tuple(self._samples)

    def restore_state(self, samples: Sequence[Tuple[float, float]]) -> None:
        """Rebuild the sample window from :meth:`export_state` output.

        Replays the samples through :meth:`observe`, so the refit
        coefficients — hence every later prediction — are bit-identical
        to the original predictor's.
        """
        self.reset()
        for rate_mbps, delay in samples:
            self.observe(float(rate_mbps), float(delay))
