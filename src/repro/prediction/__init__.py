"""Estimation substrate: motion, coverage, throughput, and delay.

The scheduler of the paper never sees ground truth — it works from
estimates:

* 6-DoF motion is predicted with per-axis **linear regression**
  (Section V, following Firefly's methodology),
* the coverage indicator ``1_n(t)`` and its running mean
  ``delta_bar_n(t)`` capture how often the delivered FoV-with-margin
  actually covered the user's true view (Section II/III),
* available bandwidth is estimated with an **exponential moving
  average** (Section V),
* delivery delay is predicted with **polynomial regression** over
  (rate, delay) samples because the delay-rate curve is nonlinear
  (Section V).
"""

from repro.prediction.pose import Pose
from repro.prediction.motion import LinearMotionPredictor
from repro.prediction.predictors import (
    PREDICTOR_REGISTRY,
    ConstantVelocityPredictor,
    ExponentialSmoothingPredictor,
    LastPosePredictor,
    make_predictor,
)
from repro.prediction.fov import CoverageEvaluator, CoverageOutcome
from repro.prediction.accuracy import RunningMean, PredictionAccuracyTracker
from repro.prediction.throughput import EmaThroughputEstimator
from repro.prediction.delay import PolynomialDelayPredictor

__all__ = [
    "Pose",
    "LinearMotionPredictor",
    "LastPosePredictor",
    "ConstantVelocityPredictor",
    "ExponentialSmoothingPredictor",
    "PREDICTOR_REGISTRY",
    "make_predictor",
    "CoverageEvaluator",
    "CoverageOutcome",
    "RunningMean",
    "PredictionAccuracyTracker",
    "EmaThroughputEstimator",
    "PolynomialDelayPredictor",
]
