"""6-degree-of-freedom pose.

Three translational DoFs (virtual location, metres) and three
rotational DoFs (head orientation, degrees): the motion state the
paper's predictor tracks per user (Section II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.content.projection import angular_difference_deg, wrap_angle_deg
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Pose:
    """A 6-DoF pose: position in metres, orientation in degrees.

    ``yaw`` wraps into ``[-180, 180)``; ``pitch`` is clamped-checked
    to ``[-90, 90]``; ``roll`` wraps like yaw.
    """

    x: float
    y: float
    z: float
    yaw: float
    pitch: float
    roll: float = 0.0

    def __post_init__(self) -> None:
        if not -90.0 <= self.pitch <= 90.0:
            raise ConfigurationError(f"pitch must be in [-90, 90], got {self.pitch}")
        object.__setattr__(self, "yaw", wrap_angle_deg(self.yaw))
        object.__setattr__(self, "roll", wrap_angle_deg(self.roll))

    def position(self) -> Tuple[float, float, float]:
        return (self.x, self.y, self.z)

    def orientation(self) -> Tuple[float, float, float]:
        return (self.yaw, self.pitch, self.roll)

    def as_vector(self) -> Tuple[float, float, float, float, float, float]:
        """All six DoFs as a flat tuple (x, y, z, yaw, pitch, roll)."""
        return (self.x, self.y, self.z, self.yaw, self.pitch, self.roll)

    def translation_distance(self, other: "Pose") -> float:
        """Euclidean distance between the two positions."""
        return (
            (self.x - other.x) ** 2
            + (self.y - other.y) ** 2
            + (self.z - other.z) ** 2
        ) ** 0.5

    def orientation_distance(self, other: "Pose") -> float:
        """Largest per-axis angular difference in degrees."""
        return max(
            angular_difference_deg(self.yaw, other.yaw),
            abs(self.pitch - other.pitch),
            angular_difference_deg(self.roll, other.roll),
        )

    @staticmethod
    def from_vector(vec: Sequence[float]) -> "Pose":
        """Build a pose from a 6-element sequence, clamping pitch."""
        if len(vec) != 6:
            raise ConfigurationError(f"expected 6 DoF values, got {len(vec)}")
        x, y, z, yaw, pitch, roll = (float(v) for v in vec)
        pitch = min(max(pitch, -90.0), 90.0)
        return Pose(x, y, z, yaw, pitch, roll)
