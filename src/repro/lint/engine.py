"""The lint engine: file discovery, rule dispatch, suppression.

The engine is deliberately a plain function pipeline — discover files,
parse each once, build the whole-project model when any enabled rule
asks for it, run every enabled in-scope rule over the shared AST, drop
suppressed findings, and return an immutable
:class:`~repro.lint.findings.LintReport` — so it can be driven equally
from the CLI, from tests (over fixture snippets), and from CI tooling.

Files that fail to parse *or to read* produce a synthetic ``RL000``
finding rather than aborting the run: a syntax error (or a permissions
mishap) in one file must not hide the findings of the other two
hundred.

Every run records wall-clock cost per rule (plus ``parse`` and
``project-model`` pseudo-entries) in ``LintReport.timings`` so the
price of the flow-aware pass stays visible in ``--stats``.
"""

from __future__ import annotations

import ast
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import repro.lint.rules  # noqa: F401  (registers RL001-RL011)
from repro.errors import ConfigurationError
from repro.lint.config import LintConfig, default_config
from repro.lint.findings import (
    SEVERITY_ERROR,
    Finding,
    LintReport,
    ModuleContext,
    sort_findings,
)
from repro.lint.project import (
    ProjectModel,
    build_project_model,
    cache_key,
    cached_project_model,
)
from repro.lint.registry import RULE_REGISTRY, path_matches
from repro.lint.suppressions import scan_suppressions

#: Synthetic rule code for unparseable or unreadable files.
PARSE_ERROR_RULE = "RL000"

#: Timing pseudo-entries alongside the per-rule costs.
TIMING_PARSE = "parse"
TIMING_PROJECT = "project-model"


def normalize_path(path: Path) -> str:
    """Posix form, repo-relative when the file lives under the CWD."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def discover_files(
    paths: Sequence[Path], exclude: Tuple[str, ...]
) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated file list.

    A path that does not exist raises :class:`ConfigurationError` — the
    CLI treats that as a usage error (exit 2), because linting nothing
    while reporting "clean" would be worse than failing loudly.
    """
    seen: Dict[str, Path] = {}
    for path in paths:
        if path.is_file():
            candidates: Iterable[Path] = [path]
        elif path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            raise ConfigurationError(f"no such file or directory: {path}")
        for candidate in candidates:
            if candidate.suffix != ".py":
                continue
            normalized = normalize_path(candidate)
            if any(fragment in normalized for fragment in exclude):
                continue
            seen.setdefault(normalized, candidate)
    return [seen[key] for key in sorted(seen)]


def _rl000(path: str, line: int, col: int, message: str) -> Finding:
    return Finding(
        path=path,
        line=line,
        col=col,
        rule=PARSE_ERROR_RULE,
        severity=SEVERITY_ERROR,
        message=message,
    )


def project_needed(config: LintConfig) -> bool:
    """True when any enabled rule wants the whole-project model."""
    for code, rule_cls in RULE_REGISTRY.items():
        if rule_cls.requires_project and config.rule(code).enabled:
            return True
    return False


def _check_rules(
    tree: ast.Module,
    lines: Tuple[str, ...],
    path: str,
    config: LintConfig,
    project: Optional[ProjectModel],
    timings: Dict[str, float],
) -> Tuple[List[Finding], int]:
    """Run every enabled in-scope rule over one parsed module."""
    suppressions = scan_suppressions(lines)
    findings: List[Finding] = []
    suppressed = 0
    for code, rule_cls in sorted(RULE_REGISTRY.items()):
        rule_config = config.rule(code)
        if not rule_config.enabled:
            continue
        if not path_matches(path, rule_config.include):
            continue
        rule = rule_cls()
        context = ModuleContext(
            path=path,
            tree=tree,
            lines=lines,
            options=rule_config.options,
            project=project,
        )
        rule_started = time.perf_counter()
        for finding in rule.check(context):
            if suppressions.is_suppressed(code, finding.line):
                suppressed += 1
                continue
            if finding.severity != rule_config.severity:
                finding = Finding(
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    rule=finding.rule,
                    severity=rule_config.severity,
                    message=finding.message,
                    evidence=finding.evidence,
                )
            findings.append(finding)
        timings[code] = (
            timings.get(code, 0.0) + time.perf_counter() - rule_started
        )
    return findings, suppressed


def lint_source(
    source: str,
    path: str,
    config: LintConfig,
    project: Optional[ProjectModel] = None,
) -> Tuple[List[Finding], int]:
    """Lint one in-memory source blob.

    Returns ``(findings, suppressed_count)``.  Exposed separately so
    fixture tests can lint snippets without touching the filesystem.
    When no ``project`` is supplied, flow-aware rules fall back to a
    single-module model built from the snippet itself.
    """
    lines = tuple(source.splitlines())
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return (
            [
                _rl000(
                    path,
                    int(exc.lineno or 1),
                    int(exc.offset or 0),
                    f"file does not parse: {exc.msg}",
                )
            ],
            0,
        )
    if project is None and project_needed(config):
        from repro.lint.project import single_module_model

        project = single_module_model(tree, path)
    return _check_rules(tree, lines, path, config, project, timings={})


def run_lint(
    paths: Sequence[Path], config: LintConfig | None = None
) -> LintReport:
    """Lint files/directories and return the aggregated report."""
    effective = config if config is not None else default_config()
    files = discover_files(paths, effective.exclude)
    findings: List[Finding] = []
    suppressed = 0
    timings: Dict[str, float] = {}

    # Parse every file once.  Unreadable or unparseable files become
    # structured RL000 findings and drop out of the analysis set.
    parse_started = time.perf_counter()
    parsed: List[Tuple[str, Path, ast.Module, Tuple[str, ...]]] = []
    for file_path in files:
        normalized = normalize_path(file_path)
        try:
            source = file_path.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(
                _rl000(normalized, 1, 0, f"file cannot be read: {exc}")
            )
            continue
        except UnicodeDecodeError as exc:
            findings.append(
                _rl000(normalized, 1, 0, f"file is not valid UTF-8: {exc}")
            )
            continue
        try:
            tree = ast.parse(source, filename=normalized)
        except SyntaxError as exc:
            findings.append(
                _rl000(
                    normalized,
                    int(exc.lineno or 1),
                    int(exc.offset or 0),
                    f"file does not parse: {exc.msg}",
                )
            )
            continue
        parsed.append(
            (normalized, file_path, tree, tuple(source.splitlines()))
        )
    timings[TIMING_PARSE] = time.perf_counter() - parse_started

    # One whole-project model per run, reused across every file and
    # every flow-aware rule; cached across runs keyed by file mtimes.
    project: Optional[ProjectModel] = None
    if project_needed(effective):
        project_started = time.perf_counter()
        readable = [file_path for _, file_path, _, _ in parsed]
        try:
            key = cache_key(readable)
            project = cached_project_model(
                key, [(n, p, t) for n, p, t, _ in parsed]
            )
        except OSError:
            # A file vanished between discovery and stat: build
            # uncached from what we already parsed.
            project = build_project_model(
                [(n, p, t) for n, p, t, _ in parsed]
            )
        timings[TIMING_PROJECT] = time.perf_counter() - project_started

    for normalized, _, tree, lines in parsed:
        file_findings, file_suppressed = _check_rules(
            tree, lines, normalized, effective, project, timings
        )
        findings.extend(file_findings)
        suppressed += file_suppressed

    rule_counts: Dict[str, int] = {code: 0 for code in sorted(RULE_REGISTRY)}
    for finding in findings:
        rule_counts[finding.rule] = rule_counts.get(finding.rule, 0) + 1
    return LintReport(
        findings=sort_findings(findings),
        files_scanned=len(files),
        rule_counts=rule_counts,
        suppressed=suppressed,
        timings={name: timings[name] for name in sorted(timings)},
    )
