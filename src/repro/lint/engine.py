"""The lint engine: file discovery, rule dispatch, suppression.

The engine is deliberately a plain function pipeline — discover files,
parse each once, run every enabled in-scope rule over the shared AST,
drop suppressed findings, and return an immutable
:class:`~repro.lint.findings.LintReport` — so it can be driven equally
from the CLI, from tests (over fixture snippets), and from future CI
tooling.

Files that fail to parse produce a synthetic ``RL000`` finding rather
than aborting the run: a syntax error in one file must not hide the
findings of the other two hundred.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

import repro.lint.rules  # noqa: F401  (registers RL001-RL006)
from repro.errors import ConfigurationError
from repro.lint.config import LintConfig, default_config
from repro.lint.findings import (
    SEVERITY_ERROR,
    Finding,
    LintReport,
    ModuleContext,
    sort_findings,
)
from repro.lint.registry import RULE_REGISTRY, path_matches
from repro.lint.suppressions import scan_suppressions

#: Synthetic rule code for unparseable files.
PARSE_ERROR_RULE = "RL000"


def normalize_path(path: Path) -> str:
    """Posix form, repo-relative when the file lives under the CWD."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def discover_files(
    paths: Sequence[Path], exclude: Tuple[str, ...]
) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated file list.

    A path that does not exist raises :class:`ConfigurationError` — the
    CLI treats that as a usage error (exit 2), because linting nothing
    while reporting "clean" would be worse than failing loudly.
    """
    seen: Dict[str, Path] = {}
    for path in paths:
        if path.is_file():
            candidates: Iterable[Path] = [path]
        elif path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            raise ConfigurationError(f"no such file or directory: {path}")
        for candidate in candidates:
            if candidate.suffix != ".py":
                continue
            normalized = normalize_path(candidate)
            if any(fragment in normalized for fragment in exclude):
                continue
            seen.setdefault(normalized, candidate)
    return [seen[key] for key in sorted(seen)]


def lint_source(
    source: str, path: str, config: LintConfig
) -> Tuple[List[Finding], int]:
    """Lint one in-memory source blob.

    Returns ``(findings, suppressed_count)``.  Exposed separately so
    fixture tests can lint snippets without touching the filesystem.
    """
    lines = tuple(source.splitlines())
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return (
            [
                Finding(
                    path=path,
                    line=int(exc.lineno or 1),
                    col=int(exc.offset or 0),
                    rule=PARSE_ERROR_RULE,
                    severity=SEVERITY_ERROR,
                    message=f"file does not parse: {exc.msg}",
                )
            ],
            0,
        )
    suppressions = scan_suppressions(lines)
    findings: List[Finding] = []
    suppressed = 0
    for code, rule_cls in sorted(RULE_REGISTRY.items()):
        rule_config = config.rule(code)
        if not rule_config.enabled:
            continue
        if not path_matches(path, rule_config.include):
            continue
        rule = rule_cls()
        context = ModuleContext(
            path=path, tree=tree, lines=lines, options=rule_config.options
        )
        for finding in rule.check(context):
            if suppressions.is_suppressed(code, finding.line):
                suppressed += 1
                continue
            if finding.severity != rule_config.severity:
                finding = Finding(
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    rule=finding.rule,
                    severity=rule_config.severity,
                    message=finding.message,
                )
            findings.append(finding)
    return findings, suppressed


def run_lint(
    paths: Sequence[Path], config: LintConfig | None = None
) -> LintReport:
    """Lint files/directories and return the aggregated report."""
    effective = config if config is not None else default_config()
    files = discover_files(paths, effective.exclude)
    findings: List[Finding] = []
    suppressed = 0
    for file_path in files:
        normalized = normalize_path(file_path)
        try:
            source = file_path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raise ConfigurationError(
                f"cannot read {normalized}: {exc}"
            ) from exc
        file_findings, file_suppressed = lint_source(
            source, normalized, effective
        )
        findings.extend(file_findings)
        suppressed += file_suppressed
    rule_counts: Dict[str, int] = {code: 0 for code in sorted(RULE_REGISTRY)}
    for finding in findings:
        rule_counts[finding.rule] = rule_counts.get(finding.rule, 0) + 1
    return LintReport(
        findings=sort_findings(findings),
        files_scanned=len(files),
        rule_counts=rule_counts,
        suppressed=suppressed,
    )
