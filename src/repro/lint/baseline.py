"""Baseline snapshots: ratchet the tree clean without a big-bang fix.

A baseline is a committed JSON file of finding *fingerprints*.  Running
with ``--baseline`` subtracts baselined findings from the report, so CI
fails only on findings introduced **after** the snapshot — the ratchet
direction: existing debt is frozen, new debt is rejected, and deleting
entries is the only way the file ever changes meaningfully.

Fingerprints deliberately exclude the line number — inserting a
docstring above old debt must not convert it into "new" findings — and
are counted: two identical ``np.zeros`` findings in one file need two
baseline entries, so fixing one of them shrinks the budget rather than
hiding behind its twin.

This repo's committed baseline (``lint-baseline.json``) is **empty** by
policy: the tree lints clean and the gate exists to keep it that way.
The mechanism still matters for forks and for bulk rule rollouts, where
a non-empty snapshot buys time without suppression comments.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace
from pathlib import Path
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.lint.findings import Finding, LintReport, sort_findings

#: Schema version of the baseline file.
BASELINE_VERSION = 1


def fingerprint(finding: Finding) -> str:
    """Stable, line-insensitive identity of a finding.

    ``rule|path|message`` hashed and truncated: stable across
    unrelated edits to the same file, distinct across rules and across
    different messages from one rule.
    """
    key = f"{finding.rule}|{finding.path}|{finding.message}"
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


def write_baseline(report: LintReport, path: Path) -> int:
    """Snapshot every finding in ``report`` to ``path``; returns count."""
    counts: Dict[str, int] = {}
    for finding in report.findings:
        fp = fingerprint(finding)
        counts[fp] = counts.get(fp, 0) + 1
    document = {
        "version": BASELINE_VERSION,
        "fingerprints": {fp: counts[fp] for fp in sorted(counts)},
    }
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return len(report.findings)


def load_baseline(path: Path) -> Dict[str, int]:
    """Parse a baseline file into ``{fingerprint: budget}``.

    Raises :class:`ConfigurationError` on a missing or malformed file —
    a silently-ignored baseline would report "clean" against no gate.
    """
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigurationError(f"cannot read baseline {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"baseline {path} is not valid JSON: {exc}")
    if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
        raise ConfigurationError(
            f"baseline {path} has unsupported format "
            f"(expected version {BASELINE_VERSION})"
        )
    fingerprints = raw.get("fingerprints")
    if not isinstance(fingerprints, dict):
        raise ConfigurationError(
            f"baseline {path}: 'fingerprints' must be an object"
        )
    budgets: Dict[str, int] = {}
    for key, value in fingerprints.items():
        if not isinstance(key, str) or not isinstance(value, int) or value < 1:
            raise ConfigurationError(
                f"baseline {path}: entries must map fingerprint strings "
                "to positive counts"
            )
        budgets[key] = value
    return budgets


def apply_baseline(report: LintReport, budgets: Dict[str, int]) -> LintReport:
    """Subtract baselined findings; what remains is *new* debt.

    Matching is counted per fingerprint: with a budget of 2 for some
    fingerprint and 3 occurrences in the report, exactly one survives
    (the last in report order) and fails the gate.
    """
    remaining = dict(budgets)
    kept: List[Finding] = []
    matched = 0
    for finding in report.findings:
        fp = fingerprint(finding)
        if remaining.get(fp, 0) > 0:
            remaining[fp] -= 1
            matched += 1
        else:
            kept.append(finding)
    counts = {code: 0 for code in report.rule_counts}
    for finding in kept:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return replace(
        report,
        findings=sort_findings(kept),
        rule_counts=counts,
        baselined=report.baselined + matched,
    )
