"""Inline suppression comments.

Two forms are recognised, mirroring the conventions of pylint-style
tools:

* ``# repro-lint: disable=RL001`` on a line suppresses the named
  rule(s) for findings anchored to that line (comma-separated codes,
  ``all`` for every rule);
* ``# repro-lint: disable-file=RL001`` anywhere in a file suppresses
  the named rule(s) for the whole file.

Suppressions are counted by the engine so reports can show how many
findings were silenced — a silently shrinking gate is no gate.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Sequence, Set

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-file)?)\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_,\s]+)"
)

#: Sentinel code matching every rule.
ALL_RULES = "all"


@dataclass(frozen=True)
class SuppressionIndex:
    """Per-file suppression lookup built once per module."""

    line_codes: Dict[int, FrozenSet[str]]
    file_codes: FrozenSet[str]

    def is_suppressed(self, rule: str, line: int) -> bool:
        if ALL_RULES in self.file_codes or rule in self.file_codes:
            return True
        codes = self.line_codes.get(line, frozenset())
        return ALL_RULES in codes or rule in codes


def scan_suppressions(lines: Sequence[str]) -> SuppressionIndex:
    """Build the suppression index for one file's source lines."""
    line_codes: Dict[int, FrozenSet[str]] = {}
    file_codes: Set[str] = set()
    for lineno, line in enumerate(lines, start=1):
        match = _DIRECTIVE.search(line)
        if match is None:
            continue
        codes = frozenset(
            code.strip() for code in match.group("codes").split(",")
            if code.strip()
        )
        if not codes:
            continue
        if match.group("kind") == "disable-file":
            file_codes |= codes
        else:
            line_codes[lineno] = line_codes.get(lineno, frozenset()) | codes
    return SuppressionIndex(line_codes=line_codes, file_codes=frozenset(file_codes))
