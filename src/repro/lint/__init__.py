"""Domain-aware static analysis for the repro codebase.

The paper's reproduction rests on three machine-checkable contracts:
the Mbps-equivalent unit convention of :mod:`repro.units`, seeded-RNG
determinism (the bit-identical fast-path guarantees of Algorithm 1 /
Theorem 1), and the :class:`~repro.errors.ReproError` exception
discipline.  This package enforces them with an AST rule engine:

* :mod:`repro.lint.rules` — the RL001-RL011 rule catalogue;
* :mod:`repro.lint.project` — the whole-project model (import
  graph, call index) behind the flow-aware rules RL008-RL011;
* :mod:`repro.lint.baseline` — committed finding snapshots for
  ratchet-style gating;
* :mod:`repro.lint.engine` — file discovery, dispatch, suppression;
* :mod:`repro.lint.config` — ``[tool.repro.lint]`` in pyproject.toml;
* :mod:`repro.lint.reporters` — text/JSON output;
* :mod:`repro.lint.cli` — the ``python -m repro lint`` command.

See ``docs/static-analysis.md`` for the rule catalogue and rationale.
"""

from __future__ import annotations

from repro.lint.config import (
    LintConfig,
    RuleConfig,
    default_config,
    load_config,
    merge_config,
)
from repro.lint.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import discover_files, lint_source, run_lint
from repro.lint.findings import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
    LintReport,
    ModuleContext,
)
from repro.lint.project import ProjectModel, build_project_model
from repro.lint.registry import RULE_REGISTRY, Rule, all_rules, register_rule
from repro.lint.reporters import (
    JSON_REPORT_VERSION,
    render_json,
    render_stats,
    render_text,
)

__all__ = [
    "Finding",
    "ProjectModel",
    "JSON_REPORT_VERSION",
    "LintConfig",
    "LintReport",
    "ModuleContext",
    "RULE_REGISTRY",
    "Rule",
    "RuleConfig",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "all_rules",
    "apply_baseline",
    "build_project_model",
    "default_config",
    "discover_files",
    "fingerprint",
    "lint_source",
    "load_baseline",
    "load_config",
    "merge_config",
    "register_rule",
    "render_json",
    "render_stats",
    "render_text",
    "run_lint",
    "write_baseline",
]
