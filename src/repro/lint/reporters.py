"""Text and JSON renderings of a :class:`~repro.lint.findings.LintReport`.

The JSON document is versioned (``"version": 1``) and its schema is
covered by tests so CI consumers can rely on it:

.. code-block:: json

    {
      "version": 1,
      "files_scanned": 213,
      "errors": 0,
      "warnings": 0,
      "suppressed": 1,
      "stats": {"RL001": 0, "...": 0},
      "findings": [
        {"path": "...", "line": 1, "col": 0, "rule": "RL001",
         "severity": "error", "message": "..."}
      ]
    }
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.findings import LintReport
from repro.lint.registry import RULE_REGISTRY

#: Schema version of the JSON report.
JSON_REPORT_VERSION = 1


def render_text(report: LintReport, stats: bool = False) -> str:
    """Human-oriented report: one finding per line plus a summary."""
    lines: List[str] = [
        f"{finding.location()}: {finding.rule} [{finding.severity}] "
        f"{finding.message}"
        for finding in report.findings
    ]
    if lines:
        lines.append("")
    if report.findings:
        lines.append(
            f"{len(report.findings)} finding(s): {report.error_count} "
            f"error(s), {report.warning_count} warning(s) in "
            f"{report.files_scanned} file(s) scanned"
        )
    else:
        lines.append(
            f"clean: no findings in {report.files_scanned} file(s) scanned"
        )
    if report.suppressed:
        lines.append(f"{report.suppressed} finding(s) inline-suppressed")
    if stats:
        lines.append("")
        lines.append(render_stats(report))
    return "\n".join(lines)


def render_stats(report: LintReport) -> str:
    """Per-rule hit counts — the ``--stats`` summary block."""
    width = max(
        (len(rule_code) for rule_code in report.rule_counts), default=5
    )
    lines = ["rule hit counts:"]
    for rule_code in sorted(report.rule_counts):
        rule_cls = RULE_REGISTRY.get(rule_code)
        label = rule_cls.name if rule_cls is not None else "parse-error"
        lines.append(
            f"  {rule_code:<{width}}  {report.rule_counts[rule_code]:>4}  "
            f"({label})"
        )
    lines.append(f"  files scanned: {report.files_scanned}")
    lines.append(f"  suppressed:    {report.suppressed}")
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    """Machine-oriented report (see module docstring for the schema)."""
    document: Dict[str, object] = {
        "version": JSON_REPORT_VERSION,
        "files_scanned": report.files_scanned,
        "errors": report.error_count,
        "warnings": report.warning_count,
        "suppressed": report.suppressed,
        "stats": dict(sorted(report.rule_counts.items())),
        "findings": [finding.to_dict() for finding in report.findings],
    }
    return json.dumps(document, indent=2, sort_keys=False)
