"""Text and JSON renderings of a :class:`~repro.lint.findings.LintReport`.

The JSON document is versioned (``"version": 2``) and its schema is
covered by tests so CI consumers can rely on it:

.. code-block:: json

    {
      "version": 2,
      "files_scanned": 237,
      "errors": 0,
      "warnings": 0,
      "suppressed": 1,
      "baselined": 0,
      "stats": {"RL001": 0, "...": 0},
      "timings_ms": {"parse": 180.2, "project-model": 95.1, "RL008": 40.7},
      "findings": [
        {"path": "...", "line": 1, "col": 0, "rule": "RL008",
         "severity": "error", "message": "...",
         "evidence": ["src/a.py:10 run calls _helper",
                      "src/b.py:4 _helper calls time.sleep"]}
      ]
    }

Version history: v1 had neither ``evidence`` on findings nor the
``timings_ms``/``baselined`` keys; v2 added all three when the
flow-aware rules landed.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.findings import LintReport
from repro.lint.registry import RULE_REGISTRY

#: Schema version of the JSON report.
JSON_REPORT_VERSION = 2


def render_text(report: LintReport, stats: bool = False) -> str:
    """Human-oriented report: one finding per line plus a summary.

    Flow-aware findings carry an evidence chain; each hop renders
    indented under the finding so the path from coroutine to blocking
    call reads top-to-bottom.
    """
    lines: List[str] = []
    for finding in report.findings:
        lines.append(
            f"{finding.location()}: {finding.rule} [{finding.severity}] "
            f"{finding.message}"
        )
        for hop in finding.evidence:
            lines.append(f"    via {hop}")
    if lines:
        lines.append("")
    if report.findings:
        lines.append(
            f"{len(report.findings)} finding(s): {report.error_count} "
            f"error(s), {report.warning_count} warning(s) in "
            f"{report.files_scanned} file(s) scanned"
        )
    else:
        lines.append(
            f"clean: no findings in {report.files_scanned} file(s) scanned"
        )
    if report.suppressed:
        lines.append(f"{report.suppressed} finding(s) inline-suppressed")
    if report.baselined:
        lines.append(f"{report.baselined} finding(s) matched the baseline")
    if stats:
        lines.append("")
        lines.append(render_stats(report))
    return "\n".join(lines)


def render_stats(report: LintReport) -> str:
    """Per-rule hit counts and wall-clock — the ``--stats`` block."""
    width = max(
        (len(rule_code) for rule_code in report.rule_counts), default=5
    )
    lines = ["rule hit counts:"]
    for rule_code in sorted(report.rule_counts):
        rule_cls = RULE_REGISTRY.get(rule_code)
        label = rule_cls.name if rule_cls is not None else "parse-error"
        timing = report.timings.get(rule_code)
        suffix = f"  {timing * 1000.0:8.1f} ms" if timing is not None else ""
        lines.append(
            f"  {rule_code:<{width}}  {report.rule_counts[rule_code]:>4}  "
            f"({label}){suffix}"
        )
    for pseudo in ("parse", "project-model"):
        if pseudo in report.timings:
            lines.append(
                f"  {pseudo:<{width}}     -  (engine)"
                f"  {report.timings[pseudo] * 1000.0:8.1f} ms"
            )
    lines.append(f"  files scanned: {report.files_scanned}")
    lines.append(f"  suppressed:    {report.suppressed}")
    if report.baselined:
        lines.append(f"  baselined:     {report.baselined}")
    return "\n".join(lines)


def timings_ms(report: LintReport) -> Dict[str, float]:
    """Per-rule wall-clock in milliseconds, rounded for stable JSON."""
    return {
        name: round(seconds * 1000.0, 3)
        for name, seconds in sorted(report.timings.items())
    }


def render_json(report: LintReport) -> str:
    """Machine-oriented report (see module docstring for the schema)."""
    document: Dict[str, object] = {
        "version": JSON_REPORT_VERSION,
        "files_scanned": report.files_scanned,
        "errors": report.error_count,
        "warnings": report.warning_count,
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "stats": dict(sorted(report.rule_counts.items())),
        "timings_ms": timings_ms(report),
        "findings": [finding.to_dict() for finding in report.findings],
    }
    return json.dumps(document, indent=2, sort_keys=False)
