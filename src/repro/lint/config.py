"""Lint configuration: registry defaults overridden by ``pyproject.toml``.

The engine reads ``[tool.repro.lint]``::

    [tool.repro.lint]
    exclude = ["__pycache__"]          # path substrings never scanned

    [tool.repro.lint.rules.RL003]
    enabled = true
    severity = "warning"               # "error" | "warning"
    include = ["src"]                  # path substrings; "*" = everywhere
    banned_raises = ["ValueError"]     # any extra keys become rule options

On Python >= 3.11 the standard :mod:`tomllib` does the parsing; older
interpreters fall back to a minimal built-in parser that understands
exactly the subset above (string/bool/int/float scalars and possibly
multi-line arrays under ``[tool.repro.lint*]`` headers; all other
sections are skipped) so the lint gate runs on every CI matrix entry
without new dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Type

from repro.errors import ConfigurationError
from repro.lint.findings import SEVERITIES
from repro.lint.registry import RULE_REGISTRY, Rule

try:  # Python >= 3.11
    import tomllib as _tomllib
except ImportError:  # pragma: no cover - exercised only on older CI
    _tomllib = None

class _TomlParseError(ValueError):
    """Internal: the (fallback) TOML parser rejected the document."""


#: Directory-name fragments skipped during file discovery.
DEFAULT_EXCLUDES: Tuple[str, ...] = (
    "__pycache__", ".git/", ".venv/", "build/", "dist/", ".egg-info",
)


@dataclass(frozen=True)
class RuleConfig:
    """Effective per-rule settings after merging config over defaults."""

    enabled: bool = True
    severity: str = "error"
    include: Tuple[str, ...] = ("*",)
    options: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class LintConfig:
    """Effective engine settings."""

    rules: Mapping[str, RuleConfig] = field(default_factory=dict)
    exclude: Tuple[str, ...] = DEFAULT_EXCLUDES

    def rule(self, code: str) -> RuleConfig:
        try:
            return self.rules[code]
        except KeyError:
            raise ConfigurationError(f"unknown lint rule {code!r}") from None


def default_config() -> LintConfig:
    """Registry defaults with no pyproject overrides."""
    return LintConfig(rules={
        code: RuleConfig(
            enabled=True,
            severity=cls.default_severity,
            include=cls.default_includes,
        )
        for code, cls in sorted(RULE_REGISTRY.items())
    })


def load_config(pyproject: Optional[Path]) -> LintConfig:
    """Merge ``[tool.repro.lint]`` from a pyproject file over defaults.

    ``None`` or a missing file yields the defaults; a malformed file or
    an unknown rule code raises :class:`ConfigurationError` so the CLI
    can report a usage error (exit 2) rather than lint with a half-read
    configuration.
    """
    config = default_config()
    if pyproject is None or not pyproject.is_file():
        return config
    try:
        document = _parse_toml(pyproject.read_text(encoding="utf-8"))
    except (_TomlParseError, OSError) as exc:
        raise ConfigurationError(f"cannot read {pyproject}: {exc}") from exc
    section = document.get("tool", {}).get("repro", {}).get("lint", {})
    if not isinstance(section, dict) or not section:
        return config
    return merge_config(config, section, source=str(pyproject))


def merge_config(
    base: LintConfig, section: Mapping[str, Any], source: str = "<config>"
) -> LintConfig:
    """Overlay a ``[tool.repro.lint]``-shaped mapping onto ``base``."""
    exclude = base.exclude
    if "exclude" in section:
        exclude = tuple(_string_list(section["exclude"], "exclude", source))
    rules: Dict[str, RuleConfig] = dict(base.rules)
    overrides = section.get("rules", {})
    if not isinstance(overrides, Mapping):
        raise ConfigurationError(f"{source}: [tool.repro.lint.rules] must be a table")
    for code, raw in sorted(overrides.items()):
        if code not in rules:
            raise ConfigurationError(f"{source}: unknown lint rule {code!r}")
        if not isinstance(raw, Mapping):
            raise ConfigurationError(f"{source}: rule {code} must be a table")
        rules[code] = _merge_rule(rules[code], code, raw, source)
    return LintConfig(rules=rules, exclude=exclude)


def _merge_rule(
    base: RuleConfig, code: str, raw: Mapping[str, Any], source: str
) -> RuleConfig:
    enabled = base.enabled
    severity = base.severity
    include = base.include
    options = dict(base.options)
    for key, value in raw.items():
        if key == "enabled":
            if not isinstance(value, bool):
                raise ConfigurationError(f"{source}: {code}.enabled must be a bool")
            enabled = value
        elif key == "severity":
            if value not in SEVERITIES:
                raise ConfigurationError(
                    f"{source}: {code}.severity must be one of {SEVERITIES}, "
                    f"got {value!r}"
                )
            severity = str(value)
        elif key == "include":
            include = tuple(_string_list(value, f"{code}.include", source))
        else:
            options[key] = value
    return RuleConfig(
        enabled=enabled, severity=severity, include=include, options=options
    )


def rule_class(code: str) -> Type[Rule]:
    try:
        return RULE_REGISTRY[code]
    except KeyError:
        raise ConfigurationError(f"unknown lint rule {code!r}") from None


def _string_list(value: Any, key: str, source: str) -> List[str]:
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        raise ConfigurationError(f"{source}: {key} must be a list of strings")
    return list(value)


# ---------------------------------------------------------------------------
# TOML parsing (stdlib on 3.11+, minimal subset parser otherwise)
# ---------------------------------------------------------------------------


def _parse_toml(text: str) -> Dict[str, Any]:
    if _tomllib is not None:
        try:
            return _tomllib.loads(text)
        except _tomllib.TOMLDecodeError as exc:
            raise _TomlParseError(str(exc)) from exc
    return _parse_toml_subset(text)  # pragma: no cover - pre-3.11 only


def _parse_toml_subset(text: str) -> Dict[str, Any]:
    """Parse the TOML subset the lint config needs (see module docs).

    Only ``[tool.repro.lint*]`` tables are materialized; every other
    section of the document is skipped wholesale, so pyproject
    constructs outside our schema (inline tables, arrays of tables)
    never have to parse.  Inside our own section, anything
    unparseable still raises.
    """
    document: Dict[str, Any] = {}
    table: Optional[Dict[str, Any]] = None
    for raw_line in _logical_lines(text):
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            dotted = line[1:-1].strip().strip('"')
            if dotted != "tool.repro.lint" and not dotted.startswith(
                "tool.repro.lint."
            ):
                table = None
                continue
            table = document
            for part in dotted.split("."):
                nested = table.setdefault(part.strip().strip('"'), {})
                if not isinstance(nested, dict):
                    raise _TomlParseError(f"conflicting table {dotted!r}")
                table = nested
            continue
        if table is None:
            continue
        if "=" not in line:
            raise _TomlParseError(f"cannot parse line {raw_line!r}")
        key, _, value = line.partition("=")
        table[key.strip().strip('"')] = _parse_scalar(value.strip())
    return document


def _logical_lines(text: str) -> List[str]:
    """Comment-stripped lines, with multi-line arrays joined into one."""
    lines: List[str] = []
    pending = ""
    for raw_line in text.splitlines():
        stripped = _strip_comment(raw_line).strip()
        if pending:
            pending = f"{pending} {stripped}"
        elif _bracket_depth(stripped) > 0:
            pending = stripped
        else:
            lines.append(stripped)
            continue
        if _bracket_depth(pending) <= 0:
            lines.append(pending)
            pending = ""
    if pending:
        raise _TomlParseError(f"unterminated array: {pending!r}")
    return lines


def _bracket_depth(line: str) -> int:
    depth = 0
    in_string = ""
    for char in line:
        if in_string:
            if char == in_string:
                in_string = ""
        elif char in ('"', "'"):
            in_string = char
        elif char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
    return depth


def _strip_comment(line: str) -> str:
    in_string = ""
    for index, char in enumerate(line):
        if in_string:
            if char == in_string:
                in_string = ""
        elif char in ('"', "'"):
            in_string = char
        elif char == "#":
            return line[:index]
    return line


def _parse_scalar(token: str) -> Any:
    if token.startswith("[") and token.endswith("]"):
        inner = token[1:-1].strip()
        if not inner:
            return []
        return [_parse_scalar(item.strip()) for item in _split_array(inner)]
    if token in ("true", "false"):
        return token == "true"
    if len(token) >= 2 and token[0] == token[-1] and token[0] in ('"', "'"):
        return token[1:-1]
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        raise _TomlParseError(f"cannot parse TOML value {token!r}") from None


def _split_array(inner: str) -> List[str]:
    items: List[str] = []
    current: List[str] = []
    in_string = ""
    for char in inner:
        if in_string:
            current.append(char)
            if char == in_string:
                in_string = ""
        elif char in ('"', "'"):
            in_string = char
            current.append(char)
        elif char == ",":
            items.append("".join(current))
            current = []
        else:
            current.append(char)
    if "".join(current).strip():
        items.append("".join(current))
    return items
