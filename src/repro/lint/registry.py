"""Rule base class and the global rule registry.

Rules are small AST visitors registered by code (``RL001`` ...).  Each
declares a default severity and a default path scope; both can be
overridden per-rule from ``[tool.repro.lint.rules.<CODE>]`` in
``pyproject.toml``.  Registering two rules under one code is a
programming error and raises immediately.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Tuple, Type

from repro.errors import ConfigurationError
from repro.lint.findings import SEVERITIES, SEVERITY_ERROR, Finding, ModuleContext


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding :class:`Finding` objects.  ``default_includes`` restricts
    the rule to files whose normalized posix path contains one of the
    given substrings; the literal ``"*"`` (the default) matches every
    file.
    """

    code: str = ""
    name: str = ""
    description: str = ""
    rationale: str = ""
    default_severity: str = SEVERITY_ERROR
    default_includes: Tuple[str, ...] = ("*",)
    #: True for flow-aware rules that need the cross-file
    #: :class:`~repro.lint.project.ProjectModel`; the engine builds it
    #: once per run when any enabled in-scope rule asks for it.
    requires_project: bool = False

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleContext, line: int, col: int, message: str,
        severity: str = "", evidence: Tuple[str, ...] = (),
    ) -> Finding:
        """Build a finding for this rule at a location in ``module``."""
        return Finding(
            path=module.path,
            line=line,
            col=col,
            rule=self.code,
            severity=severity or self.default_severity,
            message=message,
            evidence=evidence,
        )


#: All registered rule classes, keyed by code, in registration order.
RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to :data:`RULE_REGISTRY`."""
    if not cls.code or not cls.name:
        raise ConfigurationError(
            f"rule {cls.__name__} must declare a code and a name"
        )
    if cls.default_severity not in SEVERITIES:
        raise ConfigurationError(
            f"rule {cls.code}: invalid severity {cls.default_severity!r}"
        )
    if cls.code in RULE_REGISTRY:
        raise ConfigurationError(f"duplicate rule code {cls.code}")
    RULE_REGISTRY[cls.code] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    """Registered rules in code order (RL001, RL002, ...)."""
    return [RULE_REGISTRY[code] for code in sorted(RULE_REGISTRY)]


def path_matches(path: str, patterns: Tuple[str, ...]) -> bool:
    """True when a normalized posix path is in a rule's scope.

    ``"*"`` matches everything; any other pattern matches as a plain
    substring of the posix path, which keeps scoping predictable for
    both absolute and repo-relative invocations.
    """
    return any(p == "*" or p in path for p in patterns)


RuleFactory = Callable[[], Rule]
