"""The ``repro lint`` command.

Exit codes follow the usual lint-tool contract:

* ``0`` — scan completed, no error-severity findings;
* ``1`` — scan completed, at least one error-severity finding;
* ``2`` — usage error (unknown path, unreadable/invalid config).

Kept separate from :mod:`repro.cli` so the lint subsystem stays fully
importable (and testable) without the simulation stack.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, TextIO

from repro.errors import ConfigurationError
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.config import LintConfig, load_config
from repro.lint.engine import run_lint
from repro.lint.reporters import render_json, render_text

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

#: Paths scanned when the command is given none.
DEFAULT_PATHS = ("src", "tests")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to a (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help="files or directories to scan (default: src tests)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="append per-rule hit counts to the text report",
    )
    parser.add_argument(
        "--config", default="pyproject.toml",
        help="pyproject file holding [tool.repro.lint] (default: "
        "pyproject.toml)",
    )
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore pyproject overrides and lint with built-in defaults",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="subtract findings recorded in this baseline file; only "
        "NEW findings fail the gate",
    )
    parser.add_argument(
        "--write-baseline", metavar="PATH", default=None,
        help="snapshot the current findings to PATH and exit 0; commit "
        "the file to freeze existing debt",
    )


def run_lint_command(
    args: argparse.Namespace,
    stdout: Optional[TextIO] = None,
    stderr: Optional[TextIO] = None,
) -> int:
    """Execute ``repro lint`` from parsed arguments."""
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    try:
        config: LintConfig = (
            load_config(None) if args.no_config
            else load_config(Path(args.config))
        )
        report = run_lint([Path(p) for p in args.paths], config)
        if getattr(args, "write_baseline", None):
            count = write_baseline(report, Path(args.write_baseline))
            print(
                f"baseline written: {count} finding(s) snapshotted to "
                f"{args.write_baseline}",
                file=out,
            )
            return EXIT_CLEAN
        if getattr(args, "baseline", None):
            budgets = load_baseline(Path(args.baseline))
            report = apply_baseline(report, budgets)
    except ConfigurationError as exc:
        print(f"repro lint: error: {exc}", file=err)
        return EXIT_USAGE
    if args.format == "json":
        print(render_json(report), file=out)
    else:
        print(render_text(report, stats=args.stats), file=out)
    return EXIT_FINDINGS if report.has_errors() else EXIT_CLEAN


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point: ``python -m repro.lint.cli``."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Domain-aware static analysis for the repro codebase.",
    )
    add_lint_arguments(parser)
    return run_lint_command(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
