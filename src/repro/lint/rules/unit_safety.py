"""RL001 — unit-safety.

The library's unit convention (``repro/units.py``) fixes every rate and
size as an Mbps-equivalent and keeps time slot-indexed unless a name is
explicitly suffixed ``_s``.  Two violation classes are detected:

* additive arithmetic or comparisons that mix identifiers carrying
  different unit suffixes (``*_s`` seconds against ``*_slots`` slot
  counts, ``*_mbps`` against ``*_bits``, ...) — multiplying or dividing
  across units is a legitimate conversion and is not flagged;
* numeric literals that shadow the canonical constants: a literal
  ``1/60`` (or a float equal to it) instead of
  :data:`repro.units.SLOT_DURATION_S`, and a re-typed CRF ladder
  instead of :data:`repro.units.CRF_VALUES`.

``repro/units.py`` itself — the module that *defines* the constants —
is exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.lint.findings import Finding, ModuleContext
from repro.lint.registry import Rule, register_rule
from repro.units import CRF_VALUES, SLOT_DURATION_S, TARGET_FPS

#: Identifier suffix -> unit tag.  Longer suffixes first so ``_ms``
#: wins over ``_s``.
_SUFFIX_UNITS: Tuple[Tuple[str, str], ...] = (
    ("_slots", "slots"),
    ("_slot", "slots"),
    ("_mbps", "Mbps"),
    ("_bits", "bits"),
    ("_ms", "milliseconds"),
    ("_s", "seconds"),
)

_ADDITIVE = (ast.Add, ast.Sub)


def _unit_of(node: ast.expr) -> Optional[str]:
    """Unit tag of a bare identifier or attribute, if any.

    Tags deliberately do not propagate through arithmetic: once an
    expression multiplies or divides, a conversion may have happened
    and the result's unit is unknown.
    """
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return None
    for suffix, unit in _SUFFIX_UNITS:
        if name.endswith(suffix):
            return unit
    return None


def _is_slot_duration_literal(node: ast.expr) -> bool:
    """``1/60``-shaped division or a float constant equal to it."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        left, right = node.left, node.right
        return (
            isinstance(left, ast.Constant)
            and isinstance(right, ast.Constant)
            and isinstance(left.value, (int, float))
            and isinstance(right.value, (int, float))
            and left.value in (1, 1.0)
            and right.value in (TARGET_FPS, float(TARGET_FPS))
        )
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return abs(node.value - SLOT_DURATION_S) < 1e-12
    return False


def _is_crf_ladder_literal(node: ast.expr) -> bool:
    if not isinstance(node, (ast.Tuple, ast.List)):
        return False
    if len(node.elts) != len(CRF_VALUES):
        return False
    values = []
    for element in node.elts:
        if not (
            isinstance(element, ast.Constant)
            and isinstance(element.value, int)
        ):
            return False
        values.append(element.value)
    return tuple(values) == tuple(CRF_VALUES)


@register_rule
class UnitSafetyRule(Rule):
    code = "RL001"
    name = "unit-safety"
    description = (
        "additive mixing of differently-suffixed unit identifiers, or "
        "numeric literals shadowing the repro.units constants"
    )
    rationale = (
        "Section II of the paper unifies sizes and throughputs as "
        "Mbps-equivalents per slot; constraint checks compare them "
        "directly only while every module honours that convention."
    )
    default_includes = ("src/",)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.path.replace("\\", "/").endswith("repro/units.py"):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, _ADDITIVE):
                yield from self._check_pair(
                    module, node, node.left, node.right, "arithmetic"
                )
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for left, right in zip(operands, operands[1:]):
                    yield from self._check_pair(
                        module, node, left, right, "comparison"
                    )
            if isinstance(node, ast.expr) and _is_slot_duration_literal(node):
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    "literal slot duration 1/60; use repro.units."
                    "SLOT_DURATION_S so the 60 FPS convention has one home",
                )
            elif isinstance(node, ast.expr) and _is_crf_ladder_literal(node):
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    "literal CRF ladder (15, 19, 23, 27, 31, 35); use "
                    "repro.units.CRF_VALUES",
                )

    def _check_pair(
        self,
        module: ModuleContext,
        node: ast.expr,
        left: ast.expr,
        right: ast.expr,
        kind: str,
    ) -> Iterator[Finding]:
        left_unit, right_unit = _unit_of(left), _unit_of(right)
        if left_unit and right_unit and left_unit != right_unit:
            yield self.finding(
                module, node.lineno, node.col_offset,
                f"{kind} mixes {left_unit} with {right_unit}; convert "
                "explicitly (multiply/divide) before combining units",
            )
