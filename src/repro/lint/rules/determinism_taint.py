"""RL009 — determinism taint.

Every run must be a pure function of its seeds: Theorem 1's
heap/reference equivalence, the kernel's bit-identity contract, and
the chaos tier's replayable fault schedules all assume it.  RL002
already bans *global* RNG state; this rule closes the other door —
**locally constructed but unseeded generators**.  A
``np.random.default_rng()`` with no argument draws entropy from the
OS, so two runs with identical configs diverge silently.

Inside the deterministic packages (``core``, ``kernel``,
``simulation``, ``faults``, ``knapsack`` by default) every RNG
construction — ``np.random.default_rng``, ``np.random.Generator``,
``random.Random``, ``np.random.SeedSequence`` — must visibly derive
its seed from one of:

* an integer literal (an explicit, reproducible seed);
* a name matching the seed pattern (``seed``, ``*_seed``, ``rng``,
  ``entropy``, ``ss``), including function parameters;
* an attribute whose terminal name matches (``config.seed``);
* a local variable assigned from one of the above (one-hop
  module-local dataflow), or any tuple/expression containing one.

Constructions that fail the test are reported where they happen, and
a second **taint pass** follows the unseeded value through simple
assignments: storing it on allocator/predictor/scheduler state
(``self._rng = ...`` inside a class whose name matches
``taint_sinks``) or passing it to another call earns an extra finding
with the assignment chain as evidence — that is the exact path by
which nondeterminism reaches slot decisions.

Limits: dataflow is module-local and follows plain ``x = expr``
assignments only; containers, closures, and cross-module flow are out
of scope (see ``docs/static-analysis.md``).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding, ModuleContext
from repro.lint.registry import Rule, register_rule

#: Names whose presence in a seed expression marks it as derived from
#: an explicit seed.
DEFAULT_SEED_PATTERN = r"(?:^|_)(seed|seeds|rng|entropy|ss|generator)$"

#: Class-name fragments whose instance state must never hold an
#: unseeded generator (the allocator/predictor state of the paper's
#: slot pipeline).
DEFAULT_TAINT_SINKS: Tuple[str, ...] = (
    "Allocator",
    "Predictor",
    "Scheduler",
    "Simulator",
    "Injector",
)

#: (module alias chain tail, attribute) pairs that construct fresh RNG
#: streams.  ``default_rng`` and friends under ``np.random``;
#: ``Random`` under the stdlib ``random`` module.
_NP_CONSTRUCTORS = ("default_rng", "Generator", "SeedSequence")


def _numpy_aliases(tree: ast.Module) -> Set[str]:
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


def _random_aliases(tree: ast.Module) -> Set[str]:
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    aliases.add(alias.asname or "random")
    return aliases


def _from_import_bindings(tree: ast.Module) -> Dict[str, str]:
    """``from numpy.random import default_rng`` style bindings."""
    bindings: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                bindings[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return bindings


class _SeedJudge:
    """Decides whether an expression visibly derives from a seed."""

    def __init__(self, pattern: str, seeded_names: Set[str]) -> None:
        self._regex = re.compile(pattern)
        self._seeded_names = seeded_names

    def name_is_seedlike(self, name: str) -> bool:
        return bool(self._regex.search(name.lower()))

    def is_seeded(self, node: ast.expr) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, int):
                return True
            if isinstance(sub, ast.Name) and (
                self.name_is_seedlike(sub.id)
                or sub.id in self._seeded_names
            ):
                return True
            if isinstance(sub, ast.Attribute) and self.name_is_seedlike(
                sub.attr
            ):
                return True
        return False


@register_rule
class DeterminismTaintRule(Rule):
    code = "RL009"
    name = "determinism-taint"
    description = (
        "RNG constructed without visible seed provenance in the "
        "deterministic packages, or such a value stored in "
        "allocator/predictor state"
    )
    rationale = (
        "An unseeded generator draws OS entropy; every replay, "
        "differential test, and bit-identity proof breaks silently."
    )
    default_includes = (
        "repro/core/", "repro/knapsack/", "repro/simulation/",
        "repro/kernel/", "repro/faults/",
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        pattern = str(module.option("seed_pattern", DEFAULT_SEED_PATTERN))
        sinks = module.option("taint_sinks", DEFAULT_TAINT_SINKS)
        sink_fragments: Tuple[str, ...] = (
            tuple(str(s) for s in sinks)
            if isinstance(sinks, (list, tuple))
            else DEFAULT_TAINT_SINKS
        )
        np_aliases = _numpy_aliases(module.tree)
        random_aliases = _random_aliases(module.tree)
        from_imports = _from_import_bindings(module.tree)
        yield from self._check_scope(
            module, module.tree, None, pattern,
            np_aliases, random_aliases, from_imports, sink_fragments,
        )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                for child in node.body:
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        yield from self._check_scope(
                            module, child, node.name, pattern,
                            np_aliases, random_aliases, from_imports,
                            sink_fragments,
                        )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                parent_class = None  # handled above when class-nested
                if not self._is_method(module.tree, node):
                    yield from self._check_scope(
                        module, node, parent_class, pattern,
                        np_aliases, random_aliases, from_imports,
                        sink_fragments,
                    )

    @staticmethod
    def _is_method(tree: ast.Module, target: ast.AST) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and target in node.body:
                return True
        return False

    # ------------------------------------------------------------------
    def _rng_construction(
        self,
        node: ast.Call,
        np_aliases: Set[str],
        random_aliases: Set[str],
        from_imports: Dict[str, str],
    ) -> Optional[str]:
        """The constructor's display name when this call builds an RNG."""
        func = node.func
        if isinstance(func, ast.Attribute):
            value = func.value
            # np.random.default_rng / np.random.Generator / SeedSequence
            if (
                func.attr in _NP_CONSTRUCTORS
                and isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in np_aliases
            ):
                return f"np.random.{func.attr}"
            # random.Random(...)
            if (
                func.attr == "Random"
                and isinstance(value, ast.Name)
                and value.id in random_aliases
            ):
                return "random.Random"
        elif isinstance(func, ast.Name):
            dotted = from_imports.get(func.id, "")
            if dotted in (
                "numpy.random.default_rng",
                "numpy.random.Generator",
                "numpy.random.SeedSequence",
                "random.Random",
            ):
                return dotted
        return None

    def _check_scope(
        self,
        module: ModuleContext,
        scope: ast.AST,
        class_name: Optional[str],
        pattern: str,
        np_aliases: Set[str],
        random_aliases: Set[str],
        from_imports: Dict[str, str],
        sink_fragments: Tuple[str, ...],
    ) -> Iterator[Finding]:
        """One function body (or the module top level)."""
        seeded_names: Set[str] = set()
        judge = _SeedJudge(pattern, seeded_names)
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in (
                list(scope.args.posonlyargs)
                + list(scope.args.args)
                + list(scope.args.kwonlyargs)
            ):
                if judge.name_is_seedlike(arg.arg):
                    seeded_names.add(arg.arg)
        tainted: Dict[str, Tuple[int, str]] = {}
        body = (
            scope.body
            if isinstance(
                scope, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)
            )
            else []
        )
        for stmt in body:
            yield from self._check_statement(
                module, stmt, class_name, judge, tainted,
                np_aliases, random_aliases, from_imports, sink_fragments,
            )

    def _check_statement(
        self,
        module: ModuleContext,
        stmt: ast.stmt,
        class_name: Optional[str],
        judge: _SeedJudge,
        tainted: Dict[str, Tuple[int, str]],
        np_aliases: Set[str],
        random_aliases: Set[str],
        from_imports: Dict[str, str],
        sink_fragments: Tuple[str, ...],
    ) -> Iterator[Finding]:
        # Never descend into nested defs here (they get their own
        # scope pass); do descend into control flow.
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        for node in self._statement_expressions(stmt):
            if not isinstance(node, ast.Call):
                continue
            constructor = self._rng_construction(
                node, np_aliases, random_aliases, from_imports
            )
            if constructor is None:
                continue
            seeded = any(judge.is_seeded(arg) for arg in node.args) or any(
                judge.is_seeded(kw.value) for kw in node.keywords
            )
            if not seeded:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"{constructor}({'' if not node.args and not node.keywords else '...'}) "
                    "has no visible seed provenance; pass an explicit "
                    "seed, a seed-named variable, or a config field",
                )
                target = self._assignment_target(stmt, node)
                if target is not None:
                    tainted[target] = (node.lineno, constructor)
            else:
                target = self._assignment_target(stmt, node)
                if target is not None:
                    judge._seeded_names.add(target)
        # Taint flow: an unseeded generator stored on sink state.
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Name):
            source = stmt.value.id
            if source in tainted:
                origin_line, constructor = tainted[source]
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and class_name is not None
                        and any(f in class_name for f in sink_fragments)
                    ):
                        yield self.finding(
                            module, stmt.lineno, stmt.col_offset,
                            f"unseeded {constructor} (line {origin_line}) "
                            f"flows into {class_name}.{target.attr} — "
                            "allocator/predictor state must be seed-"
                            "reproducible",
                            evidence=(
                                f"{module.path}:{origin_line} unseeded "
                                f"{constructor} constructed",
                                f"{module.path}:{stmt.lineno} stored on "
                                f"{class_name}.{target.attr}",
                            ),
                        )

    @staticmethod
    def _statement_expressions(stmt: ast.stmt) -> List[ast.AST]:
        """Every expression node in a statement, skipping nested defs."""
        out: List[ast.AST] = []
        stack: List[ast.AST] = [stmt]
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ) and node is not stmt:
                continue
            out.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return out

    @staticmethod
    def _assignment_target(stmt: ast.stmt, value: ast.Call) -> Optional[str]:
        if (
            isinstance(stmt, ast.Assign)
            and stmt.value is value
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            return stmt.targets[0].id
        return None
