"""Domain rules RL001-RL011.

Importing this package registers every rule with
:data:`repro.lint.registry.RULE_REGISTRY`; the engine imports it for
its side effect.  Each module holds one rule so the catalogue in
``docs/static-analysis.md`` maps one-to-one onto the code.

RL001-RL007 are single-file AST rules; RL008-RL011 are the flow-aware
tier that consumes the whole-project model from
:mod:`repro.lint.project`.
"""

from __future__ import annotations

from repro.lint.rules.annotations import PublicApiAnnotationsRule
from repro.lint.rules.async_safety import AsyncSafetyRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.determinism_taint import DeterminismTaintRule
from repro.lint.rules.exceptions import ExceptionHygieneRule
from repro.lint.rules.float_equality import FloatEqualityRule
from repro.lint.rules.kernel_contracts import KernelContractsRule
from repro.lint.rules.mutable_defaults import MutableDefaultArgsRule
from repro.lint.rules.unit_safety import UnitSafetyRule
from repro.lint.rules.wallclock import WallClockRule
from repro.lint.rules.worker_hygiene import WorkerHygieneRule

__all__ = [
    "UnitSafetyRule",
    "DeterminismRule",
    "ExceptionHygieneRule",
    "FloatEqualityRule",
    "MutableDefaultArgsRule",
    "PublicApiAnnotationsRule",
    "WallClockRule",
    "AsyncSafetyRule",
    "DeterminismTaintRule",
    "KernelContractsRule",
    "WorkerHygieneRule",
]
