"""RL011 — worker-pool hygiene.

The simulation fan-out ships work to a ``ProcessPoolExecutor`` by
pickling it.  Two classes of object break that boundary, and both fail
at *dispatch time on the worker*, far from the line that introduced
them:

* **lambdas and nested functions** passed to a pool boundary call
  (``submit`` / ``map`` / ``imap`` / ``starmap`` / ``apply_async`` on
  a pool/executor receiver): pickle serializes functions by qualified
  name, so only module-level functions survive the trip;
* **unpicklable resource fields** on dataclasses that cross the
  boundary: a ``threading.Lock``, an open file handle, a socket, or a
  live ``Thread`` in a payload dataclass turns every dispatch into a
  ``TypeError: cannot pickle`` — the annotation is visible statically,
  so lint catches it before the pool does.

Receiver detection is heuristic by name: a call like
``pool.map(fn, ...)`` or ``self._executor.submit(fn)`` counts when
the receiver chain contains a fragment from ``pool_names``
(default: ``pool``, ``executor``).  The stdlib builtin ``map`` (no
receiver) never matches.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence, Tuple

from repro.lint.findings import Finding, ModuleContext
from repro.lint.registry import Rule, register_rule

#: Methods that move their function argument across a pickle boundary.
DEFAULT_BOUNDARY_METHODS: Tuple[str, ...] = (
    "submit",
    "map",
    "imap",
    "imap_unordered",
    "starmap",
    "apply",
    "apply_async",
    "map_async",
)

#: Receiver-name fragments that mark a pool/executor object.
DEFAULT_POOL_NAMES: Tuple[str, ...] = ("pool", "executor")

#: Type annotation spellings that cannot cross a pickle boundary.
DEFAULT_UNPICKLABLE_TYPES: Tuple[str, ...] = (
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "Event",
    "Thread",
    "IO",
    "TextIO",
    "BinaryIO",
    "socket",
)


def _receiver_fragments(func: ast.Attribute) -> str:
    """The receiver chain as lowercase text (``self._pool`` etc.)."""
    return ast.unparse(func.value).lower()


def _local_function_names(tree: ast.Module) -> set:
    """Names of functions nested inside other functions (not module level)."""
    nested = set()
    for outer in ast.walk(tree):
        if isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(outer):
                if inner is not outer and isinstance(
                    inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    nested.add(inner.name)
    return nested


@register_rule
class WorkerHygieneRule(Rule):
    code = "RL011"
    name = "worker-pool-hygiene"
    description = (
        "lambda/nested function shipped across a process-pool "
        "boundary, or unpicklable resource field on a payload "
        "dataclass"
    )
    rationale = (
        "Pickle serializes functions by qualified name and cannot "
        "serialize locks, threads, or open handles; both failure "
        "modes surface at dispatch time on the worker, far from the "
        "line that introduced them."
    )
    default_includes = ("repro/simulation/",)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        boundary = _str_tuple(
            module.option("boundary_methods", DEFAULT_BOUNDARY_METHODS)
        )
        pool_names = _str_tuple(
            module.option("pool_names", DEFAULT_POOL_NAMES)
        )
        unpicklable = _str_tuple(
            module.option("unpicklable_types", DEFAULT_UNPICKLABLE_TYPES)
        )
        nested_names = _local_function_names(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_boundary_call(
                    module, node, boundary, pool_names, nested_names
                )
            elif isinstance(node, ast.ClassDef):
                yield from self._check_dataclass_fields(
                    module, node, unpicklable
                )

    # ------------------------------------------------------------------
    def _check_boundary_call(
        self,
        module: ModuleContext,
        node: ast.Call,
        boundary: Sequence[str],
        pool_names: Sequence[str],
        nested_names: set,
    ) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in boundary:
            return
        receiver = _receiver_fragments(func)
        if not any(fragment in receiver for fragment in pool_names):
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Lambda):
                yield self.finding(
                    module, arg.lineno, arg.col_offset,
                    f"lambda passed to {func.attr}() crosses the "
                    "process-pool pickle boundary; hoist it to a "
                    "module-level function",
                )
            elif isinstance(arg, ast.Name) and arg.id in nested_names:
                yield self.finding(
                    module, arg.lineno, arg.col_offset,
                    f"nested function {arg.id!r} passed to "
                    f"{func.attr}() cannot be pickled; hoist it to "
                    "module level",
                )

    def _check_dataclass_fields(
        self,
        module: ModuleContext,
        node: ast.ClassDef,
        unpicklable: Sequence[str],
    ) -> Iterator[Finding]:
        if not self._is_dataclass(node):
            return
        for stmt in node.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            annotation = ast.unparse(stmt.annotation)
            terminals = [
                part.strip("[] ")
                for part in annotation.replace("]", "[").split("[")
            ]
            flat = {
                piece.split(".")[-1]
                for part in terminals
                for piece in part.split(",")
                if piece.strip()
            }
            hit = sorted(flat & set(unpicklable))
            if hit and isinstance(stmt.target, ast.Name):
                yield self.finding(
                    module, stmt.lineno, stmt.col_offset,
                    f"dataclass {node.name}.{stmt.target.id} is typed "
                    f"{annotation} — {', '.join(hit)} cannot cross the "
                    "worker pickle boundary; pass a descriptor and "
                    "reopen in the worker",
                )

    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            text = ast.unparse(target)
            if text.endswith("dataclass"):
                return True
        return False


def _str_tuple(value: object) -> Tuple[str, ...]:
    if isinstance(value, (list, tuple)):
        return tuple(str(item) for item in value)
    return ()
