"""RL003 — exception-hygiene.

``repro/errors.py`` promises callers one catchable root
(:class:`~repro.errors.ReproError`) while programming errors propagate.
Two practices erode that contract:

* bare ``except:`` / ``except Exception`` / ``except BaseException``
  handlers, which swallow programming errors along with domain ones —
  each surviving handler must name the exceptions it expects (or carry
  an inline suppression explaining itself);
* ``raise`` of generic builtins (``ValueError``, ``RuntimeError``,
  ``Exception``, ...) for domain conditions, which callers then cannot
  distinguish from bugs.  ``TypeError``/``NotImplementedError`` and
  re-raises stay legal.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence, Set, Tuple

from repro.lint.findings import Finding, ModuleContext
from repro.lint.registry import Rule, register_rule

#: Handler types considered over-broad.
BROAD_HANDLERS: Tuple[str, ...] = ("Exception", "BaseException")

#: Builtins whose ``raise`` marks a domain error hiding as a generic.
DEFAULT_BANNED_RAISES: Tuple[str, ...] = (
    "Exception", "BaseException", "ValueError", "RuntimeError",
    "ArithmeticError",
)


def _handler_names(handler: ast.ExceptHandler) -> Iterator[str]:
    node = handler.type
    elements = node.elts if isinstance(node, ast.Tuple) else [node]
    for element in elements:
        if isinstance(element, ast.Name):
            yield element.id


@register_rule
class ExceptionHygieneRule(Rule):
    code = "RL003"
    name = "exception-hygiene"
    description = (
        "bare/broad except handlers, or raising generic builtins "
        "instead of ReproError subclasses"
    )
    rationale = (
        "The library's contract is a single catchable root "
        "(ReproError) with programming errors left to propagate."
    )
    default_includes = ("src/",)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        banned_raw = module.option("banned_raises", DEFAULT_BANNED_RAISES)
        banned: Set[str] = (
            set(banned_raw) if isinstance(banned_raw, Sequence) else set()
        )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(module, node)
            elif isinstance(node, ast.Raise):
                yield from self._check_raise(module, node, banned)

    def _check_handler(
        self, module: ModuleContext, handler: ast.ExceptHandler
    ) -> Iterator[Finding]:
        if handler.type is None:
            yield self.finding(
                module, handler.lineno, handler.col_offset,
                "bare 'except:' swallows every error including "
                "KeyboardInterrupt; name the exceptions this code expects",
            )
            return
        for name in _handler_names(handler):
            if name in BROAD_HANDLERS:
                yield self.finding(
                    module, handler.lineno, handler.col_offset,
                    f"'except {name}' hides programming errors behind the "
                    "domain fallback; catch the specific exceptions (or "
                    "ReproError for library errors)",
                )

    def _check_raise(
        self, module: ModuleContext, node: ast.Raise, banned: Set[str]
    ) -> Iterator[Finding]:
        exc = node.exc
        if exc is None:  # re-raise inside a handler is always fine
            return
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name) and exc.id in banned:
            yield self.finding(
                module, node.lineno, node.col_offset,
                f"raise {exc.id} for a domain condition; raise a "
                "repro.errors.ReproError subclass so callers can catch "
                "library errors with one handler",
            )
