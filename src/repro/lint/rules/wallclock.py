"""RL007 — wall-clock hygiene.

The serving loop's deadline accounting and the observability layer's
span timing are both measured against monotonic clocks
(``asyncio``'s ``loop.time()``, :func:`time.monotonic`,
:func:`time.perf_counter`).  ``time.time()`` is the wall clock: NTP
slews it, administrators step it, and VMs jump it across suspends.  A
single wall-clock reading mixed into slot timing silently corrupts
latency histograms and span durations, so inside ``repro/serve`` and
``repro/obs`` this rule forbids it outright.

``time.monotonic``, ``time.perf_counter``, and their ``_ns`` variants
are allowed — they are exactly what the wall clock should be replaced
with.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.findings import Finding, ModuleContext
from repro.lint.registry import Rule, register_rule


def _time_module_aliases(tree: ast.Module) -> Set[str]:
    """Local names bound to the time module (``import time as t``)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    aliases.add(alias.asname or "time")
    return aliases


@register_rule
class WallClockRule(Rule):
    code = "RL007"
    name = "wall-clock"
    description = (
        "wall-clock time.time() used inside the serving or "
        "observability packages"
    )
    rationale = (
        "Slot deadlines and span durations must come from a monotonic "
        "clock; time.time() jumps under NTP slew and VM suspends."
    )
    default_includes = ("repro/serve/", "repro/obs/")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        time_names = _time_module_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "time":
                        yield self.finding(
                            module, node.lineno, node.col_offset,
                            "'from time import time' imports the wall "
                            "clock; use time.monotonic or "
                            "time.perf_counter instead",
                        )
            elif (
                isinstance(node, ast.Attribute)
                and node.attr == "time"
                and isinstance(node.value, ast.Name)
                and node.value.id in time_names
            ):
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    "time.time() reads the wall clock, which NTP and VM "
                    "suspends move; use time.monotonic or "
                    "time.perf_counter for durations",
                )
