"""RL008 — async-safety.

The serving event loop runs every slot decision against a 1/60 s
deadline.  One blocking call on the loop thread — ``time.sleep``, a
sync ``open``, a ``subprocess`` spawn, sync socket I/O — freezes every
connected session for its duration, and the miss shows up as a QoE
regression long after the offending line merged.  This rule walks the
project call graph (see :mod:`repro.lint.project`) and reports:

* **blocking calls** made directly inside an ``async def``, or inside
  any sync helper reachable from one through resolvable calls up to a
  bounded depth (``max_depth`` option, default 3) — the finding is
  anchored at the call site in the coroutine, with the helper chain
  attached as evidence;
* **unawaited coroutines**: a project ``async def`` called without
  ``await`` outside a coroutine-consuming wrapper
  (``asyncio.gather``, ``create_task``, ...) — the coroutine object
  is built and silently dropped;
* **dropped task handles**: ``asyncio.create_task`` /
  ``ensure_future`` used as a bare statement — the task can be
  garbage-collected mid-flight and its exceptions vanish; keep a
  reference and attach a done-callback.

Escape hatch: wrap the blocking work in ``asyncio.to_thread`` or
``loop.run_in_executor`` — references passed there are not calls and
never match.

Known limits (documented in ``docs/static-analysis.md``): calls
through object attributes (``self.obs.flight.trigger()``) and dynamic
dispatch do not resolve, so the rule under-approximates reachability;
it never false-positives on that account, but hot-path audits stay a
human job where composition crosses object fields.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding, ModuleContext
from repro.lint.project import (
    CallSite,
    FunctionInfo,
    ModuleInfo,
    ProjectModel,
)
from repro.lint.registry import Rule, register_rule

#: Dotted call chains that block the calling thread.  Matched against
#: the *resolved import* of the chain head where possible, otherwise
#: against the literal chain.
DEFAULT_BLOCKING_CALLS: Tuple[str, ...] = (
    "time.sleep",
    "os.system",
    "os.popen",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "socket.socket",
    "socket.create_connection",
    "socket.getaddrinfo",
    "urllib.request.urlopen",
    "requests.get",
    "requests.post",
    "requests.request",
)

#: Method names that mean sync file I/O no matter the receiver
#: (``pathlib.Path`` and friends); matched on the chain tail alone.
DEFAULT_BLOCKING_METHODS: Tuple[str, ...] = (
    "read_text",
    "write_text",
    "read_bytes",
    "write_bytes",
)

#: Task-spawning calls whose return value must not be dropped.
TASK_SPAWNERS = ("create_task", "ensure_future")

DEFAULT_MAX_DEPTH = 3


def _resolved_chain(
    module: ModuleInfo, chain: Tuple[str, ...]
) -> Tuple[str, ...]:
    """Rewrite the chain head through the module's import bindings."""
    if not chain:
        return chain
    target = module.imports.get(chain[0])
    if target is None:
        return chain
    return tuple(target.split(".")) + chain[1:]


def _blocking_reason(
    module: ModuleInfo,
    site: CallSite,
    blocking_calls: Sequence[str],
    blocking_methods: Sequence[str],
) -> Optional[str]:
    """The blocking API a call site hits, or ``None``."""
    resolved = ".".join(_resolved_chain(module, site.chain))
    for banned in blocking_calls:
        if resolved == banned:
            return banned
    # The builtin ``open`` (not shadowed by an import or local def).
    if (
        site.chain == ("open",)
        and "open" not in module.imports
        and "open" not in module.functions
    ):
        return "open"
    if len(site.chain) >= 2 and site.tail in blocking_methods:
        return f"<file>.{site.tail}"
    return None


@register_rule
class AsyncSafetyRule(Rule):
    code = "RL008"
    name = "async-safety"
    description = (
        "blocking call reachable from an async def, unawaited "
        "coroutine, or dropped task handle in the serving packages"
    )
    rationale = (
        "One blocking call on the event loop freezes every session "
        "past the 16.7 ms slot deadline; an unawaited coroutine is "
        "work that silently never happens."
    )
    default_includes = ("repro/serve/", "repro/obs/")
    requires_project = True

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        project = module.project
        if project is None:
            return
        info = project.by_path.get(module.path)
        if info is None:
            return
        blocking_calls = _str_tuple(
            module.option("blocking_calls", DEFAULT_BLOCKING_CALLS)
        )
        blocking_methods = _str_tuple(
            module.option("blocking_methods", DEFAULT_BLOCKING_METHODS)
        )
        max_depth = int(
            _as_int(module.option("max_depth", DEFAULT_MAX_DEPTH))
        )
        for qualname in sorted(info.functions):
            function = info.functions[qualname]
            if function.is_async:
                yield from self._check_async_function(
                    module, project, info, function,
                    blocking_calls, blocking_methods, max_depth,
                )

    # ------------------------------------------------------------------
    def _check_async_function(
        self,
        module: ModuleContext,
        project: ProjectModel,
        info: ModuleInfo,
        function: FunctionInfo,
        blocking_calls: Sequence[str],
        blocking_methods: Sequence[str],
        max_depth: int,
    ) -> Iterator[Finding]:
        # 1. Direct blocking calls in the coroutine body.
        for site in function.calls:
            reason = _blocking_reason(
                info, site, blocking_calls, blocking_methods
            )
            if reason is not None:
                yield self.finding(
                    module, site.line, site.col,
                    f"blocking call {reason}() inside async def "
                    f"{function.qualname}; use asyncio.to_thread or the "
                    "loop executor",
                )
            yield from self._check_coroutine_discipline(
                module, project, info, function, site
            )
        # 2. Blocking calls in sync helpers reachable from here.
        for callee, first_site, evidence in project.reachable_sync_callees(
            info, function, max_depth
        ):
            callee_module = project.modules.get(callee.module)
            if callee_module is None:
                continue
            for site in callee.calls:
                reason = _blocking_reason(
                    callee_module, site, blocking_calls, blocking_methods
                )
                if reason is None:
                    continue
                yield self.finding(
                    module, first_site.line, first_site.col,
                    f"async def {function.qualname} reaches blocking "
                    f"{reason}() via {callee.qualname} "
                    f"({callee.path}:{site.line}); move it behind "
                    "asyncio.to_thread or the loop executor",
                    evidence=evidence
                    + (f"{callee.path}:{site.line} {callee.qualname} "
                       f"calls {reason}",),
                )

    def _check_coroutine_discipline(
        self,
        module: ModuleContext,
        project: ProjectModel,
        info: ModuleInfo,
        function: FunctionInfo,
        site: CallSite,
    ) -> Iterator[Finding]:
        # Dropped task handles: ``asyncio.create_task(...)`` as a bare
        # statement loses the only strong reference to the task.
        if site.tail in TASK_SPAWNERS and site.is_statement:
            yield self.finding(
                module, site.line, site.col,
                f"{site.dotted()}(...) result dropped; keep the task "
                "handle and attach a done-callback so failures surface",
            )
            return
        if site.awaited or site.in_wrapper:
            return
        target = project.resolve_call(info, function, site.chain)
        if target is not None and target.is_async and not site.is_statement:
            # Assigned coroutine objects are usually handed to a
            # wrapper on a later line; chasing that dataflow is out of
            # scope, so only bare statements are flagged below.
            return
        if target is not None and target.is_async:
            yield self.finding(
                module, site.line, site.col,
                f"coroutine {target.qualname}() is never awaited — the "
                "call builds a coroutine object and drops it",
            )
        elif (
            _resolved_chain(info, site.chain) == ("asyncio", "sleep")
            and site.is_statement
        ):
            yield self.finding(
                module, site.line, site.col,
                "asyncio.sleep() without await does nothing — the "
                "coroutine object is dropped",
            )


def _str_tuple(value: object) -> Tuple[str, ...]:
    if isinstance(value, (list, tuple)):
        return tuple(str(item) for item in value)
    return ()


def _as_int(value: object) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        return DEFAULT_MAX_DEPTH
    return value
