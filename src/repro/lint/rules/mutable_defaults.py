"""RL005 — mutable-default-args.

Default values are evaluated once at ``def`` time; a list/dict/set
default is shared across every call and across every simulation
episode, which is exactly the cross-episode state leak the seeded
determinism contract forbids.  Both literal containers and
``list()``/``dict()``/``set()`` constructor calls in default position
are flagged — use ``None`` plus an inside-the-body default instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.lint.findings import Finding, ModuleContext
from repro.lint.registry import Rule, register_rule

_MUTABLE_LITERALS = (
    ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp,
)
_MUTABLE_CONSTRUCTORS = ("list", "dict", "set", "bytearray", "deque")


def _mutable_kind(node: Optional[ast.expr]) -> Optional[str]:
    if node is None:
        return None
    if isinstance(node, _MUTABLE_LITERALS):
        return type(node).__name__.lower().replace("comp", " comprehension")
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CONSTRUCTORS
    ):
        return f"{node.func.id}()"
    return None


@register_rule
class MutableDefaultArgsRule(Rule):
    code = "RL005"
    name = "mutable-default-args"
    description = "list/dict/set (literal or constructor) as a default value"
    rationale = (
        "Defaults evaluate once per def; shared containers leak state "
        "across calls and across simulation episodes."
    )
    default_includes: Tuple[str, ...] = ("*",)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                kind = _mutable_kind(default)
                if kind is not None:
                    yield self.finding(
                        module, default.lineno, default.col_offset,
                        f"mutable default {kind} in {node.name}(); use "
                        "None and create the container in the body",
                    )
