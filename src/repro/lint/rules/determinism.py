"""RL002 — determinism.

Theorem 1's heap/reference equivalence guarantee (and every
bit-identical fast path added since PR 1) holds only because the random
substrate is derived from ``(config.seed, episode)`` through injected
:class:`numpy.random.Generator` instances.  Touching process-global RNG
state — the :mod:`random` module or the legacy ``np.random.*``
functions — silently breaks replayability, so inside the algorithmic
packages (``core/``, ``knapsack/``, ``simulation/`` by default) this
rule requires a seeded generator passed in by the caller.

Constructors such as ``np.random.default_rng(seed)`` and the
``Generator``/``SeedSequence``/bit-generator types are allowed: they
*create* isolated streams rather than mutating shared state.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence, Set, Tuple

from repro.lint.findings import Finding, ModuleContext
from repro.lint.registry import Rule, register_rule

#: ``np.random`` attributes that construct isolated, seedable streams.
DEFAULT_ALLOWED_NP: Tuple[str, ...] = (
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
)


def _numpy_aliases(tree: ast.Module) -> Set[str]:
    """Local names bound to the numpy module (``import numpy as np``)."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


def _random_module_aliases(tree: ast.Module) -> Set[str]:
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    aliases.add(alias.asname or "random")
    return aliases


@register_rule
class DeterminismRule(Rule):
    code = "RL002"
    name = "determinism"
    description = (
        "global RNG state (random module or legacy np.random.*) used "
        "inside the deterministic algorithmic packages"
    )
    rationale = (
        "Episode results must be a pure function of (config.seed, "
        "episode); Theorem 1's fast-path equivalence tests rely on it."
    )
    default_includes = (
        "repro/core/", "repro/knapsack/", "repro/simulation/",
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        allowed_raw = module.option("allowed_np", DEFAULT_ALLOWED_NP)
        allowed: Set[str] = (
            set(allowed_raw) if isinstance(allowed_raw, Sequence) else set()
        )
        numpy_names = _numpy_aliases(module.tree)
        random_names = _random_module_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                names = ", ".join(alias.name for alias in node.names)
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"'from random import {names}' pulls in process-global "
                    "RNG state; inject a seeded np.random.Generator instead",
                )
            elif isinstance(node, ast.Attribute):
                yield from self._check_attribute(
                    module, node, numpy_names, random_names, allowed
                )

    def _check_attribute(
        self,
        module: ModuleContext,
        node: ast.Attribute,
        numpy_names: Set[str],
        random_names: Set[str],
        allowed: Set[str],
    ) -> Iterator[Finding]:
        value = node.value
        # random.<anything>: the stdlib module is global state through
        # and through (random.seed, random.random, random.shuffle, ...).
        if isinstance(value, ast.Name) and value.id in random_names:
            yield self.finding(
                module, node.lineno, node.col_offset,
                f"random.{node.attr} mutates or reads the process-global "
                "RNG; inject a seeded np.random.Generator instead",
            )
            return
        # np.random.<fn> for legacy global-state functions.
        if (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in numpy_names
            and node.attr not in allowed
        ):
            yield self.finding(
                module, node.lineno, node.col_offset,
                f"np.random.{node.attr} uses numpy's legacy global RNG; "
                "use an injected np.random.default_rng(seed) Generator",
            )
