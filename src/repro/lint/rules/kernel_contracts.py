"""RL010 — kernel array contracts.

The slot kernel's bit-identity guarantee (array path == object path,
exactly) only holds while every array is constructed with an explicit,
agreed dtype.  ``np.zeros(n)`` happens to default to float64 today,
but the default is a property of numpy, not of our contract — and a
silent float32 (or platform-int) drift shows up as a one-ULP
allocation difference three layers later, failing the differential
suite with no obvious culprit.  This rule makes the contract a lint
invariant for ``repro/kernel/``:

* **explicit dtype**: ``np.zeros`` / ``ones`` / ``empty`` / ``full`` /
  ``array`` / ``asarray`` / ``arange`` must pass ``dtype=``
  (``*_like`` constructors inherit their prototype's dtype and are
  exempt);
* **dtype allowlist**: the dtype passed (or given to ``.astype``)
  must be one of the kernel's contract dtypes — ``float`` /
  ``np.float64`` / ``"float64"`` for real-valued state, ``int`` /
  ``np.int64`` / ``np.intp`` / ``"int64"`` for indices and ids,
  ``bool`` / ``np.bool_`` / ``"bool"`` for masks.  ``np.float32`` in
  the kernel is exactly the drift this rule exists to stop;
* **axis order**: ``transpose`` / ``swapaxes`` / ``.T`` reorder the
  (users, fields) layout every kernel function assumes; any use in
  kernel code is flagged so the reshape happens at the boundary, not
  mid-pipeline;
* **field contracts** (``dtype_contracts`` option): a mapping of
  SlotBatch-adjacent keyword names to required dtype spellings,
  checked at call sites — e.g. ``{"demand": "float64"}`` fails a
  ``SlotBatch(demand=np.zeros(n, dtype=np.float32))`` call.

The rule is syntactic: it sees dtype *spellings*, not resolved types,
so an alias like ``DT = np.float32; np.zeros(n, dtype=DT)`` escapes
it (and is caught by the differential tests instead).
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding, ModuleContext
from repro.lint.registry import Rule, register_rule

#: numpy constructors that must be called with an explicit dtype.
DEFAULT_CONSTRUCTORS: Tuple[str, ...] = (
    "zeros",
    "ones",
    "empty",
    "full",
    "array",
    "asarray",
    "arange",
)

#: Acceptable dtype spellings for kernel arrays, as rendered source
#: text: the float64/int64/bool contract plus the builtin shorthands
#: that alias them on every supported platform.
DEFAULT_ALLOWED_DTYPES: Tuple[str, ...] = (
    "float",
    "np.float64",
    "numpy.float64",
    "'float64'",
    '"float64"',
    "int",
    "np.int64",
    "numpy.int64",
    "np.intp",
    "numpy.intp",
    "'int64'",
    '"int64"',
    "bool",
    "np.bool_",
    "numpy.bool_",
    "'bool'",
    '"bool"',
    "object",
)

#: Axis-reordering operations that break the (users, fields) layout.
AXIS_REORDER_METHODS: Tuple[str, ...] = ("transpose", "swapaxes")


def _numpy_aliases(tree: ast.Module) -> Set[str]:
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


def _dtype_spelling(node: ast.expr) -> str:
    """The dtype argument as normalized source text."""
    text = ast.unparse(node)
    # Normalize alias heads so ``numpy.float64`` and ``np.float64``
    # compare equal against the allowlist.
    if text.startswith("numpy."):
        return text
    return text


def _dtype_keyword(call: ast.Call) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == "dtype":
            return kw.value
    return None


@register_rule
class KernelContractsRule(Rule):
    code = "RL010"
    name = "kernel-array-contracts"
    description = (
        "kernel array constructed without explicit contract dtype, "
        "off-allowlist dtype, or axis-order change mid-pipeline"
    )
    rationale = (
        "Bit-identity between the array kernel and the object path "
        "requires every array to carry the agreed dtype explicitly; "
        "float32 or axis-order drift surfaces as one-ULP allocation "
        "differences with no visible culprit."
    )
    default_includes = ("repro/kernel/",)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        constructors = _str_tuple(
            module.option("constructors", DEFAULT_CONSTRUCTORS)
        )
        allowed = set(
            _str_tuple(module.option("allowed_dtypes", DEFAULT_ALLOWED_DTYPES))
        )
        contracts = module.option("dtype_contracts", {})
        contract_map: Mapping[str, str] = (
            {str(k): str(v) for k, v in contracts.items()}
            if isinstance(contracts, Mapping)
            else {}
        )
        np_aliases = _numpy_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(
                    module, node, np_aliases, constructors, allowed,
                    contract_map,
                )
            elif isinstance(node, ast.Attribute) and node.attr == "T":
                # ``x.T`` only counts when x plausibly is an array —
                # heuristically, any load-context attribute access; the
                # kernel package holds no matrices that *should* be
                # transposed mid-pipeline.
                if isinstance(node.ctx, ast.Load):
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        ".T transposes the (users, fields) layout the "
                        "kernel contract fixes; reshape at the "
                        "boundary instead",
                    )

    # ------------------------------------------------------------------
    def _check_call(
        self,
        module: ModuleContext,
        node: ast.Call,
        np_aliases: Set[str],
        constructors: Sequence[str],
        allowed: Set[str],
        contract_map: Mapping[str, str],
    ) -> Iterator[Finding]:
        func = node.func
        # np.zeros(...) style constructors.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in np_aliases
        ):
            if func.attr in constructors:
                dtype = _dtype_keyword(node)
                if dtype is None:
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        f"np.{func.attr}(...) without explicit dtype; "
                        "the kernel contract requires dtype=float, "
                        "dtype=np.int64, or dtype=bool spelled out",
                    )
                else:
                    spelling = _dtype_spelling(dtype)
                    if spelling not in allowed:
                        yield self.finding(
                            module, node.lineno, node.col_offset,
                            f"np.{func.attr}(dtype={spelling}) is off "
                            "the kernel dtype allowlist "
                            "(float64/int64/intp/bool)",
                        )
            elif func.attr in AXIS_REORDER_METHODS:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"np.{func.attr}() reorders the (users, fields) "
                    "axis layout the kernel contract fixes",
                )
        # x.astype(...) — the cast target must stay on the allowlist.
        elif isinstance(func, ast.Attribute) and func.attr == "astype":
            target: Optional[ast.expr] = None
            if node.args:
                target = node.args[0]
            else:
                target = _dtype_keyword(node)
            if target is not None:
                spelling = _dtype_spelling(target)
                if spelling not in allowed:
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        f".astype({spelling}) leaves the kernel dtype "
                        "allowlist (float64/int64/intp/bool)",
                    )
        # x.transpose() / x.swapaxes(...) method form.
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in AXIS_REORDER_METHODS
            and not (
                isinstance(func.value, ast.Name)
                and func.value.id in np_aliases
            )
        ):
            yield self.finding(
                module, node.lineno, node.col_offset,
                f".{func.attr}() reorders the (users, fields) axis "
                "layout the kernel contract fixes",
            )
        # Field contracts at SlotBatch-adjacent call sites.
        if contract_map:
            yield from self._check_field_contracts(
                module, node, contract_map
            )

    def _check_field_contracts(
        self,
        module: ModuleContext,
        node: ast.Call,
        contract_map: Mapping[str, str],
    ) -> Iterator[Finding]:
        for kw in node.keywords:
            if kw.arg is None or kw.arg not in contract_map:
                continue
            required = contract_map[kw.arg]
            if not isinstance(kw.value, ast.Call):
                continue
            dtype = _dtype_keyword(kw.value)
            if dtype is None:
                continue
            spelling = _dtype_spelling(dtype)
            normalized = spelling.strip("'\"").replace("np.", "").replace(
                "numpy.", ""
            )
            if normalized != required and spelling != required:
                yield self.finding(
                    module, kw.value.lineno, kw.value.col_offset,
                    f"field {kw.arg!r} requires dtype {required}, got "
                    f"{spelling}",
                )


def _str_tuple(value: object) -> Tuple[str, ...]:
    if isinstance(value, (list, tuple)):
        return tuple(str(item) for item in value)
    return ()
