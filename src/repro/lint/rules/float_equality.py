"""RL004 — float-equality.

QoE scores, Mbps rates, and M/M/1 delays are floating-point values
produced by long arithmetic chains; ``==``/``!=`` against them encodes
an exactness the representation cannot promise and breaks the moment a
fast path reorders operations.  The rule flags equality comparisons
where an operand is visibly a float: a float literal, a true-division
expression, or a ``float(...)`` cast.  Use an explicit tolerance
(``math.isclose``, ``abs(a - b) < eps``) or an order comparison
instead; exact sentinel comparisons that are genuinely intended can
carry an inline suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding, ModuleContext
from repro.lint.registry import Rule, register_rule


def _is_floatish(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_floatish(node.operand)
    if isinstance(node, ast.BinOp):
        return isinstance(node.op, ast.Div) or (
            _is_floatish(node.left) or _is_floatish(node.right)
        )
    if isinstance(node, ast.Call):
        return isinstance(node.func, ast.Name) and node.func.id == "float"
    return False


@register_rule
class FloatEqualityRule(Rule):
    code = "RL004"
    name = "float-equality"
    description = (
        "== or != against an expression that is visibly floating-point"
    )
    rationale = (
        "QoE/rate/delay values come out of reordered fast-path "
        "arithmetic; equality on them is representation-dependent."
    )
    default_includes = ("src/",)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            has_eq = any(
                isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
            )
            if not has_eq:
                continue
            if any(
                _is_floatish(operand)
                for operand in [node.left, *node.comparators]
            ):
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    "float equality comparison; use math.isclose, an "
                    "epsilon bound, or an order comparison",
                )
