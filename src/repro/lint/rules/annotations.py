"""RL006 — public-API-annotations.

The package ships a ``py.typed`` marker, so downstream type checkers
trust our annotations; an unannotated exported function is a hole in
that contract (it silently degrades to ``Any`` at every call site).
The rule requires full signatures — every parameter including ``*args``
/ ``**kwargs``, and the return type — on public functions at module
level and on public methods of public classes.  Private helpers
(leading underscore anywhere in the definition chain), nested
functions, and ``@overload``/``@no_type_check`` definitions are
exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Union

from repro.lint.findings import Finding, ModuleContext
from repro.lint.registry import Rule, register_rule

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

_EXEMPT_DECORATORS = ("overload", "no_type_check")


def _decorator_name(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _decorator_name(node.func)
    return ""


def _missing_annotations(node: _FunctionNode, is_method: bool) -> List[str]:
    """Names of unannotated parameters, plus ``return`` if absent."""
    args = node.args
    positional = args.posonlyargs + args.args
    missing: List[str] = []
    decorators = {_decorator_name(d) for d in node.decorator_list}
    skip_first = (
        is_method
        and "staticmethod" not in decorators
        and bool(positional)
    )
    for index, arg in enumerate(positional):
        if skip_first and index == 0:  # self / cls
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    missing.extend(
        arg.arg for arg in args.kwonlyargs if arg.annotation is None
    )
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append(f"*{args.vararg.arg}")
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append(f"**{args.kwarg.arg}")
    if node.returns is None:
        missing.append("return")
    return missing


@register_rule
class PublicApiAnnotationsRule(Rule):
    code = "RL006"
    name = "public-api-annotations"
    description = (
        "exported function or public method with unannotated "
        "parameters or return type"
    )
    rationale = (
        "py.typed publishes our annotations; an Any-typed export "
        "defeats the strict-typing gate at every call site."
    )
    default_includes = ("src/",)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        yield from self._check_body(module, module.tree.body, is_method=False)

    def _check_body(
        self,
        module: ModuleContext,
        body: List[ast.stmt],
        is_method: bool,
    ) -> Iterator[Finding]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(module, node, is_method)
            elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                yield from self._check_body(module, node.body, is_method=True)

    def _check_function(
        self, module: ModuleContext, node: _FunctionNode, is_method: bool
    ) -> Iterator[Finding]:
        if node.name.startswith("_"):
            return
        decorators = {_decorator_name(d) for d in node.decorator_list}
        if decorators & set(_EXEMPT_DECORATORS):
            return
        missing = _missing_annotations(node, is_method)
        if missing:
            yield self.finding(
                module, node.lineno, node.col_offset,
                f"public {'method' if is_method else 'function'} "
                f"{node.name}() missing annotations: {', '.join(missing)}",
            )
