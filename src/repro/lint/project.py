"""Whole-project analysis model: symbols, calls, and the import graph.

The per-file rules (RL001-RL007) see one AST at a time, which is
exactly the wrong granularity for the bug classes that threaten the
paper's two hard guarantees — the 1/60 s slot deadline and seed
reproducibility.  A blocking call is rarely *in* the ``async def``; it
hides two sync helpers down.  This module builds, once per engine run,
the cross-file facts those rules need:

* a **module table** mapping dotted module names to parsed symbol
  information (functions, methods, their call sites, their imports);
* an **import graph** over the scanned files (project-internal edges
  only), and
* a **call resolver** that maps a call chain like ``("self",
  "_fold_pending")`` or ``("helper",)`` back to a
  :class:`FunctionInfo`, within the documented limits below.

Resolution limits (deliberate, documented in
``docs/static-analysis.md``):

* no dynamic dispatch — ``self.method()`` resolves within the same
  class only (no inheritance walk), and attribute chains through
  object fields (``self.obs.flight.trigger()``) never resolve;
* only ``import x`` / ``from x import y`` bindings are followed —
  aliasing through assignments or containers is invisible;
* reachability walks are bounded by the caller-supplied depth.

The model is cached keyed by every file's ``(path, mtime_ns, size)``,
so repeated runs over an unchanged tree (editor integrations, the
fixture-driven test suite) pay the parse cost once.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

#: Placeholder chain element for sub-expressions that are not plain
#: names (calls, subscripts, literals): ``Path(x).open`` becomes
#: ``("?", "open")``.
OPAQUE = "?"

#: Wrapper callables whose coroutine arguments are consumed, not
#: dropped (``asyncio.gather(run())`` is fine; bare ``run()`` is not).
COROUTINE_WRAPPERS: FrozenSet[str] = frozenset(
    {
        "create_task",
        "ensure_future",
        "gather",
        "wait",
        "wait_for",
        "shield",
        "run",
        "run_until_complete",
        "run_coroutine_threadsafe",
        "Task",
        "timeout",
        "as_completed",
    }
)


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    chain: Tuple[str, ...]
    line: int
    col: int
    awaited: bool = False
    #: True when the call is a bare expression statement (its return
    #: value is dropped on the floor).
    is_statement: bool = False
    #: True when the call appears inside a coroutine-consuming wrapper
    #: such as ``asyncio.gather(...)`` or ``asyncio.create_task(...)``.
    in_wrapper: bool = False

    @property
    def tail(self) -> str:
        return self.chain[-1] if self.chain else ""

    def dotted(self) -> str:
        return ".".join(self.chain)


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method: identity plus its outgoing calls."""

    module: str
    qualname: str
    path: str
    line: int
    is_async: bool
    params: Tuple[str, ...]
    calls: Tuple[CallSite, ...]

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def class_name(self) -> Optional[str]:
        if "." in self.qualname:
            return self.qualname.rsplit(".", 1)[0]
        return None

    @property
    def key(self) -> str:
        """Project-unique identity: ``module:qualname``."""
        return f"{self.module}:{self.qualname}"


@dataclass(frozen=True)
class ModuleInfo:
    """Everything the project model knows about one source file."""

    name: str
    path: str
    #: Local name -> dotted import target.  ``import numpy as np``
    #: yields ``{"np": "numpy"}``; ``from repro.serve.protocol import
    #: write_message`` yields ``{"write_message":
    #: "repro.serve.protocol.write_message"}``.
    imports: Mapping[str, str] = field(default_factory=dict)
    #: Qualname -> function/method info.
    functions: Mapping[str, FunctionInfo] = field(default_factory=dict)
    #: Dotted modules named in import statements (pre-filtering; the
    #: project graph keeps only edges to scanned modules).
    imported_modules: Tuple[str, ...] = ()


class ProjectModel:
    """The cross-file symbol/call index for one engine run."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules: Dict[str, ModuleInfo] = {m.name: m for m in modules}
        self.by_path: Dict[str, ModuleInfo] = {m.path: m for m in modules}

    # ------------------------------------------------------------------
    # Graph views
    # ------------------------------------------------------------------
    def import_graph(self) -> Dict[str, Tuple[str, ...]]:
        """Project-internal import edges, deterministically ordered."""
        graph: Dict[str, Tuple[str, ...]] = {}
        for name in sorted(self.modules):
            module = self.modules[name]
            edges = sorted(
                {
                    target
                    for target in module.imported_modules
                    if target in self.modules and target != name
                }
            )
            graph[name] = tuple(edges)
        return graph

    def functions(self) -> Iterator[FunctionInfo]:
        for name in sorted(self.modules):
            module = self.modules[name]
            for qualname in sorted(module.functions):
                yield module.functions[qualname]

    # ------------------------------------------------------------------
    # Call resolution
    # ------------------------------------------------------------------
    def resolve_call(
        self,
        module: ModuleInfo,
        caller: Optional[FunctionInfo],
        chain: Tuple[str, ...],
    ) -> Optional[FunctionInfo]:
        """Map a call chain to a project function, or ``None``.

        Handles, in order: ``self.method()`` within the caller's
        class; bare names (same module, then ``from``-imports);
        ``module.func()`` through ``import`` bindings; and
        ``Class.method()`` for same-module classes.  Everything else
        (attribute chains through objects, subscripts, dynamic
        dispatch) is out of scope by design.
        """
        if not chain or OPAQUE in chain:
            return None
        if chain[0] == "self" and caller is not None and len(chain) == 2:
            class_name = caller.class_name
            if class_name is None:
                return None
            return module.functions.get(f"{class_name}.{chain[1]}")
        if len(chain) == 1:
            name = chain[0]
            local = module.functions.get(name)
            if local is not None:
                return local
            target = module.imports.get(name)
            if target is not None:
                return self._resolve_dotted(target)
            return None
        if len(chain) == 2:
            base, attr = chain
            # Class.method in the same module.
            method = module.functions.get(f"{base}.{attr}")
            if method is not None:
                return method
            target = module.imports.get(base)
            if target is not None:
                return self._resolve_dotted(f"{target}.{attr}")
        return None

    def _resolve_dotted(self, dotted: str) -> Optional[FunctionInfo]:
        """``pkg.mod.func`` or ``pkg.mod.Class.func`` -> FunctionInfo."""
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = self.modules.get(".".join(parts[:split]))
            if module is None:
                continue
            qualname = ".".join(parts[split:])
            found = module.functions.get(qualname)
            if found is not None:
                return found
        return None

    def reachable_sync_callees(
        self,
        module: ModuleInfo,
        origin: FunctionInfo,
        max_depth: int,
    ) -> List[Tuple[FunctionInfo, CallSite, Tuple[str, ...]]]:
        """Sync functions reachable from ``origin`` via resolvable calls.

        Returns ``(callee, call_site_in_origin, evidence)`` triples
        where ``evidence`` lists the ``path:line`` hops from origin to
        callee.  The walk is depth-bounded and never follows into
        ``async def`` callees (those are charged to their own check).
        """
        out: List[Tuple[FunctionInfo, CallSite, Tuple[str, ...]]] = []
        seen: Set[str] = {origin.key}

        def walk(
            fn: FunctionInfo,
            root_site: Optional[CallSite],
            trail: Tuple[str, ...],
            depth: int,
        ) -> None:
            if depth > max_depth:
                return
            fn_module = self.modules.get(fn.module, module)
            for site in fn.calls:
                callee = self.resolve_call(fn_module, fn, site.chain)
                if callee is None or callee.is_async or callee.key in seen:
                    continue
                seen.add(callee.key)
                first = root_site if root_site is not None else site
                hop = (
                    f"{fn.path}:{site.line} {fn.qualname} calls "
                    f"{callee.qualname}"
                )
                out.append((callee, first, trail + (hop,)))
                walk(callee, first, trail + (hop,), depth + 1)

        walk(origin, None, (), 1)
        return out


# ---------------------------------------------------------------------------
# Extraction
# ---------------------------------------------------------------------------


def call_chain(node: ast.AST) -> Tuple[str, ...]:
    """Flatten ``a.b.c`` into ``("a", "b", "c")``; opaque steps -> "?"."""
    parts: List[str] = []
    current = node
    while True:
        if isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        elif isinstance(current, ast.Name):
            parts.append(current.id)
            break
        else:
            parts.append(OPAQUE)
            break
    return tuple(reversed(parts))


def _is_coroutine_wrapper(chain: Tuple[str, ...]) -> bool:
    return bool(chain) and chain[-1] in COROUTINE_WRAPPERS


class _FunctionCollector(ast.NodeVisitor):
    """Collects functions/methods and their call sites for one module."""

    def __init__(self, module_name: str, path: str) -> None:
        self.module_name = module_name
        self.path = path
        self.functions: Dict[str, FunctionInfo] = {}
        self._class_stack: List[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        # Nested classes are qualified with their outer class only one
        # level deep; deeper nesting collapses (out of scope).
        self._class_stack.append(node.name)
        for child in node.body:
            self.visit(child)
        self._class_stack.pop()

    def _handle_function(
        self, node: ast.AST, name: str, args: ast.arguments, is_async: bool
    ) -> None:
        qualname = (
            f"{self._class_stack[-1]}.{name}" if self._class_stack else name
        )
        params = tuple(
            arg.arg
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
        )
        calls = tuple(_collect_calls(node))
        # First definition wins; redefinitions (overloads, conditional
        # defs) keep the original anchor, which is enough for linting.
        self.functions.setdefault(
            qualname,
            FunctionInfo(
                module=self.module_name,
                qualname=qualname,
                path=self.path,
                line=getattr(node, "lineno", 1),
                is_async=is_async,
                params=params,
                calls=calls,
            ),
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._handle_function(node, node.name, node.args, is_async=False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._handle_function(node, node.name, node.args, is_async=True)


def _collect_calls(root: ast.AST) -> List[CallSite]:
    """Call sites in one function body, excluding nested ``def``s.

    The walk carries just enough parent context to mark each call as
    awaited (direct ``await call()``), a bare expression statement
    (``call()`` on its own line), or nested inside a
    coroutine-consuming wrapper (``asyncio.gather(call())``).
    """
    sites: List[CallSite] = []

    def walk(node: ast.AST, parent: Optional[ast.AST], wrapped: bool) -> None:
        if node is not root and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return  # nested defs own their calls
        child_wrapped = wrapped
        if isinstance(node, ast.Call):
            sites.append(
                CallSite(
                    chain=call_chain(node.func),
                    line=node.lineno,
                    col=node.col_offset,
                    awaited=isinstance(parent, ast.Await),
                    is_statement=isinstance(parent, ast.Expr),
                    in_wrapper=wrapped,
                )
            )
            if _is_coroutine_wrapper(call_chain(node.func)):
                child_wrapped = True
        for child in ast.iter_child_nodes(node):
            walk(child, node, child_wrapped)

    walk(root, None, False)
    sites.sort(key=lambda s: (s.line, s.col))
    return sites


def _module_imports(
    tree: ast.Module,
) -> Tuple[Dict[str, str], Tuple[str, ...]]:
    """Local import bindings plus the raw imported-module list."""
    bindings: Dict[str, str] = {}
    modules: List[str] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    bindings[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds the top-level name ``a``.
                    top = alias.name.split(".")[0]
                    bindings[top] = top
                modules.append(alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            modules.append(node.module)
            for alias in node.names:
                if alias.name == "*":
                    continue
                bindings[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return bindings, tuple(modules)


def module_name_for(path: Path) -> str:
    """Dotted module name, derived from the package structure on disk.

    Walks parent directories while an ``__init__.py`` marks them as
    packages, so both ``src/repro/serve/slotloop.py`` (->
    ``repro.serve.slotloop``) and synthetic test trees resolve without
    any project-specific configuration.
    """
    resolved = path.resolve()
    parts = [resolved.stem] if resolved.stem != "__init__" else []
    parent = resolved.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else resolved.stem


def module_info_from_tree(
    tree: ast.Module, path: str, module_name: str
) -> ModuleInfo:
    """Extract one module's symbols from an already-parsed AST."""
    collector = _FunctionCollector(module_name, path)
    for node in tree.body:
        collector.visit(node)
    bindings, imported = _module_imports(tree)
    return ModuleInfo(
        name=module_name,
        path=path,
        imports=bindings,
        functions=collector.functions,
        imported_modules=imported,
    )


def build_project_model(
    parsed: Sequence[Tuple[str, Path, ast.Module]],
) -> ProjectModel:
    """Build the model from ``(normalized_path, path, tree)`` triples."""
    modules: List[ModuleInfo] = []
    for normalized, path, tree in parsed:
        modules.append(
            module_info_from_tree(tree, normalized, module_name_for(path))
        )
    return ProjectModel(modules)


def single_module_model(
    tree: ast.Module, path: str, module_name: Optional[str] = None
) -> ProjectModel:
    """A one-module project, for snippet/fixture linting."""
    name = module_name if module_name is not None else Path(path).stem
    return ProjectModel([module_info_from_tree(tree, path, name)])


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------

CacheKey = Tuple[Tuple[str, int, int], ...]

#: Most-recent project models, keyed by every file's (path, mtime_ns,
#: size).  A handful of entries is plenty: the engine asks for one key
#: per run and editors re-lint the same tree repeatedly.
_CACHE: Dict[CacheKey, ProjectModel] = {}
_CACHE_MAX = 4


def cache_key(files: Sequence[Path]) -> CacheKey:
    """Stat-based key: any touched file invalidates the entry."""
    entries: List[Tuple[str, int, int]] = []
    for file_path in files:
        stat = file_path.stat()
        entries.append(
            (file_path.resolve().as_posix(), stat.st_mtime_ns, stat.st_size)
        )
    return tuple(sorted(entries))


def cached_project_model(
    key: CacheKey,
    parsed: Sequence[Tuple[str, Path, ast.Module]],
) -> ProjectModel:
    """The model for ``key``, building (and memoizing) on miss."""
    hit = _CACHE.get(key)
    if hit is not None:
        return hit
    model = build_project_model(parsed)
    if len(_CACHE) >= _CACHE_MAX:
        _CACHE.clear()
    _CACHE[key] = model
    return model


def clear_project_cache() -> None:
    """Drop every cached model (tests, long-lived processes)."""
    _CACHE.clear()
