"""Data model shared by the lint engine, rules, and reporters.

A :class:`Finding` is one rule violation anchored to a source location;
a :class:`ModuleContext` bundles everything a rule may inspect about one
file (path, parsed AST, raw lines).  Keeping both immutable makes the
engine trivially safe to run over many files and lets reporters sort
and serialize findings without defensive copies.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.lint.project import ProjectModel

#: Severity levels, ordered from most to least drastic.  ``error``
#: findings make the CLI exit nonzero; ``warning`` findings are
#: reported but do not gate.
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITIES: Tuple[str, ...] = (SEVERITY_ERROR, SEVERITY_WARNING)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a concrete source location."""

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str
    #: Cross-file evidence chain for flow-aware findings: ``path:line``
    #: hops explaining *why* the anchored line is a violation (e.g. the
    #: helper-call path from an ``async def`` down to ``time.sleep``).
    evidence: Tuple[str, ...] = ()

    def location(self) -> str:
        """``path:line:col`` — the clickable prefix of text reports."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (stable key order via dataclass order)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "evidence": list(self.evidence),
        }


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule can inspect about one parsed source file."""

    path: str
    tree: ast.Module
    lines: Tuple[str, ...]
    options: Mapping[str, object] = field(default_factory=dict)
    #: Whole-project analysis context; ``None`` when no enabled rule
    #: requested it (rules then degrade to single-module resolution).
    project: Optional["ProjectModel"] = None

    def option(self, name: str, default: object = None) -> object:
        """Rule-specific config option with a fallback."""
        return self.options.get(name, default)


@dataclass(frozen=True)
class LintReport:
    """Outcome of one engine run over a set of files."""

    findings: Tuple[Finding, ...]
    files_scanned: int
    rule_counts: Mapping[str, int]
    suppressed: int = 0
    #: Findings matched (and silenced) by a committed baseline file.
    baselined: int = 0
    #: Wall-clock cost per rule code (plus the ``project-model`` and
    #: ``parse`` pseudo-entries), in seconds.
    timings: Mapping[str, float] = field(default_factory=dict)

    @property
    def error_count(self) -> int:
        return sum(1 for f in self.findings if f.severity == SEVERITY_ERROR)

    @property
    def warning_count(self) -> int:
        return sum(1 for f in self.findings if f.severity == SEVERITY_WARNING)

    def has_errors(self) -> bool:
        return self.error_count > 0


def sort_findings(findings: List[Finding]) -> Tuple[Finding, ...]:
    """Deterministic report order: path, then line, then column."""
    return tuple(sorted(findings))
