"""Persistent performance benchmarks for the fast-path engine.

The harness times the two hot layers — the Algorithm 1 greedy
(reference loop vs heap fast path) and the trace simulator (slots/s,
serial vs process-pool episodes) — and appends the results to
``BENCH_allocator.json`` / ``BENCH_simulator.json`` so regressions
show up as history, not anecdotes.  Run it with
``python -m repro bench`` (see ``benchmarks/perf/README.md``).
"""

from repro.kernel.bench import bench_kernel
from repro.perf.bench import (
    BENCH_ALLOCATOR_FILE,
    BENCH_KERNEL_FILE,
    BENCH_SIMULATOR_FILE,
    bench_allocator,
    bench_simulator,
    persist_run,
)
from repro.perf.regression import (
    BENCH_FILES,
    CHECK_MODES,
    CHECK_RULES,
    CheckReport,
    CheckResult,
    CheckRule,
    check_bench,
    check_run,
    format_report,
    latest_run,
)
from repro.serve.bench import BENCH_SERVE_FILE, bench_serve

__all__ = [
    "BENCH_ALLOCATOR_FILE",
    "BENCH_FILES",
    "BENCH_KERNEL_FILE",
    "BENCH_SERVE_FILE",
    "BENCH_SIMULATOR_FILE",
    "CHECK_MODES",
    "CHECK_RULES",
    "CheckReport",
    "CheckResult",
    "CheckRule",
    "bench_allocator",
    "bench_kernel",
    "bench_serve",
    "bench_simulator",
    "check_bench",
    "check_run",
    "format_report",
    "latest_run",
    "persist_run",
]
