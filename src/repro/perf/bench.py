"""Benchmark the allocation engine and the trace simulator.

Two entry points, both pure functions returning JSON-ready dicts:

* :func:`bench_allocator` — solves random Algorithm 1 instances of
  growing size with the reference greedy loop and the heap fast path,
  checks the two agree exactly, and reports solves/s and speedup.
* :func:`bench_simulator` — times episode replay (slots/s, cold and
  warm cache) and the serial vs ``max_workers`` episode fan-out.

:func:`persist_run` appends a run to a ``BENCH_*.json`` history file
(bounded to the most recent :data:`HISTORY_LIMIT` runs) so successive
commits can be compared.  Wall-clock numbers are hardware-dependent;
every run records ``cpu_count`` and the python version alongside.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.allocation import DensityValueGreedyAllocator
from repro.errors import ConfigurationError
from repro.kernel.solver import solve_arrays
from repro.knapsack.greedy import combined_greedy
from repro.knapsack.problem import SeparableKnapsack
from repro.knapsack.random_instances import random_instance
from repro.simulation import workers
from repro.simulation.simulator import SimulationConfig, TraceSimulator

BENCH_ALLOCATOR_FILE = "BENCH_allocator.json"
BENCH_SIMULATOR_FILE = "BENCH_simulator.json"
BENCH_KERNEL_FILE = "BENCH_kernel.json"
#: Runs kept per history file.
HISTORY_LIMIT = 20
#: Largest instance the O(N^2)-ish reference loop is timed on; above
#: it the heap and array solvers are compared against each other.
REFERENCE_SIZE_LIMIT = 2000


def _best_of(repeats: int, fn) -> float:
    """Minimum wall-clock over ``repeats`` calls (noise-robust)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _instance_arrays(problem: SeparableKnapsack):
    """Flat ``(values, weights, caps)`` view of a rectangular instance."""
    values = np.array([item.values for item in problem.items], dtype=float)
    weights = np.array([item.weights for item in problem.items], dtype=float)
    caps = np.array([item.cap for item in problem.items], dtype=float)
    return values, weights, caps


def bench_allocator(
    sizes: Sequence[int] = (5, 30, 100, 1000, 10000),
    repeats: int = 3,
    num_options: int = 6,
    seed: int = 0,
) -> Dict:
    """Time reference vs heap vs array greedy per instance size.

    Each size gets one fixed random instance (same ``seed`` → same
    instance across runs), solved ``repeats`` times per strategy; the
    minimum time is reported.  All strategies must return bit-identical
    solutions — a mismatch fails the benchmark loudly rather than
    reporting a meaningless speedup.  The quadratic-ish reference loop
    is only timed up to :data:`REFERENCE_SIZE_LIMIT` items
    (``reference_s`` is ``null`` beyond it); heap vs array covers the
    large sizes.
    """
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    rng = np.random.default_rng(seed)
    results: List[Dict] = []
    for num_items in sizes:
        problem = random_instance(
            rng, num_items=num_items, num_options=num_options, tightness=0.4
        )
        heap = combined_greedy(problem, strategy="heap")
        if num_items <= REFERENCE_SIZE_LIMIT:
            reference = combined_greedy(problem, strategy="reference")
            if reference.options != heap.options:
                raise ConfigurationError(
                    f"heap and reference disagree at N={num_items}: "
                    f"{heap.options} != {reference.options}"
                )
            t_ref = _best_of(
                repeats, lambda: combined_greedy(problem, strategy="reference")
            )
        else:
            t_ref = None
        values, weights, caps = _instance_arrays(problem)
        array = solve_arrays(values, weights, problem.budget, caps=caps)
        if array is None or array.options != heap.options:
            raise ConfigurationError(
                f"array solver disagrees with heap at N={num_items}: "
                f"{None if array is None else array.options} != {heap.options}"
            )
        t_heap = _best_of(
            repeats, lambda: combined_greedy(problem, strategy="heap")
        )
        t_array = _best_of(
            repeats,
            lambda: solve_arrays(values, weights, problem.budget, caps=caps),
        )
        results.append(
            {
                "num_items": int(num_items),
                "num_options": int(num_options),
                "reference_s": t_ref,
                "heap_s": t_heap,
                "array_s": t_array,
                "reference_solves_per_s": (
                    1.0 / t_ref if t_ref is not None else None
                ),
                "heap_solves_per_s": 1.0 / t_heap,
                "array_solves_per_s": 1.0 / t_array,
                "speedup": t_ref / t_heap if t_ref is not None else None,
                "array_speedup": t_heap / t_array,
                "solutions_identical": True,
            }
        )
    return {"kind": "allocator", "repeats": int(repeats), "sizes": results}


def bench_simulator(
    num_users: int = 5,
    num_slots: int = 600,
    num_episodes: int = 4,
    max_workers: int = 4,
    seed: int = 0,
) -> Dict:
    """Time episode replay and the parallel episode fan-out.

    Reports slots/s for a cold simulator (first episode pays schedule
    generation and prediction precompute) and a warm one, then the
    serial vs ``max_workers`` wall-clock over ``num_episodes``
    episodes.  When a pool cannot pay for itself — single episode,
    single-core box (see
    :func:`~repro.simulation.workers.parallel_decision`) — the run
    records ``parallel_fallback: true`` with the reason instead of a
    meaningless sub-1.0 speedup; the ``max_workers`` arm is still
    replayed (it takes the serial path internally) and must match.
    """
    config = SimulationConfig(
        num_users=num_users, duration_slots=num_slots, seed=seed
    )
    allocator = DensityValueGreedyAllocator()

    sim = TraceSimulator(config)
    start = time.perf_counter()
    sim.run_episode(allocator, 0)
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    sim.run_episode(allocator, 0)
    warm_s = time.perf_counter() - start

    serial_sim = TraceSimulator(config)
    start = time.perf_counter()
    serial = serial_sim.run(allocator, num_episodes=num_episodes)
    serial_s = time.perf_counter() - start

    decision = workers.parallel_decision(num_episodes, max_workers)
    parallel_sim = TraceSimulator(config)
    start = time.perf_counter()
    parallel = parallel_sim.run(
        allocator, num_episodes=num_episodes, max_workers=max_workers
    )
    parallel_s = time.perf_counter() - start

    identical = [
        (a.episode, [u.qoe for u in a.users])
        for a in serial.episodes
    ] == [
        (b.episode, [u.qoe for u in b.users])
        for b in parallel.episodes
    ]
    if not identical:
        raise ConfigurationError("parallel episodes diverged from serial")

    return {
        "kind": "simulator",
        "num_users": int(num_users),
        "num_slots": int(num_slots),
        "num_episodes": int(num_episodes),
        "max_workers": int(max_workers),
        "cold_slots_per_s": num_slots / cold_s,
        "warm_slots_per_s": num_slots / warm_s,
        "serial_s": serial_s,
        "parallel_s": parallel_s if decision.use_parallel else None,
        "parallel_speedup": (
            serial_s / parallel_s if decision.use_parallel else None
        ),
        "parallel_fallback": not decision.use_parallel,
        "parallel_reason": decision.reason,
        "parallel_matches_serial": True,
    }


def persist_run(
    payload: Dict, path: Union[str, Path], now: Optional[float] = None
) -> Dict:
    """Append a benchmark run to a bounded JSON history file.

    The file holds ``{"latest": <run>, "runs": [<run>, ...]}`` with
    the newest run last; corrupt or foreign files are replaced rather
    than crashed on.  Returns the document written.
    """
    path = Path(path)
    run = dict(payload)
    run["timestamp"] = time.time() if now is None else now
    run["python"] = platform.python_version()
    run["cpu_count"] = os.cpu_count()
    runs: List[Dict] = []
    if path.exists():
        try:
            document = json.loads(path.read_text())
            previous = document.get("runs", [])
            if isinstance(previous, list):
                runs = [r for r in previous if isinstance(r, dict)]
        except (ValueError, OSError):
            runs = []
    runs.append(run)
    runs = runs[-HISTORY_LIMIT:]
    document = {"latest": run, "runs": runs}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document
