"""The bench regression gate: fresh run vs committed baselines.

``repro bench --check`` reruns the benchmark suite and diffs each
fresh run against the *latest* run in the committed ``BENCH_*.json``
histories, under per-metric rules:

* ``expect_true``  — invariants (solutions identical, parallel
  matches serial, overhead within budget): the fresh run must hold
  them regardless of the baseline;
* ``abs_drop``     — quality floors (deadline hit rates, users
  sustained): fail when the fresh value drops more than ``tolerance``
  below the baseline;
* ``ratio_min``    — speedups: fail when the fresh value falls below
  ``baseline * (1 - tolerance)``.  Wall-clock ratios on a noisy
  shared box swing hard, so the tolerances are wide — the gate
  catches an optimisation being *lost* (10x regressions), not 10%
  jitter;
* ``abs_ceiling``  — costs (observability overhead %, missed
  reports): fail when the fresh value exceeds the baseline by more
  than ``tolerance``.

Row-shaped runs (allocator sizes, serve fleets, scale clusters) match
rows by their key column; quick runs produce a subset of rows and
only the intersection is compared.  A metric that is ``null`` on
either side (e.g. the untimed reference loop at large N) is skipped,
never failed — the gate judges what both runs measured.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Comparison modes, see module docstring.
CHECK_MODES = ("expect_true", "abs_drop", "ratio_min", "abs_ceiling")

#: History file per bench kind (the ``persist_run`` targets).
BENCH_FILES: Mapping[str, str] = {
    "allocator": "BENCH_allocator.json",
    "simulator": "BENCH_simulator.json",
    "kernel": "BENCH_kernel.json",
    "serve": "BENCH_serve.json",
    "obs": "BENCH_obs.json",
    "scale": "BENCH_scale.json",
}


@dataclass(frozen=True)
class CheckRule:
    """One metric's comparison contract.

    ``rows``/``row_key`` point the rule at a list of per-size rows
    (``sizes``/``fleets``/``clusters``) matched on the key column;
    without them the rule reads the run's top level.  ``metric`` is a
    dotted path (``predictor.speedup``).

    Scale guards keep quick CI runs honest: ``scale_keys`` names
    run-level fields (population sizes, slot counts) that must match
    between baseline and current for the comparison to mean anything
    — a kernel speedup measured at 500 users says nothing about the
    10k-user baseline.  ``same_rows`` requires both runs to hold the
    *same* row-key set (a ``users_sustained`` from a 2-user quick
    fleet cannot be held to an 8-user baseline).  A guard mismatch
    *skips* the check (reported, never failed).
    """

    metric: str
    mode: str
    tolerance: float = 0.0
    rows: Optional[str] = None
    row_key: Optional[str] = None
    scale_keys: Tuple[str, ...] = ()
    same_rows: Optional[Tuple[str, str]] = None


#: The gate's rule book, by bench kind.
CHECK_RULES: Mapping[str, Tuple[CheckRule, ...]] = {
    "allocator": (
        CheckRule("solutions_identical", "expect_true",
                  rows="sizes", row_key="num_items"),
        CheckRule("speedup", "ratio_min", 0.8,
                  rows="sizes", row_key="num_items"),
        CheckRule("array_speedup", "ratio_min", 0.8,
                  rows="sizes", row_key="num_items"),
    ),
    "simulator": (
        CheckRule("parallel_matches_serial", "expect_true"),
        CheckRule("warm_slots_per_s", "ratio_min", 0.8,
                  scale_keys=("num_users",)),
    ),
    "kernel": (
        CheckRule("solutions_identical", "expect_true"),
        CheckRule("predictor.identical", "expect_true"),
        CheckRule("coverage.identical", "expect_true"),
        CheckRule("speedup", "ratio_min", 0.8,
                  scale_keys=("num_users",)),
        CheckRule("predictor.speedup", "ratio_min", 0.8,
                  scale_keys=("num_users",)),
        CheckRule("coverage.speedup", "ratio_min", 0.8,
                  scale_keys=("num_users",)),
    ),
    "serve": (
        CheckRule("users_sustained", "abs_drop", 4.0,
                  same_rows=("fleets", "users")),
        CheckRule("deadline_hit_rate", "abs_drop", 0.25,
                  rows="fleets", row_key="users"),
        CheckRule("missed_reports", "abs_ceiling", 50.0,
                  rows="fleets", row_key="users"),
        # The binary codec must stay ahead of JSON in the
        # encode+decode micro-bench: a generous floor (half the
        # baseline ratio) so shared-box noise passes but losing the
        # optimisation — v2 falling back to JSON-speed — fails.
        CheckRule("protocol.codec_speedup", "ratio_min", 0.5),
        # The multiplexed run is the codec's capacity claim; judge it
        # only against a baseline driving the same virtual-client
        # population.
        CheckRule("protocol.mux.deadline_hit_rate", "abs_drop", 0.25,
                  scale_keys=("protocol.mux.clients",)),
        CheckRule("protocol.mux.missed_reports", "abs_ceiling", 200.0,
                  scale_keys=("protocol.mux.clients",)),
    ),
    "obs": (
        # The 5% budget verdict is only stable at full measurement
        # scale; a 1-repeat quick run answers with timing noise.
        CheckRule("within_budget", "expect_true",
                  scale_keys=("users", "slots", "repeats")),
        CheckRule("overhead_pct", "abs_ceiling", 30.0),
    ),
    "scale": (
        CheckRule("users_sustained", "abs_drop", 4.0,
                  same_rows=("clusters", "shards")),
        CheckRule("deadline_hit_rate", "abs_drop", 0.25,
                  rows="clusters", row_key="shards"),
        CheckRule("missed_reports", "abs_ceiling", 50.0,
                  rows="clusters", row_key="shards"),
    ),
}


@dataclass(frozen=True)
class CheckResult:
    """One metric comparison's outcome."""

    kind: str
    metric: str
    mode: str
    context: str
    passed: bool
    baseline: Optional[float]
    current: Optional[float]
    detail: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "metric": self.metric,
            "mode": self.mode,
            "context": self.context,
            "passed": self.passed,
            "baseline": self.baseline,
            "current": self.current,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class CheckReport:
    """The gate's full verdict across every compared kind.

    ``skipped_checks`` names comparisons a scale guard disarmed (the
    runs measured different populations) — listed, never silently
    dropped, so a report that skipped everything reads as such.
    """

    results: Tuple[CheckResult, ...]
    skipped_kinds: Tuple[str, ...]
    skipped_checks: Tuple[str, ...] = ()

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    @property
    def failures(self) -> Tuple[CheckResult, ...]:
        return tuple(r for r in self.results if not r.passed)

    def to_dict(self) -> Dict[str, object]:
        return {
            "passed": self.passed,
            "checks": len(self.results),
            "failures": [r.to_dict() for r in self.failures],
            "results": [r.to_dict() for r in self.results],
            "skipped_kinds": list(self.skipped_kinds),
            "skipped_checks": list(self.skipped_checks),
        }


def latest_run(path: Path) -> Optional[Dict[str, object]]:
    """The newest run in one ``BENCH_*.json`` history (None if unusable)."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(document, dict):
        return None
    latest = document.get("latest")
    if isinstance(latest, dict):
        return latest
    runs = document.get("runs")
    if isinstance(runs, list) and runs and isinstance(runs[-1], dict):
        run: Dict[str, object] = runs[-1]
        return run
    return None


def _lookup(run: Mapping[str, object], dotted: str) -> object:
    node: object = run
    for part in dotted.split("."):
        if not isinstance(node, Mapping):
            return None
        node = node.get(part)
    return node


def _as_float(value: object) -> Optional[float]:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    return None


def _compare(
    kind: str,
    rule: CheckRule,
    context: str,
    baseline_value: object,
    current_value: object,
) -> Optional[CheckResult]:
    """Apply one rule; None when the comparison has nothing to judge."""
    current = _as_float(current_value)
    if rule.mode == "expect_true":
        if current_value is None:
            return None
        passed = bool(current_value)
        detail = "holds" if passed else "expected true, got false"
        return CheckResult(
            kind, rule.metric, rule.mode, context, passed,
            _as_float(baseline_value), current, detail,
        )
    baseline = _as_float(baseline_value)
    if baseline is None or current is None:
        return None
    if rule.mode == "abs_drop":
        floor = baseline - rule.tolerance
        passed = current >= floor
        detail = f"{current:.4g} vs floor {floor:.4g} (baseline {baseline:.4g})"
    elif rule.mode == "ratio_min":
        floor = baseline * (1.0 - rule.tolerance)
        passed = current >= floor
        detail = f"{current:.4g} vs floor {floor:.4g} (baseline {baseline:.4g})"
    elif rule.mode == "abs_ceiling":
        ceiling = baseline + rule.tolerance
        passed = current <= ceiling
        detail = (
            f"{current:.4g} vs ceiling {ceiling:.4g} (baseline {baseline:.4g})"
        )
    else:
        raise ConfigurationError(
            f"unknown check mode {rule.mode!r}; expected one of {CHECK_MODES}"
        )
    return CheckResult(
        kind, rule.metric, rule.mode, context, passed, baseline, current,
        detail,
    )


def _row_index(
    run: Mapping[str, object], rows: str, row_key: str
) -> Dict[float, Mapping[str, object]]:
    index: Dict[float, Mapping[str, object]] = {}
    entries = run.get(rows)
    if not isinstance(entries, list):
        return index
    for entry in entries:
        if not isinstance(entry, Mapping):
            continue
        key = _as_float(entry.get(row_key))
        if key is not None:
            index[key] = entry
    return index


def _guard_skips(
    kind: str,
    rule: CheckRule,
    baseline: Mapping[str, object],
    current: Mapping[str, object],
) -> Optional[str]:
    """The skip reason when a scale guard disarms this rule, else None."""
    for key in rule.scale_keys:
        if _lookup(baseline, key) != _lookup(current, key):
            return (
                f"{kind}.{rule.metric}: {key} differs "
                f"({_lookup(baseline, key)!r} vs {_lookup(current, key)!r})"
            )
    if rule.same_rows is not None:
        rows, row_key = rule.same_rows
        baseline_keys = set(_row_index(baseline, rows, row_key))
        current_keys = set(_row_index(current, rows, row_key))
        if baseline_keys != current_keys:
            return (
                f"{kind}.{rule.metric}: {rows} cover different "
                f"{row_key} sets"
            )
    return None


def check_run(
    kind: str,
    baseline: Mapping[str, object],
    current: Mapping[str, object],
) -> Tuple[List[CheckResult], List[str]]:
    """Diff one fresh run against its baseline under the rule book.

    Returns ``(results, skipped)`` — ``skipped`` holds the names of
    comparisons a scale guard disarmed.
    """
    results: List[CheckResult] = []
    skipped: List[str] = []
    for rule in CHECK_RULES.get(kind, ()):
        reason = _guard_skips(kind, rule, baseline, current)
        if reason is not None:
            skipped.append(reason)
            continue
        if rule.rows is None or rule.row_key is None:
            outcome = _compare(
                kind, rule, "-",
                _lookup(baseline, rule.metric), _lookup(current, rule.metric),
            )
            if outcome is not None:
                results.append(outcome)
            continue
        baseline_rows = _row_index(baseline, rule.rows, rule.row_key)
        current_rows = _row_index(current, rule.rows, rule.row_key)
        for key in sorted(set(baseline_rows) & set(current_rows)):
            outcome = _compare(
                kind, rule, f"{rule.row_key}={key:g}",
                _lookup(baseline_rows[key], rule.metric),
                _lookup(current_rows[key], rule.metric),
            )
            if outcome is not None:
                results.append(outcome)
    return results, skipped


def check_bench(
    runs: Mapping[str, Mapping[str, object]],
    baseline_dir: Path,
) -> CheckReport:
    """Gate a set of fresh runs against the baselines in one directory.

    ``runs`` maps bench kind to the freshly produced run dict.  A kind
    with no readable baseline history is *skipped* (reported, never
    failed): a brand-new benchmark cannot regress.
    """
    results: List[CheckResult] = []
    skipped_kinds: List[str] = []
    skipped_checks: List[str] = []
    for kind in sorted(runs):
        if kind not in BENCH_FILES:
            raise ConfigurationError(
                f"unknown bench kind {kind!r}; expected some of "
                f"{tuple(sorted(BENCH_FILES))}"
            )
        baseline = latest_run(baseline_dir / BENCH_FILES[kind])
        if baseline is None:
            skipped_kinds.append(kind)
            continue
        kind_results, kind_skipped = check_run(kind, baseline, runs[kind])
        results.extend(kind_results)
        skipped_checks.extend(kind_skipped)
    return CheckReport(
        results=tuple(results),
        skipped_kinds=tuple(skipped_kinds),
        skipped_checks=tuple(skipped_checks),
    )


def format_report(report: CheckReport) -> List[str]:
    """Human-readable gate verdict for the bench CLI."""
    lines: List[str] = []
    for result in report.results:
        state = "ok  " if result.passed else "FAIL"
        lines.append(
            f"{state}  {result.kind}.{result.metric} "
            f"[{result.context}] ({result.mode}): {result.detail}"
        )
    for kind in report.skipped_kinds:
        lines.append(f"skip  {kind}: no baseline history")
    for reason in report.skipped_checks:
        lines.append(f"skip  {reason}")
    verdict = "PASS" if report.passed else "FAIL"
    lines.append(
        f"bench check: {verdict} "
        f"({len(report.results)} check(s), "
        f"{len(report.failures)} failure(s))"
    )
    if not report.passed:
        names = ", ".join(
            f"{r.kind}.{r.metric}[{r.context}]" for r in report.failures
        )
        lines.append(f"regressed: {names}")
    return lines


__all__ = [
    "BENCH_FILES",
    "CHECK_MODES",
    "CHECK_RULES",
    "CheckReport",
    "CheckResult",
    "CheckRule",
    "check_bench",
    "check_run",
    "format_report",
    "latest_run",
]
