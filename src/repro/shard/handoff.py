"""The versioned session-handoff blob and its capture/install codec.

A live migration moves one session between shards without losing QoE
state: the source shard's coordinator hook captures the seat into a
*handoff blob* — a JSON-friendly, versioned document holding the
session identity, its resume token, the wire counters, the full
per-seat planning state (:meth:`repro.system.server.EdgeServer.
export_seat`), and the seat's telemetry records — and the target
shard installs it onto a parked seat that the client then claims
through the ordinary resume path.

Capture and install use only public serve APIs, so the blob is also
the compatibility contract between shard releases: ``version`` gates
the schema, and an unknown version is rejected rather than guessed
at.  Telemetry records keep their *source* slot numbers (each shard
has its own slot timeline); only the seat index is rewritten.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

from repro.errors import ConfigurationError, ObservabilityError
from repro.serve.server import VrServeServer
from repro.serve.sessions import Session
from repro.system.telemetry import SlotUserRecord

#: Schema tag of the handoff blob.
HANDOFF_SCHEMA_KIND = "repro.shard.handoff"
#: Version written by this build.  v2 added ``trace_id`` (the stable
#: per-session trace identity stitched across shards).
HANDOFF_SCHEMA_VERSION = 2

#: Versions this build can install.  v1 blobs (no ``trace_id``) are
#: accepted with an empty trace identity.
HANDOFF_SUPPORTED_VERSIONS = (1, 2)

#: Session wire counters carried across a migration, in blob order.
COUNTER_FIELDS = (
    "planned_slots",
    "missed_reports",
    "late_reports",
    "dropped_frames",
    "resumes",
    "corrupt_frames",
)


def _blob_int(blob: Mapping[str, Any], key: str) -> int:
    value = blob.get(key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(
            f"handoff field {key!r} must be an int, got {value!r}"
        )
    return value


def _blob_str(blob: Mapping[str, Any], key: str) -> str:
    value = blob.get(key)
    if not isinstance(value, str):
        raise ConfigurationError(
            f"handoff field {key!r} must be a string, got {value!r}"
        )
    return value


def _blob_float(blob: Mapping[str, Any], key: str) -> float:
    value = blob.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"handoff field {key!r} must be a number, got {value!r}"
        )
    return float(value)


def capture_seat(
    server: VrServeServer, session: Session, source_shard: int
) -> Dict[str, Any]:
    """Snapshot one session into a handoff blob.

    Destructive only for telemetry: the seat's records move into the
    blob (they belong to the session, not the shard).  Everything
    else is a read, so a capture that is later abandoned leaves the
    source seat intact.
    """
    seat = session.seat
    return {
        "kind": HANDOFF_SCHEMA_KIND,
        "version": HANDOFF_SCHEMA_VERSION,
        "client": session.client,
        "token": session.token,
        "trace_id": session.trace_id,
        "guideline_mbps": session.guideline_mbps,
        "source_shard": source_shard,
        "source_seat": seat,
        "source_slot": server.slot_loop.slots_run,
        "joined_slot": session.joined_slot,
        "counters": {
            field: getattr(session, field) for field in COUNTER_FIELDS
        },
        "seat": server.edge.export_seat(seat),
        "telemetry": [
            record.as_dict()
            for record in server.metrics.telemetry.extract_user(seat)
        ],
    }


def install_seat(server: VrServeServer, blob: Mapping[str, Any]) -> Session:
    """Install a handoff blob onto the target shard.

    The session lands *parked* (detached, no transport) on the lowest
    free seat, carrying its source token; the client re-attaches
    through the ordinary resume path and is excluded from the report
    barrier until its first plan frame arrives, so a migration can
    never be charged a missed report.  Raises
    :class:`~repro.errors.ConfigurationError` on a schema mismatch or
    a full shard, before any state is touched.
    """
    if blob.get("kind") != HANDOFF_SCHEMA_KIND:
        raise ConfigurationError(
            f"not a handoff blob: kind={blob.get('kind')!r} "
            f"(expected {HANDOFF_SCHEMA_KIND!r})"
        )
    version = blob.get("version")
    if version not in HANDOFF_SUPPORTED_VERSIONS:
        raise ConfigurationError(
            f"unsupported handoff version {version!r} "
            f"(this build speaks {HANDOFF_SUPPORTED_VERSIONS})"
        )
    client = _blob_str(blob, "client")
    token = _blob_str(blob, "token")
    trace_id = _blob_str(blob, "trace_id") if "trace_id" in blob else ""
    if not token:
        raise ConfigurationError(
            "handoff blob carries an empty resume token; the client "
            "could never claim the migrated seat"
        )
    guideline = _blob_float(blob, "guideline_mbps")
    counters = blob.get("counters")
    if not isinstance(counters, Mapping):
        raise ConfigurationError("handoff field 'counters' must be an object")
    seat_state = blob.get("seat")
    if not isinstance(seat_state, Mapping):
        raise ConfigurationError("handoff field 'seat' must be an object")
    telemetry = blob.get("telemetry")
    if not isinstance(telemetry, list):
        raise ConfigurationError("handoff field 'telemetry' must be a list")
    counter_values = {
        field: _blob_int(counters, field) for field in COUNTER_FIELDS
    }

    slot = server.slot_loop.slots_run
    session = server.registry.install_detached(
        client,
        guideline_mbps=guideline,
        joined_slot=slot,
        token=token,
        slot=slot,
        trace_id=trace_id,
    )
    try:
        server.edge.import_seat(session.seat, seat_state)
        records: List[SlotUserRecord] = []
        for raw in telemetry:
            record = SlotUserRecord.from_dict(raw)
            payload = record.as_dict()
            payload["user"] = session.seat
            records.append(SlotUserRecord.from_dict(payload))
    except (ConfigurationError, ObservabilityError):
        # Undo the provisional admission so a malformed blob cannot
        # strand a half-installed parked seat on the target.
        server.registry.release(session.seat)
        server.edge.reset_user(session.seat)
        raise
    for field, value in counter_values.items():
        setattr(session, field, value)
    server.metrics.telemetry.ingest(records)
    server.metrics.record_migration_in()
    return session
