"""Configuration of a multi-shard serving cluster.

A :class:`ShardClusterConfig` turns one per-shard
:class:`~repro.serve.config.ServeConfig` template into ``num_shards``
slot-loop shards behind a coordinator.  Shard ``i`` runs the template
with ``shard_index = i`` and experiment seed ``base_seed + i`` — shard
0 keeps the base seed untouched, which is what makes a one-shard
cluster's slot loop bit-identical to a plain single-server run (the
inertness contract the shard tests pin down).

The cluster-level fault schedule carries only the shard kinds
(``shard_kill`` / ``migration_stall``); seat-level kinds belong on the
per-shard serve configs and are rejected here so a script aimed at the
wrong layer fails loudly instead of silently doing nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional

from repro.errors import ConfigurationError
from repro.faults.schedule import SHARD_KINDS, FaultSchedule
from repro.serve.config import ServeConfig, resume_enabled


def derive_trace_path(trace_path: str, tag: str) -> str:
    """A sibling trace file tagged for one cluster member.

    ``traces/run.jsonl`` + ``shard0`` → ``traces/run.shard0.jsonl``.
    Every shard (and the coordinator) must write its *own* stream: a
    shared path would interleave headers and spans from N processes
    into one unreadable file.
    """
    path = Path(trace_path)
    return str(path.with_name(f"{path.stem}.{tag}{path.suffix}"))


@dataclass(frozen=True)
class ShardClusterConfig:
    """One coordinator plus ``num_shards`` slot-loop shards.

    Parameters
    ----------
    base:
        The per-shard serve template.  Its ``host``/``port`` name the
        *coordinator's* listening endpoint; every shard binds an
        ephemeral port on the same host.  Its ``experiment.num_users``
        is the per-shard seat capacity.
    num_shards:
        Shards in the cluster.  ``1`` is a valid (inert) cluster.
    expect_clients:
        Cluster-wide readiness quorum: the coordinator releases every
        shard's slot loop only once this many sessions are ready
        across the whole cluster.  (The per-shard ``expect_clients``
        is not used — readiness is a cluster property here.)
    faults:
        Optional shard-level fault schedule.  Only the shard kinds
        are allowed, and their ``seat`` field (the shard index) must
        name a shard of this cluster.  Scheduling a ``shard_kill``
        requires session resume to be enabled on ``base`` — migration
        parks seats on the target shard until their clients reconnect,
        which is the resume path.
    metrics_host / metrics_port:
        Cluster-level observability endpoint (federated ``/metrics``,
        rolled-up ``/healthz``, merged ``/snapshot``) served by the
        coordinator.  ``metrics_port=None`` disables it, ``0`` binds
        an ephemeral port.
    """

    base: ServeConfig
    num_shards: int = 1
    expect_clients: int = 1
    faults: Optional[FaultSchedule] = None
    metrics_host: str = "127.0.0.1"
    metrics_port: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        capacity = self.num_shards * self.base.max_users
        if not 1 <= self.expect_clients <= capacity:
            raise ConfigurationError(
                f"expect_clients must be in [1, {capacity}], "
                f"got {self.expect_clients}"
            )
        if self.faults is not None:
            for event in self.faults.events:
                if event.kind not in SHARD_KINDS:
                    raise ConfigurationError(
                        f"cluster fault schedules hold shard kinds only "
                        f"({SHARD_KINDS}); move {event.kind!r} events onto "
                        "the per-shard serve config"
                    )
                if event.seat >= self.num_shards:
                    raise ConfigurationError(
                        f"fault event targets shard {event.seat} but the "
                        f"cluster has {self.num_shards} shard(s)"
                    )
            if self.faults.events and not resume_enabled(self.base):
                raise ConfigurationError(
                    "shard-level faults migrate live sessions, which needs "
                    "session resume enabled on the base config "
                    "(resume_grace_s in lockstep, resume_grace_slots paced)"
                )

    @property
    def seats_per_shard(self) -> int:
        """Admission capacity of each shard."""
        return self.base.max_users

    @property
    def total_seats(self) -> int:
        """Admission capacity of the whole cluster."""
        return self.num_shards * self.base.max_users

    def shard_config(self, index: int) -> ServeConfig:
        """The serve config shard ``index`` runs.

        Seed ``base_seed + index`` keeps the shards' emulated data
        planes (guideline draws, fading, RTP loss) independent while
        leaving shard 0 — hence a one-shard cluster — on the exact
        base stream.  The shard binds an ephemeral port; the base
        ``port`` belongs to the coordinator.  A seat-level fault
        schedule on the template stays with shard 0 only: its (slot,
        seat) coordinates address the base seat numbering, which only
        shard 0 preserves.
        """
        if not 0 <= index < self.num_shards:
            raise ConfigurationError(
                f"shard index must be in [0, {self.num_shards}), got {index}"
            )
        experiment = replace(
            self.base.experiment, seed=self.base.experiment.seed + index
        )
        obs = self.base.obs
        if obs.trace_path is not None or obs.flight_dir is not None:
            # Each shard writes its own trace stream and flight dumps;
            # a shared path would interleave N processes into one file.
            obs = replace(
                obs,
                trace_path=(
                    derive_trace_path(obs.trace_path, f"shard{index}")
                    if obs.trace_path is not None
                    else None
                ),
                flight_dir=(
                    str(Path(obs.flight_dir) / f"shard{index}")
                    if obs.flight_dir is not None
                    else None
                ),
            )
        return replace(
            self.base,
            experiment=experiment,
            obs=obs,
            port=0,
            expect_clients=1,
            shard_index=index,
            faults=self.base.faults if index == 0 else None,
        )
