"""Deterministic client-to-shard routing with a migration override table.

Every client has a *home shard* — a stable seeded hash of its name —
so the same cluster seed always routes the same fleet the same way,
which is what lets the chaos tests assert one migration timeline per
seed.  On top of the hash sits an override table: a migrated session
is pinned to its new shard, and join-time rebalancing pins a client
whose home shard is full to the least-loaded shard with a free seat
(lowest index on ties, keeping the choice deterministic).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Sequence

from repro.errors import ConfigurationError


class SessionRouter:
    """Maps client names to shard indices.

    ``route`` is the only stateful entry point: it may pin an
    override when it rebalances.  Everything else is a pure read, so
    the coordinator can ask "where does this client live" without
    perturbing the table.
    """

    def __init__(self, seed: int, num_shards: int) -> None:
        if num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        self.seed = seed
        self.num_shards = num_shards
        self._overrides: Dict[str, int] = {}

    def home_shard(self, client: str) -> int:
        """The stable hash assignment (ignores overrides)."""
        material = f"{self.seed}:{client}".encode("utf-8")
        digest = hashlib.sha256(material).digest()
        return int.from_bytes(digest[:8], "big") % self.num_shards

    def assignment(self, client: str) -> int:
        """Where this client currently belongs (override, else home)."""
        return self._overrides.get(client, self.home_shard(client))

    def override(self, client: str) -> Optional[int]:
        """The pinned shard, or None when the client is on its hash."""
        return self._overrides.get(client)

    def pin(self, client: str, shard: int) -> None:
        """Pin a client to a shard (a migration landed it there)."""
        if not 0 <= shard < self.num_shards:
            raise ConfigurationError(
                f"shard must be in [0, {self.num_shards}), got {shard}"
            )
        if shard == self.home_shard(client):
            # Back on the hash: the table stays minimal, so a fleet
            # that migrates home leaves no routing residue.
            self._overrides.pop(client, None)
        else:
            self._overrides[client] = shard

    def route(self, client: str, free_seats: Sequence[int]) -> int:
        """Pick the shard a joining client should be redirected to.

        ``free_seats[i]`` is shard ``i``'s free capacity; a negative
        value marks a dead shard.  The current assignment wins when it
        is alive with a free seat; otherwise the client is rebalanced
        to the shard with the most free seats (lowest index on ties)
        and pinned there.  With every live shard full, the
        lowest-index live shard is chosen so its admission policy can
        issue the capacity reject, exactly as a standalone server
        would; a cluster with no live shard at all raises.
        """
        if len(free_seats) != self.num_shards:
            raise ConfigurationError(
                f"expected {self.num_shards} shard loads, "
                f"got {len(free_seats)}"
            )
        shard = self.assignment(client)
        if free_seats[shard] > 0:
            return shard
        best = -1
        best_free = 0
        for index, free in enumerate(free_seats):
            if free > best_free:
                best, best_free = index, free
        if best >= 0:
            self.pin(client, best)
            return best
        if free_seats[shard] == 0:
            return shard
        for index, free in enumerate(free_seats):
            if free == 0:
                return index
        raise ConfigurationError("no live shard to route to")
