"""The shard coordinator: one front door over N slot-loop shards.

The coordinator owns the cluster's listening endpoint.  A joining
client connects there, is routed by the seeded
:class:`~repro.shard.router.SessionRouter` (stable hash + override
table, rebalanced on join), and receives a
:class:`~repro.serve.protocol.Redirect` to its shard's real port —
the coordinator never proxies frames, it only hands out addresses.
Readiness is a cluster property: every shard's slot loop is released
only once ``expect_clients`` sessions are ready across the whole
cluster, so a multi-shard lockstep run starts all its timelines from
the same gate.

Live migration runs at each shard's deterministic migration point —
the :attr:`~repro.serve.slotloop.SlotLoop.slot_hook`, after the
previous slot's reports are folded and before the next plan exists.
The hook is synchronous, so a whole handoff (capture blob → install
on target → redirect the client) happens atomically between slots:
*ordered handoffs*, which is what makes a scripted ``shard_kill``
produce the same migration timeline every run.  A scripted
``migration_stall`` delays only the client-facing redirect; the slot
loops never wait on it — the target shard's resume barrier absorbs
the client's late arrival.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError, TransportError
from repro.faults.schedule import (
    FAULT_MIGRATION_STALL,
    FAULT_SHARD_KILL,
    FaultEvent,
)
from repro.obs.buildinfo import config_fingerprint, register_build_info
from repro.obs.cluster import COORDINATOR_SHARD, merge_registries
from repro.obs.flight import (
    TRIGGER_MIGRATION_STALL,
    TRIGGER_SHARD_KILL,
    TRIGGER_SHARD_RESPAWN,
)
from repro.obs.http import ObsHttpServer
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Span
from repro.obs.tracer import Tracer
from repro.serve.protocol import JoinRequest, Redirect, read_message, write_message
from repro.serve.protocol2 import wire_write
from repro.serve.server import ServeResult, VrServeServer
from repro.serve.sessions import Session
from repro.shard.config import ShardClusterConfig, derive_trace_path
from repro.shard.handoff import capture_seat, install_seat
from repro.shard.router import SessionRouter

#: Redirect reasons, fixed vocabulary so tests can assert on them.
REDIRECT_ASSIGNED = "assigned"
REDIRECT_SHARD_KILL = "shard_kill"
REDIRECT_REBALANCE = "rebalance"


@dataclass(frozen=True)
class ClusterResult:
    """Outcome of one cluster run.

    ``shards`` holds each shard's :class:`~repro.serve.server.
    ServeResult` in shard order; ``restarted`` any runs served by
    supervisor-respawned shards.  The aggregate figures treat the
    cluster as one deployment: slots and deadline hits sum across
    shards, and ``missed_reports`` is the cluster's lost-report count
    — the number the migration chaos tests pin to zero.
    """

    port: int
    shards: Tuple[ServeResult, ...]
    restarted: Tuple[ServeResult, ...] = ()

    def _all(self) -> Tuple[ServeResult, ...]:
        return self.shards + self.restarted

    @property
    def total_slots(self) -> int:
        return sum(r.metrics.slots for r in self._all())

    @property
    def deadline_hit_rate(self) -> float:
        slots = self.total_slots
        hits = sum(r.metrics.deadline_hits for r in self._all())
        return hits / slots if slots else 0.0

    @property
    def missed_reports(self) -> int:
        return sum(r.metrics.missed_reports for r in self._all())

    @property
    def migrations(self) -> int:
        return sum(r.metrics.migrations_in for r in self._all())

    def summary(self) -> Dict[str, object]:
        """JSON-ready cluster view with per-shard labelled summaries."""
        shards: List[Dict[str, object]] = []
        for index, result in enumerate(self.shards):
            entry: Dict[str, object] = {"shard": index}
            entry.update(result.metrics.summary())
            shards.append(entry)
        for result in self.restarted:
            entry = {"shard": result.port, "restarted": True}
            entry.update(result.metrics.summary())
            shards.append(entry)
        return {
            "num_shards": len(self.shards),
            "total_slots": self.total_slots,
            "deadline_hit_rate": self.deadline_hit_rate,
            "missed_reports": self.missed_reports,
            "migrations": self.migrations,
            "shards": shards,
        }


class ShardCoordinator:
    """Builds, gates, and migrates a cluster of ``VrServeServer``s."""

    def __init__(self, cluster: ShardClusterConfig) -> None:
        self.cluster = cluster
        self.router = SessionRouter(
            cluster.base.experiment.seed, cluster.num_shards
        )
        self.servers: List[VrServeServer] = [
            VrServeServer(cluster.shard_config(index))
            for index in range(cluster.num_shards)
        ]
        self._alive: List[bool] = [True] * cluster.num_shards
        #: Earliest scripted kill slot per shard index.
        self._kill_slot: Dict[int, int] = {}
        #: Scripted redirect stalls per shard, earliest first.
        self._stalls: Dict[int, List[FaultEvent]] = {}
        if cluster.faults is not None:
            for event in cluster.faults.events:
                if event.kind == FAULT_SHARD_KILL:
                    current = self._kill_slot.get(event.seat)
                    if current is None or event.slot < current:
                        self._kill_slot[event.seat] = event.slot
                elif event.kind == FAULT_MIGRATION_STALL:
                    self._stalls.setdefault(event.seat, []).append(event)
        #: Queued rebalance migrations: source shard -> [(client, target)].
        self._moves: Dict[int, List[Tuple[str, int]]] = {}
        #: Clients redirected but not yet seen admitted, so concurrent
        #: joins are load-balanced against reserved seats, not just
        #: the (lagging) live occupancy.
        self._pending_routes: Dict[str, int] = {}
        self._listener: Optional[asyncio.AbstractServer] = None
        self._bound_port = 0
        self._front_tasks: Set["asyncio.Task[None]"] = set()
        self._redirect_tasks: Set["asyncio.Task[None]"] = set()
        #: Cluster-level observability: a coordinator-local registry
        #: (request counter, build info, migration accounting) merged
        #: with every shard's registry per scrape.
        self.obs_registry = MetricsRegistry()
        register_build_info(
            self.obs_registry,
            shard=-1,
            config_hash=config_fingerprint(cluster),
        )
        self._migrations_recorded = self.obs_registry.counter_family(
            "repro_cluster_migrations_total",
            "Sessions moved between shards, by redirect reason",
            ("reason",),
        )
        #: Supervisor restart state surfaced by the cluster /healthz.
        self.supervisor_restarts = 0
        self.respawned_shards: List[int] = []
        self._migration_seq = 0
        self._trace: Optional[Tracer] = None
        base_obs = cluster.base.obs
        if base_obs.enabled and base_obs.trace_path is not None:
            self._trace = Tracer(
                path=derive_trace_path(base_obs.trace_path, "coordinator"),
                sample_every=1,
                registry=self.obs_registry,
            )
        self._http: Optional[ObsHttpServer] = None
        if cluster.metrics_port is not None:
            self._http = ObsHttpServer(
                self.obs_registry,
                health_fn=self.health,
                host=cluster.metrics_host,
                port=cluster.metrics_port,
                registry_fn=self.merged_registry,
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The coordinator's bound front-door port."""
        if self._bound_port == 0:
            raise TransportError("coordinator is not listening yet")
        return self._bound_port

    @property
    def metrics_port(self) -> int:
        """The cluster observability endpoint's bound port (if enabled)."""
        if self._http is None:
            raise TransportError("cluster observability endpoint not configured")
        return self._http.port

    def alive_shards(self) -> List[int]:
        """Indices of shards currently in service."""
        return [i for i, alive in enumerate(self._alive) if alive]

    def merged_registry(self) -> MetricsRegistry:
        """The federated cluster view, rebuilt per scrape.

        The coordinator's own registry merges in under the shard label
        ``coordinator``; each shard merges under its index.
        """
        sources = [(COORDINATOR_SHARD, self.obs_registry)] + [
            (str(index), server.obs.registry)
            for index, server in enumerate(self.servers)
        ]
        return merge_registries(sources)

    def health(self) -> Dict[str, object]:
        """Cluster liveness rollup for the federated ``/healthz``.

        Per-shard health (including each shard's SLO status when an
        engine is attached) plus coordinator-level state: which shards
        are in service and what the supervisor has restarted.
        """
        shards: List[Dict[str, object]] = []
        for index, server in enumerate(self.servers):
            entry: Dict[str, object] = {
                "shard": index,
                "alive": self._alive[index],
            }
            entry.update(server.health())
            shards.append(entry)
        return {
            "num_shards": self.cluster.num_shards,
            "alive_shards": len(self.alive_shards()),
            "supervisor_restarts": self.supervisor_restarts,
            "respawned_shards": list(self.respawned_shards),
            "shards": shards,
        }

    async def start(self) -> None:
        """Bind every shard's listener and the front door."""
        for server in self.servers:
            await server.start()
        if self._listener is None:
            self._listener = await asyncio.start_server(
                self._on_front_connection,
                host=self.cluster.base.host,
                port=self.cluster.base.port,
            )
            if self._listener.sockets:
                self._bound_port = int(
                    self._listener.sockets[0].getsockname()[1]
                )
        if self._http is not None:
            await self._http.start()

    async def wait_cluster_ready(self) -> None:
        """Block until ``expect_clients`` sessions are ready cluster-wide."""
        loop = asyncio.get_running_loop()
        deadline_s = loop.time() + self.cluster.base.start_timeout_s
        while True:
            ready = sum(
                self.servers[i].registry.ready_count()
                for i in self.alive_shards()
            )
            if ready >= self.cluster.expect_clients:
                return
            if loop.time() >= deadline_s:
                raise TransportError(
                    f"timed out waiting for {self.cluster.expect_clients} "
                    f"clients across the cluster ({ready} ready after "
                    f"{self.cluster.base.start_timeout_s:.1f}s)"
                )
            await asyncio.sleep(0.01)

    def install_hook(self, index: int) -> None:
        """Wire the migration hook into one shard's slot loop."""
        self.servers[index].slot_loop.slot_hook = self._make_hook(index)

    async def run(self) -> ClusterResult:
        """Serve one full cluster run (no supervisor restarts)."""
        await self.start()
        released = False
        try:
            await self.wait_cluster_ready()
            for index in range(self.cluster.num_shards):
                self.install_hook(index)
            released = True
            results = await asyncio.gather(
                *(server.run_admitted() for server in self.servers)
            )
        finally:
            await self.aclose()
            if not released:
                # The slot loops never started, so their shutdown path
                # never ran: close the shard listeners here.
                for server in self.servers:
                    await server.aclose()
        return ClusterResult(port=self._bound_port, shards=tuple(results))

    async def aclose(self) -> None:
        """Close the front door and reap coordinator-side tasks."""
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None
        for tasks in (self._front_tasks, self._redirect_tasks):
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
                tasks.clear()
        if self._http is not None:
            await self._http.stop()
        if self._trace is not None:
            await self._trace.aflush()
            await asyncio.to_thread(self._trace.close)

    # ------------------------------------------------------------------
    # Front door
    # ------------------------------------------------------------------
    def _find_session_shard(self, client: str) -> Optional[int]:
        """The live shard already holding a session for this client.

        Covers reconnects and post-migration resumes: a client whose
        seat exists (attached or parked) is sent straight to it —
        never rebalanced away from its own state by a full-looking
        shard (the fullness *is* its seat).
        """
        for index in self.alive_shards():
            registry = self.servers[index].registry
            for session in registry.active():
                if session.client == client:
                    return index
        return None

    def _purge_pending(self) -> None:
        """Drop reservations for clients that landed (or lost their
        shard); what remains still counts against capacity."""
        for client in list(self._pending_routes):
            shard = self._pending_routes[client]
            if not self._alive[shard]:
                del self._pending_routes[client]
                continue
            registry = self.servers[shard].registry
            if any(s.client == client for s in registry.active()):
                del self._pending_routes[client]

    def _free_seats(self) -> List[int]:
        """Per-shard free capacity net of reservations; -1 = dead."""
        self._purge_pending()
        reserved = [0] * self.cluster.num_shards
        for shard in self._pending_routes.values():
            reserved[shard] += 1
        return [
            (
                server.config.max_users
                - server.registry.occupancy()
                - reserved[index]
                if self._alive[index]
                else -1
            )
            for index, server in enumerate(self.servers)
        ]

    def _on_front_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._greet(reader, writer))
        self._front_tasks.add(task)
        task.add_done_callback(self._front_tasks.discard)

    async def _greet(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One front-door exchange: read the join, answer a redirect.

        The join frame is consumed here but *answered* by the shard:
        the client replays it (token included) against the redirect
        target, where the real admission or resume handshake runs.
        """
        try:
            message = await asyncio.wait_for(
                read_message(reader), self.cluster.base.join_timeout_s
            )
            if not isinstance(message, JoinRequest):
                return
            existing = self._find_session_shard(message.client)
            if existing is not None:
                shard = existing
            else:
                shard = self.router.route(message.client, self._free_seats())
                self._pending_routes[message.client] = shard
            server = self.servers[shard]
            write_message(
                writer,
                Redirect(
                    host=server.config.host,
                    port=server.port,
                    shard=shard,
                    reason=REDIRECT_ASSIGNED,
                ),
            )
            await writer.drain()
        except (
            asyncio.TimeoutError,
            ConfigurationError,
            TransportError,
            ConnectionError,
            OSError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def request_migration(self, client: str, target: int) -> None:
        """Queue a rebalance: move ``client`` to ``target`` at the
        source shard's next migration point."""
        if not 0 <= target < self.cluster.num_shards:
            raise ConfigurationError(
                f"target shard must be in [0, {self.cluster.num_shards}), "
                f"got {target}"
            )
        if not self._alive[target]:
            raise ConfigurationError(
                f"target shard {target} is not in service"
            )
        source = self.router.assignment(client)
        self._moves.setdefault(source, []).append((client, target))

    def kill_shard(self, index: int, slot: int = 0) -> None:
        """Schedule shard ``index`` to die at its migration point of
        ``slot`` (or its next one, if ``slot`` has passed)."""
        if not 0 <= index < self.cluster.num_shards:
            raise ConfigurationError(
                f"shard index must be in [0, {self.cluster.num_shards}), "
                f"got {index}"
            )
        current = self._kill_slot.get(index)
        if current is None or slot < current:
            self._kill_slot[index] = slot

    def _make_hook(self, index: int) -> Callable[[int], bool]:
        def hook(slot: int) -> bool:
            moves = self._moves.pop(index, None)
            if moves:
                for client, target in moves:
                    self._migrate_one(index, slot, client, target)
            kill = self._kill_slot.get(index)
            if kill is not None and slot >= kill:
                self._evacuate(index, slot)
                return False
            return True

        return hook

    def _emit_migration_span(
        self,
        session: Session,
        source: int,
        target: int,
        slot: int,
        reason: str,
    ) -> None:
        """Record one handoff in the coordinator's trace stream.

        The span carries the session's stable trace identity, so the
        stitcher can bridge the source shard's timeline to the
        target's.  ``start_s`` is the *source* shard's slot number —
        handoffs are instantaneous at the migration point, hence zero
        duration.
        """
        self._migrations_recorded.counter_child(reason=reason).inc()
        if self._trace is None:
            return
        span = Span(
            name="migration",
            start_s=float(slot),
            duration_s=0.0,
            attrs={
                "trace": session.trace_id,
                "client": session.client,
                "source_shard": source,
                "target_shard": target,
                "slot": slot,
                "reason": reason,
                "seq": self._migration_seq,
            },
        )
        self._migration_seq += 1
        self._trace.emit(span)

    def _pick_target(self, source: int) -> int:
        """Least-loaded live shard with a free seat (lowest index ties);
        -1 when the rest of the cluster is full or gone."""
        best = -1
        best_free = 0
        for an_index, server in enumerate(self.servers):
            if an_index == source or not self._alive[an_index]:
                continue
            free = server.config.max_users - server.registry.occupancy()
            if free > best_free:
                best, best_free = an_index, free
        return best

    def _evacuate(self, index: int, slot: int) -> None:
        """Kill path: move every session off shard ``index``, then let
        the hook abort its slot loop.

        Runs synchronously inside the migration point — every handoff
        (capture → install → redirect) completes before any shard
        plans another slot, so the timeline is a pure function of the
        schedule.  Sessions that cannot be placed (cluster full) stay
        behind and end with the shard, exactly like a standalone
        server dying.
        """
        self._alive[index] = False
        server = self.servers[index]
        moved = 0
        for session in server.registry.active():
            target = self._pick_target(index)
            if target < 0:
                continue
            blob = capture_seat(server, session, index)
            install_seat(self.servers[target], blob)
            self.router.pin(session.client, target)
            self._send_redirect(
                index, session, target, slot, REDIRECT_SHARD_KILL
            )
            self._emit_migration_span(
                session, index, target, slot, REDIRECT_SHARD_KILL
            )
            server.metrics.record_migration_out()
            moved += 1
        server.obs.flight.trigger(
            TRIGGER_SHARD_KILL,
            detail=f"shard {index} evacuated {moved} session(s)",
            slot=slot,
        )

    def _migrate_one(
        self, index: int, slot: int, client: str, target: int
    ) -> None:
        """Rebalance path: move one session off a still-running shard."""
        server = self.servers[index]
        session = next(
            (
                s
                for s in server.registry.active()
                if s.client == client and not s.detached
            ),
            None,
        )
        if session is None or not self._alive[target]:
            return
        if target == index:
            return
        free = (
            self.servers[target].config.max_users
            - self.servers[target].registry.occupancy()
        )
        if free < 1:
            return
        blob = capture_seat(server, session, index)
        install_seat(self.servers[target], blob)
        self.router.pin(client, target)
        self._send_redirect(index, session, target, slot, REDIRECT_REBALANCE)
        self._emit_migration_span(
            session, index, target, slot, REDIRECT_REBALANCE
        )
        seat = session.seat
        server.registry.release(seat)
        server.edge.reset_user(seat)
        server.metrics.record_migration_out()

    def _send_redirect(
        self,
        source: int,
        session: Session,
        target: int,
        slot: int,
        reason: str,
    ) -> None:
        """Point a migrated client at its new shard.

        The seat is marked detached first so the source connection
        handler treats the closing socket as coordinator business, not
        a client disconnect.  A scripted ``migration_stall`` delays
        only this send — the client reconnects late, and the *target*
        shard's resume barrier absorbs the wait.  A session with no
        transport (already detached) gets no redirect; its client will
        dial the coordinator's front door and be routed by the
        override table.
        """
        session.detached = True
        session.detached_slot = slot
        writer = session.writer
        if writer is None:
            return
        server = self.servers[target]
        frame = Redirect(
            host=server.config.host,
            port=server.port,
            shard=target,
            reason=reason,
        )
        # The redirect travels on the session's negotiated wire (a
        # binary session gets a channel-tagged binary frame).  A
        # multiplexed connection is shared: closing it would sever
        # every other virtual client on the link, so only a writer
        # this session has to itself is closed here.
        wire = session.wire
        channel = session.channel
        shared = any(
            other is not session and other.writer is writer
            for other in self.servers[source].registry.active()
        )

        def _emit() -> None:
            try:
                wire_write(writer, wire, frame, channel=channel)
            except (TransportError, ConnectionError, OSError):
                pass
            if not shared:
                writer.close()

        stall_s = self._take_stall(source, slot)
        if stall_s > 0:
            self.servers[source].obs.flight.trigger(
                TRIGGER_MIGRATION_STALL,
                detail=(
                    f"redirect of {session.client} to shard {target} "
                    f"stalled {stall_s:.3f}s"
                ),
                slot=slot,
            )
        if stall_s <= 0:
            _emit()
            return

        async def _delayed() -> None:
            await asyncio.sleep(stall_s)
            _emit()

        task = asyncio.ensure_future(_delayed())
        self._redirect_tasks.add(task)
        task.add_done_callback(self._redirect_tasks.discard)

    def _take_stall(self, source: int, slot: int) -> float:
        """Pop the earliest due ``migration_stall`` for this shard."""
        pending = self._stalls.get(source)
        if not pending:
            return 0.0
        for position, event in enumerate(pending):
            if event.slot <= slot:
                del pending[position]
                return event.duration_s
        return 0.0

    # ------------------------------------------------------------------
    # Supervisor support
    # ------------------------------------------------------------------
    def respawn(self, index: int) -> VrServeServer:
        """Replace a dead shard with a fresh server (same shard config).

        The new server is registered for routing and hooked for
        migration, but not started — the supervisor owns its
        lifecycle (bind, wait for a first client, run).
        """
        if self._alive[index]:
            raise ConfigurationError(
                f"shard {index} is still in service; refusing to replace it"
            )
        server = VrServeServer(self.cluster.shard_config(index))
        self.servers[index] = server
        self._alive[index] = True
        self._kill_slot.pop(index, None)
        server.slot_loop.slot_hook = self._make_hook(index)
        self.supervisor_restarts += 1
        self.respawned_shards.append(index)
        server.obs.flight.trigger(
            TRIGGER_SHARD_RESPAWN,
            detail=f"shard {index} replaced after restart "
            f"#{self.supervisor_restarts}",
        )
        return server
