"""Shard supervision: restart dead shards with capped backoff.

The coordinator by itself runs a fixed fleet: a killed shard migrates
its sessions away and stays dead.  The :class:`ShardSupervisor` adds
the operational loop on top — it watches the shard tasks, and when
one exits while the rest of the cluster is still serving, it respawns
that shard index after an exponentially backed-off delay (capped, and
bounded by ``max_restarts``).  A respawned shard starts as a
*standby*: listener bound and routable, slot loop held until a first
client is ready, and torn down cleanly (:meth:`~repro.serve.server.
VrServeServer.aclose`) if nobody arrives before the cluster ends.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, TransportError
from repro.serve.server import ServeResult, VrServeServer
from repro.shard.coordinator import ClusterResult, ShardCoordinator


@dataclass(frozen=True)
class RestartPolicy:
    """Backoff schedule for shard restarts."""

    max_restarts: int = 1
    base_s: float = 0.05
    multiplier: float = 2.0
    max_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.base_s <= 0:
            raise ConfigurationError(f"base_s must be > 0, got {self.base_s}")
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_s < self.base_s:
            raise ConfigurationError(
                f"max_s must be >= base_s, got {self.max_s} < {self.base_s}"
            )

    def backoff_s(self, restart: int) -> float:
        """Delay before restart ``restart`` (1-based), capped."""
        if restart < 1:
            raise ConfigurationError(f"restart must be >= 1, got {restart}")
        return min(self.base_s * self.multiplier ** (restart - 1), self.max_s)


class ShardSupervisor:
    """Runs a coordinator's cluster with restart-on-death."""

    def __init__(
        self,
        coordinator: ShardCoordinator,
        policy: Optional[RestartPolicy] = None,
    ) -> None:
        self.coordinator = coordinator
        self.policy = policy if policy is not None else RestartPolicy()
        self.restarts = 0

    async def run(self) -> ClusterResult:
        """Serve one cluster run, respawning killed shards."""
        coordinator = self.coordinator
        await coordinator.start()
        released = False
        restarted: List[ServeResult] = []
        try:
            await coordinator.wait_cluster_ready()
            for index in range(coordinator.cluster.num_shards):
                coordinator.install_hook(index)
            released = True
            primaries: Dict["asyncio.Task[ServeResult]", int] = {
                asyncio.ensure_future(server.run_admitted()): index
                for index, server in enumerate(coordinator.servers)
            }
            results: Dict[int, ServeResult] = {}
            standbys: List["asyncio.Task[Optional[ServeResult]]"] = []
            pending = set(primaries)
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                for task in done:
                    index = primaries[task]
                    results[index] = task.result()
                    if (
                        index in coordinator.alive_shards()
                        or not pending
                        or self.restarts >= self.policy.max_restarts
                    ):
                        continue
                    self.restarts += 1
                    await asyncio.sleep(self.policy.backoff_s(self.restarts))
                    server = coordinator.respawn(index)
                    standbys.append(
                        asyncio.ensure_future(self._run_standby(server))
                    )
            for standby in standbys:
                standby.cancel()
            outcomes = await asyncio.gather(*standbys, return_exceptions=True)
            for outcome in outcomes:
                if isinstance(outcome, ServeResult):
                    restarted.append(outcome)
        finally:
            await coordinator.aclose()
            if not released:
                for server in coordinator.servers:
                    await server.aclose()
        return ClusterResult(
            port=coordinator.port,
            shards=tuple(results[i] for i in sorted(results)),
            restarted=tuple(restarted),
        )

    async def _run_standby(self, server: VrServeServer) -> Optional[ServeResult]:
        """Bind a respawned shard and serve it once a client shows up.

        Cancelled (cluster over) or timed-out standbys close their
        listener and return nothing — a restart that nobody joined is
        not a run.
        """
        await server.start()
        try:
            await server.wait_for_ready(1, server.config.start_timeout_s)
        except (TransportError, asyncio.CancelledError):
            await server.aclose()
            return None
        return await server.run_admitted()
