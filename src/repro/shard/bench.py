"""Scale benchmark: users sustained within deadline vs shard count.

For each shard count the bench runs a full paced cluster over
loopback — the coordinator's front door, N shard slot loops, and one
redirect-following client fleet sized to fill every seat — and
records the cluster-wide slot-deadline hit rate.  The headline
number is the largest fleet sustained at the target hit rate (99% by
default) across the swept shard counts: the scaling answer to the
paper's "how many users can one edge carry" question when the edge
is allowed to shard.  Results append to ``BENCH_scale.json`` via
:func:`repro.perf.bench.persist_run`.
"""

from __future__ import annotations

import asyncio
from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.serve.config import serve_setup1
from repro.serve.loadgen import FleetReport, LoadGenConfig, run_fleet
from repro.shard.config import ShardClusterConfig
from repro.shard.coordinator import ClusterResult, ShardCoordinator

BENCH_SCALE_FILE = "BENCH_scale.json"


async def run_cluster_and_fleet(
    cluster: ShardClusterConfig, fleet_config: LoadGenConfig
) -> Tuple[ClusterResult, FleetReport]:
    """Run a coordinator cluster and its fleet in-process.

    Starts the cluster, points the fleet at the coordinator's front
    door (clients follow redirects to their shards), and returns both
    end-of-run views.
    """
    coordinator = ShardCoordinator(cluster)
    await coordinator.start()
    run_task = asyncio.ensure_future(coordinator.run())
    try:
        fleet = await run_fleet(
            replace(fleet_config, host=cluster.base.host, port=coordinator.port)
        )
        result = await run_task
    finally:
        if not run_task.done():
            run_task.cancel()
            await asyncio.gather(run_task, return_exceptions=True)
    return result, fleet


def bench_scale(
    shard_counts: Sequence[int] = (1, 2),
    users_per_shard: int = 2,
    slots: int = 80,
    seed: int = 0,
    deadline_target: float = 0.99,
) -> Dict[str, object]:
    """Measure cluster deadline behaviour across shard counts.

    Each shard count gets one paced loopback run of ``slots``
    transmission slots per shard with a full house —
    ``shards * users_per_shard`` clients, so join-time rebalancing
    fills every shard — and zero think-time.  ``users_sustained`` is
    the largest fleet whose cluster-wide deadline hit rate meets
    ``deadline_target`` with nobody rejected.
    """
    if slots < 3:
        raise ConfigurationError(f"slots must be >= 3, got {slots}")
    if users_per_shard < 1:
        raise ConfigurationError(
            f"users_per_shard must be >= 1, got {users_per_shard}"
        )
    if not shard_counts:
        raise ConfigurationError("need at least one shard count")
    if not 0 < deadline_target <= 1:
        raise ConfigurationError(
            f"deadline_target must be in (0, 1], got {deadline_target}"
        )
    results: List[Dict[str, float]] = []
    users_sustained = 0
    for num_shards in sorted(set(int(n) for n in shard_counts)):
        if num_shards < 1:
            raise ConfigurationError(
                f"shard counts must be >= 1, got {num_shards}"
            )
        total_users = num_shards * users_per_shard
        base = replace(
            serve_setup1(
                max_users=users_per_shard,
                duration_slots=slots + 1,
                seed=seed,
            ),
            exact_stage_latency=True,
        )
        cluster = ShardClusterConfig(
            base=base, num_shards=num_shards, expect_clients=total_users
        )
        fleet_config = LoadGenConfig(num_clients=total_users, seed=seed)
        result, fleet = asyncio.run(
            run_cluster_and_fleet(cluster, fleet_config)
        )
        hit_rate = result.deadline_hit_rate
        if hit_rate >= deadline_target and not fleet.rejected:
            users_sustained = max(users_sustained, total_users)
        results.append(
            {
                "shards": float(num_shards),
                "users": float(total_users),
                "slots": float(result.total_slots),
                "deadline_hit_rate": hit_rate,
                "missed_reports": float(result.missed_reports),
                "migrations": float(result.migrations),
                "redirects": float(sum(c.redirects for c in fleet.clients)),
            }
        )
    return {
        "kind": "scale",
        "slots": int(slots),
        "users_per_shard": int(users_per_shard),
        "deadline_target": float(deadline_target),
        "users_sustained": int(users_sustained),
        "clusters": results,
    }
