"""repro.shard — multi-shard serving with live session migration.

One :class:`~repro.serve.server.VrServeServer` answers "does the
planner hold up behind real sockets"; this package answers "does it
scale past one slot loop".  A :class:`~repro.shard.coordinator.
ShardCoordinator` fronts ``num_shards`` independent slot-loop shards:
it owns the cluster's listening endpoint, routes clients by a seeded
stable hash with an override table
(:class:`~repro.shard.router.SessionRouter`), rebalances on join, and
migrates live sessions between shards without losing QoE state — the
seat is captured into a versioned handoff blob
(:mod:`~repro.shard.handoff`), installed parked on the target, and
claimed by the client through the ordinary resume path.  Migrations
run at each shard's deterministic slot-hook point, so a scripted
``shard_kill`` yields the same timeline — and zero lost reports —
every run.  :class:`~repro.shard.supervisor.ShardSupervisor` adds
restart-with-backoff on top, and :func:`~repro.shard.bench.
bench_scale` measures users sustained within the slot deadline as the
shard count grows.
"""

from repro.shard.bench import (
    BENCH_SCALE_FILE,
    bench_scale,
    run_cluster_and_fleet,
)
from repro.shard.config import ShardClusterConfig, derive_trace_path
from repro.shard.coordinator import (
    REDIRECT_ASSIGNED,
    REDIRECT_REBALANCE,
    REDIRECT_SHARD_KILL,
    ClusterResult,
    ShardCoordinator,
)
from repro.shard.handoff import (
    HANDOFF_SCHEMA_KIND,
    HANDOFF_SCHEMA_VERSION,
    HANDOFF_SUPPORTED_VERSIONS,
    capture_seat,
    install_seat,
)
from repro.shard.router import SessionRouter
from repro.shard.supervisor import RestartPolicy, ShardSupervisor

__all__ = [
    "BENCH_SCALE_FILE",
    "ClusterResult",
    "HANDOFF_SCHEMA_KIND",
    "HANDOFF_SCHEMA_VERSION",
    "HANDOFF_SUPPORTED_VERSIONS",
    "REDIRECT_ASSIGNED",
    "REDIRECT_REBALANCE",
    "REDIRECT_SHARD_KILL",
    "RestartPolicy",
    "SessionRouter",
    "ShardClusterConfig",
    "ShardCoordinator",
    "ShardSupervisor",
    "bench_scale",
    "capture_seat",
    "derive_trace_path",
    "install_seat",
    "run_cluster_and_fleet",
]
