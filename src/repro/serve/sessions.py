"""Live session registry: seats, join/leave/timeout, report mailboxes.

A *session* is one connected client bound to one scheduler seat.
Seats are a fixed array (the admission capacity ``K``) so the
planning layer — :class:`~repro.system.server.EdgeServer` with
``num_users = K`` — never reshapes mid-run; an empty seat simply has
no pose history and is skipped by the allocator at zero cost.  Seats
are reassigned lowest-first so a lockstep fleet joining in order
occupies seats ``0..N-1``, which is what makes a loopback run
comparable to the in-process experiment.
"""

from __future__ import annotations

import asyncio
import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.serve.protocol import SlotReport
from repro.serve.protocol2 import WireState

#: ``last_report_slot`` value before any report has been received.
NEVER_REPORTED = -1


@dataclass
class Session:
    """One connected client bound to a scheduler seat."""

    seat: int
    client: str
    #: ``None`` while the seat is parked awaiting a resume (a migrated
    #: session is installed on its target shard before the client has
    #: reconnected there, so it briefly has no transport at all).
    writer: Optional[asyncio.StreamWriter]
    guideline_mbps: float
    ready: bool = False
    alive: bool = True
    degraded: bool = False
    joined_slot: int = 0
    last_report_slot: int = NEVER_REPORTED
    reports: Dict[int, SlotReport] = field(default_factory=dict)
    planned_slots: int = 0
    missed_reports: int = 0
    late_reports: int = 0
    dropped_frames: int = 0
    #: Resume support: the token a reconnecting client must present,
    #: and whether the seat is currently waiting for that client.
    token: str = ""
    #: Stable trace identity minted at first admission; survives
    #: resumes and cross-shard migrations so per-shard span streams
    #: can be stitched into one per-session timeline.
    trace_id: str = ""
    detached: bool = False
    detached_slot: int = NEVER_REPORTED
    resumes: int = 0
    corrupt_frames: int = 0
    #: Re-attached mid-slot: excluded from the report barrier until a
    #: fresh plan frame reaches the client (it cannot report a slot
    #: whose plan it never received).
    needs_plan: bool = False
    #: Set by the fault injector: the handler sleeps this long before
    #: its next read (a stalled uplink), then clears it.
    stall_read_s: float = 0.0
    #: The wire codec of the *connection* this session currently rides
    #: (multiplexed sessions share one instance).  Defaults to a JSON
    #: wire so every pre-codec-negotiation code path behaves exactly
    #: as before; rebound on every resume because delta/ack state is
    #: per-connection and must start fresh on a new transport.
    wire: WireState = field(default_factory=WireState)
    #: Channel id plan frames for this session are tagged with on a
    #: binary wire: the seat on multiplexed connections, -1 (untagged)
    #: on a dedicated connection.
    channel: int = -1

    def store_report(self, report: SlotReport, folded_slots: int) -> bool:
        """File a report; returns False when it is too old to matter.

        ``folded_slots`` is how many slots the server has already
        folded into scheduler state; a report for one of those (or a
        duplicate) can no longer be used and is only counted.
        """
        if report.slot in self.reports or report.slot < folded_slots:
            self.late_reports += 1
            return False
        self.reports[report.slot] = report
        if report.slot > self.last_report_slot:
            self.last_report_slot = report.slot
        return True

    def take_report(self, slot: int) -> Optional[SlotReport]:
        """Remove and return the report for a slot, if present."""
        return self.reports.pop(slot, None)

    def lag_slots(self, current_slot: int) -> int:
        """How many slots behind this session's reports are."""
        reference = max(self.last_report_slot, self.joined_slot - 1)
        return max(current_slot - 1 - reference, 0)

    def write_buffer_bytes(self) -> int:
        """Bytes queued on this session's socket (backpressure signal)."""
        if self.writer is None:
            return 0
        transport = self.writer.transport
        if transport is None or transport.is_closing():
            return 0
        return int(transport.get_write_buffer_size())


class SessionRegistry:
    """Fixed-capacity seat map with deterministic seat reuse."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._sessions: Dict[int, Session] = {}
        self._free_seats: List[int] = list(range(capacity))
        heapq.heapify(self._free_seats)
        #: Set by connection handlers whenever a report lands, so the
        #: lockstep barrier can re-check completeness without polling.
        self.report_event = asyncio.Event()
        #: Set whenever a detached seat re-attaches, so the resume
        #: barrier can re-check without polling.
        self.attach_event = asyncio.Event()
        self.total_joins = 0
        self.total_leaves = 0
        self.total_timeouts = 0
        self.total_detaches = 0
        self.total_resumes = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        return len(self._sessions)

    def ready_count(self) -> int:
        return sum(1 for s in self._sessions.values() if s.ready and s.alive)

    def active(self) -> List[Session]:
        """Live sessions in seat order (the planning iteration order)."""
        return [
            self._sessions[seat]
            for seat in sorted(self._sessions)
            if self._sessions[seat].alive
        ]

    def get(self, seat: int) -> Optional[Session]:
        return self._sessions.get(seat)

    def admit(
        self,
        client: str,
        writer: Optional[asyncio.StreamWriter],
        guideline_mbps: float,
        joined_slot: int,
    ) -> Session:
        """Bind a client to the lowest free seat."""
        if not self._free_seats:
            raise ConfigurationError(
                f"no free seats: {self.occupancy()}/{self.capacity} occupied"
            )
        seat = heapq.heappop(self._free_seats)
        session = Session(
            seat=seat,
            client=client,
            writer=writer,
            guideline_mbps=guideline_mbps,
            joined_slot=joined_slot,
        )
        self._sessions[seat] = session
        self.total_joins += 1
        return session

    def install_detached(
        self,
        client: str,
        guideline_mbps: float,
        joined_slot: int,
        token: str,
        slot: int,
        trace_id: str = "",
    ) -> Session:
        """Admit a migrated-in session in parked state (no transport).

        The seat is immediately ``detached`` — it joins the resume
        barrier like any parked seat — and carries the token the
        client will present when it reconnects to this shard.  Not
        counted as a detach: ``total_detaches`` tracks transport
        failures, and this seat never had a transport here.
        """
        session = self.admit(client, None, guideline_mbps, joined_slot)
        session.token = token
        session.trace_id = trace_id
        session.ready = True
        session.detached = True
        session.detached_slot = slot
        return session

    def release(self, seat: int, timed_out: bool = False) -> None:
        """Free a seat after a leave, error, or timeout."""
        session = self._sessions.pop(seat, None)
        if session is None:
            return
        session.alive = False
        heapq.heappush(self._free_seats, seat)
        self.total_leaves += 1
        if timed_out:
            self.total_timeouts += 1
        # A departed session can no longer satisfy the barrier.
        self.report_event.set()

    # ------------------------------------------------------------------
    # Detach / resume
    # ------------------------------------------------------------------
    def detach(self, seat: int, slot: int) -> Optional[Session]:
        """Park a seat after a transport failure, awaiting a resume.

        The session stays bound to its seat (so scheduler state —
        pose history, QoE accounting — survives the outage) but is
        excluded from planning and from the lockstep barrier until
        the client re-attaches or the grace window expires.
        """
        session = self._sessions.get(seat)
        if session is None or session.detached:
            return None
        session.detached = True
        session.detached_slot = slot
        self.total_detaches += 1
        # A detached session can no longer satisfy the barrier.
        self.report_event.set()
        return session

    def resume(
        self,
        token: str,
        writer: asyncio.StreamWriter,
        wire: Optional[WireState] = None,
        channel: int = -1,
    ) -> Optional[Session]:
        """Re-attach a detached seat by token; None when no seat matches.

        ``wire`` is the *new* connection's wire state; binding it here
        (rather than keeping the old one) is what resets the binary
        codec's delta/ack maps, so the first report after any resume
        is absolute — a delta against a pose from the dead connection
        can never decode.
        """
        if not token:
            return None
        for seat in sorted(self._sessions):
            session = self._sessions[seat]
            if session.detached and session.token == token:
                session.writer = writer
                session.wire = wire if wire is not None else WireState()
                session.channel = channel
                session.detached = False
                session.detached_slot = NEVER_REPORTED
                session.stall_read_s = 0.0
                session.needs_plan = True
                session.resumes += 1
                self.total_resumes += 1
                self.attach_event.set()
                self.report_event.set()
                return session
        return None

    def detached_sessions(self) -> List[Session]:
        """Seats currently awaiting a resume, in seat order."""
        return [
            self._sessions[seat]
            for seat in sorted(self._sessions)
            if self._sessions[seat].detached
        ]

    async def wait_attached(self, timeout_s: float) -> bool:
        """Block until no seat is detached, or the timeout elapses.

        Returns True when every detached seat re-attached (or was
        released) in time — the resume-barrier primitive that keeps
        lockstep accounting independent of reconnect wall time.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        while self.detached_sessions():
            remaining_s = deadline - loop.time()
            if remaining_s <= 0:
                return False
            self.attach_event.clear()
            try:
                await asyncio.wait_for(self.attach_event.wait(), remaining_s)
            except asyncio.TimeoutError:
                return not self.detached_sessions()
        return True

    # ------------------------------------------------------------------
    # Lockstep barrier support
    # ------------------------------------------------------------------
    def notify_report(self) -> None:
        """Wake the slot loop: a report (or departure) landed."""
        self.report_event.set()

    def reports_complete(self, slot: int) -> bool:
        """True when every live planned session has reported ``slot``."""
        return all(
            slot in session.reports
            for session in self.active()
            if session.ready
            and session.joined_slot <= slot
            and not session.detached
            and not session.needs_plan
        )

    async def wait_reports(self, slot: int, timeout_s: float) -> bool:
        """Block until ``reports_complete(slot)`` or the timeout.

        Returns True when the barrier completed, False on timeout
        (remaining sessions are then treated as lagging).
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        while not self.reports_complete(slot):
            remaining_s = deadline - loop.time()
            if remaining_s <= 0:
                return False
            self.report_event.clear()
            try:
                await asyncio.wait_for(self.report_event.wait(), remaining_s)
            except asyncio.TimeoutError:
                return self.reports_complete(slot)
        return True

    # ------------------------------------------------------------------
    # Seat summaries
    # ------------------------------------------------------------------
    def seat_counters(self) -> List[Tuple[int, Dict[str, int]]]:
        """Per-seat wire counters for the metrics summary."""
        return [
            (
                seat,
                {
                    "planned_slots": session.planned_slots,
                    "missed_reports": session.missed_reports,
                    "late_reports": session.late_reports,
                    "dropped_frames": session.dropped_frames,
                    "resumes": session.resumes,
                    "corrupt_frames": session.corrupt_frames,
                },
            )
            for seat, session in sorted(self._sessions.items())
        ]
