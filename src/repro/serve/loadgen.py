"""Client-fleet load generator replaying motion traces over sockets.

Each client emulates one commodity phone end-to-end: it joins the
server, replays a seeded :mod:`repro.traces` motion trace, runs the
real client display pipeline (:class:`~repro.system.client.Client`
with a :class:`~repro.system.client.DecoderPool`), evaluates FoV
coverage against its *own* next-slot pose exactly as the in-process
experiment does, and reports delivery/release ACKs, the display
indicator, and the measured delay back each slot.

With ``seed`` equal to the server's experiment seed, client ``i``'s
trace is drawn from ``default_rng((seed, 0, seat, 17))`` — the same
stream :meth:`~repro.system.experiment.SystemExperiment.run_repeat`
uses for user ``seat`` — which is what makes a full-house lockstep
loopback run reproduce the experiment's numbers.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.content.projection import FieldOfView
from repro.content.tiles import GridWorld, TileGrid
from repro.errors import ConfigurationError, TransportError
from repro.faults.injection import FaultInjector, corrupt_frame_bytes
from repro.faults.schedule import (
    CLIENT_KINDS,
    FAULT_CORRUPT_REPORT,
    FAULT_CRASH_CLIENT,
    FAULT_DELAY_REPORT,
    FaultSchedule,
)
from repro.prediction.fov import CoverageEvaluator
from repro.prediction.pose import Pose
from repro.serve.admission import REJECT_RESUME
from repro.serve.config import PROTOCOL_VERSION, ServeConfig
from repro.serve.protocol import (
    Bye,
    EndOfRun,
    JoinRequest,
    Ready,
    Redirect,
    Reject,
    SlotReport,
    TilePlan,
    Welcome,
    pose_to_wire,
    read_message,
    send_message,
)
from repro.serve.protocol2 import (
    CODEC_BINARY,
    WireFrame,
    WireState,
    wire_encode,
    wire_read,
    wire_send,
)
from repro.serve.server import ServeResult, VrServeServer
from repro.system.client import Client, DecoderPool
from repro.traces.motion import MotionConfig, MotionTraceGenerator
from repro.units import TARGET_FPS

#: Delay clamp applied client-side, matching the experiment loop.
MAX_DELAY_SLOTS = 60.0

#: Redirects one client will follow before giving up — a guard
#: against a misconfigured cluster bouncing a client in a loop, far
#: above anything a working coordinator issues (one greeting redirect
#: plus one per migration).
MAX_REDIRECTS = 8


@dataclass(frozen=True)
class ReconnectPolicy:
    """Self-healing behaviour for one fleet's clients.

    ``max_attempts`` of 0 (the default) disables reconnection — a
    lost connection ends the client, exactly the pre-resume
    behaviour.  When enabled, a client whose connection dies retries
    with capped exponential backoff (``base_s`` doubling by
    ``multiplier`` up to ``max_s``) plus seeded jitter, presenting
    its resume token so the server re-attaches it to its seat.
    """

    max_attempts: int = 0
    base_s: float = 0.05
    multiplier: float = 2.0
    max_s: float = 1.0
    jitter_s: float = 0.02

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise ConfigurationError(
                f"max_attempts must be >= 0, got {self.max_attempts}"
            )
        if self.base_s <= 0:
            raise ConfigurationError(f"base_s must be > 0, got {self.base_s}")
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_s < self.base_s:
            raise ConfigurationError(
                f"max_s must be >= base_s, got {self.max_s} < {self.base_s}"
            )
        if self.jitter_s < 0:
            raise ConfigurationError(
                f"jitter_s must be >= 0, got {self.jitter_s}"
            )

    @property
    def enabled(self) -> bool:
        return self.max_attempts > 0

    def backoff_s(self, attempt: int, rng: np.random.Generator) -> float:
        """Delay before reconnect ``attempt`` (1-based), with jitter."""
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        delay_s = min(
            self.base_s * self.multiplier ** (attempt - 1), self.max_s
        )
        if self.jitter_s > 0:
            delay_s += float(rng.uniform(0.0, self.jitter_s))
        return delay_s


@dataclass(frozen=True)
class LoadGenConfig:
    """One client fleet.

    ``latency_s`` / ``jitter_s`` add think-time before each report
    (emulated client-side network latency); the first
    ``slow_clients`` clients use ``slow_latency_s`` instead, which in
    a paced run drives them past the server's lag threshold and into
    degraded (minimum-level) service.  The first ``churn_clients``
    clients leave after ``churn_leave_after_slots`` slots.

    ``faults`` scripts client-side chaos (crashes, corrupt or delayed
    reports) from the same :class:`~repro.faults.schedule.FaultSchedule`
    the server consumes; ``reconnect`` governs how clients heal from
    lost connections.

    ``codec`` is the newest wire-codec generation the fleet offers at
    join time (2, the binary framing, by default — the fleet is the
    binary codec's first production user; the server may still
    downgrade the connection to JSON).  Set 1 to force the JSON wire.
    """

    host: str = "127.0.0.1"
    port: int = 0
    num_clients: int = 1
    seed: int = 0
    latency_s: float = 0.0
    jitter_s: float = 0.0
    slow_clients: int = 0
    slow_latency_s: float = 0.0
    churn_clients: int = 0
    churn_leave_after_slots: int = 0
    client_prefix: str = "client"
    faults: Optional[FaultSchedule] = None
    reconnect: ReconnectPolicy = field(default_factory=ReconnectPolicy)
    codec: int = CODEC_BINARY

    def __post_init__(self) -> None:
        if self.codec not in (1, 2):
            raise ConfigurationError(
                f"codec must be 1 (JSON) or 2 (binary), got {self.codec}"
            )
        if self.num_clients < 1:
            raise ConfigurationError(
                f"num_clients must be >= 1, got {self.num_clients}"
            )
        if not 0 <= self.port <= 0xFFFF:
            # Port 0 is a placeholder for "resolved later" (the
            # in-process helper fills in the server's bound port).
            raise ConfigurationError(f"port must be in [0, 65535], got {self.port}")
        for name in ("latency_s", "jitter_s", "slow_latency_s"):
            if getattr(self, name) < 0:
                raise ConfigurationError(
                    f"{name} must be >= 0, got {getattr(self, name)}"
                )
        if not 0 <= self.slow_clients <= self.num_clients:
            raise ConfigurationError(
                f"slow_clients must be in [0, {self.num_clients}], "
                f"got {self.slow_clients}"
            )
        if not 0 <= self.churn_clients <= self.num_clients:
            raise ConfigurationError(
                f"churn_clients must be in [0, {self.num_clients}], "
                f"got {self.churn_clients}"
            )
        if self.churn_clients > 0 and self.churn_leave_after_slots < 1:
            raise ConfigurationError(
                "churn_leave_after_slots must be >= 1 when churn_clients > 0"
            )


@dataclass(frozen=True)
class ClientReport:
    """One client's end-of-run view."""

    name: str
    seat: int
    frames: int
    displayed: int
    mean_viewed_quality: float
    mean_delay_slots: float
    fps: float
    end_reason: str
    reject_code: str = ""
    reject_reason: str = ""
    server_summary: Optional[Dict[str, float]] = None
    resumes: int = 0
    redirects: int = 0

    @property
    def rejected(self) -> bool:
        return bool(self.reject_code)


@dataclass(frozen=True)
class FleetReport:
    """All clients' reports for one load-generation run."""

    clients: Tuple[ClientReport, ...]

    @property
    def admitted(self) -> Tuple[ClientReport, ...]:
        return tuple(c for c in self.clients if not c.rejected)

    @property
    def rejected(self) -> Tuple[ClientReport, ...]:
        return tuple(c for c in self.clients if c.rejected)

    def mean_viewed_quality(self) -> Dict[int, float]:
        """Per-seat mean viewed quality across admitted clients."""
        return {
            c.seat: c.mean_viewed_quality
            for c in sorted(self.admitted, key=lambda c: c.seat)
        }


class _ClientState:
    """One phone's cross-connection state.

    Built once from the first WELCOME and kept across reconnects, so
    a resumed session continues its motion trace and display pipeline
    where the outage left them — the client heals, it does not
    restart.
    """

    def __init__(self, config: LoadGenConfig, welcome: Welcome) -> None:
        self.seat = welcome.seat
        world = GridWorld(
            0.0, welcome.world_size_m, 0.0, welcome.world_size_m,
            cell_size=welcome.world_cell_m,
        )
        self.coverage = CoverageEvaluator(
            world,
            TileGrid(),
            FieldOfView(),
            margin_deg=welcome.margin_deg,
            cell_tolerance=welcome.cell_tolerance,
        )
        trace_rng = np.random.default_rng((config.seed, 0, welcome.seat, 17))
        self.trace = MotionTraceGenerator(
            world, MotionConfig(), welcome.slot_s
        ).generate(welcome.num_tx_slots + 1, trace_rng)
        self.phone = Client(
            welcome.seat,
            welcome.client_cache_tiles,
            DecoderPool(welcome.num_decoders, welcome.decode_rate_mbps),
            welcome.slot_s,
        )
        self.end_reason = "disconnected"
        self.server_summary: Optional[Dict[str, float]] = None
        self.resumes = 0


def _final_report(
    name: str, state: _ClientState, redirects: int = 0
) -> ClientReport:
    phone = state.phone
    frames = len(phone.frames)
    displayed = sum(1 for f in phone.frames if f.displayed)
    mean_quality = (
        sum(f.viewed_quality for f in phone.frames) / frames if frames else 0.0
    )
    delays = [f.delay_slots for f in phone.frames if f.level > 0]
    mean_delay = sum(delays) / len(delays) if delays else 0.0
    return ClientReport(
        name=name,
        seat=state.seat,
        frames=frames,
        displayed=displayed,
        mean_viewed_quality=mean_quality,
        mean_delay_slots=mean_delay,
        fps=phone.fps(TARGET_FPS),
        end_reason=state.end_reason,
        server_summary=state.server_summary,
        resumes=state.resumes,
        redirects=redirects,
    )


async def _run_client(
    config: LoadGenConfig,
    index: int,
    injector: Optional[FaultInjector] = None,
) -> ClientReport:
    """Run one emulated phone against the server.

    The outer loop is the self-healing machinery: on a lost
    connection (never on a voluntary leave) the client backs off with
    capped exponential delay plus seeded jitter and rejoins with its
    resume token, continuing its session state in place.
    """
    name = f"{config.client_prefix}-{index}"
    latency_s = (
        config.slow_latency_s if index < config.slow_clients else config.latency_s
    )
    jitter_rng = np.random.default_rng((config.seed, 1009, index))
    reconnect_rng = np.random.default_rng((config.seed, 1013, index))
    leave_after = (
        config.churn_leave_after_slots if index < config.churn_clients else 0
    )
    injector = injector if injector is not None else FaultInjector()
    state: Optional[_ClientState] = None
    token = ""
    attempts = 0
    redirects = 0
    # The address being dialled.  A Redirect moves it to the assigned
    # shard; a lost connection falls back to the configured ("home")
    # endpoint — in a sharded cluster that is the coordinator, which
    # re-routes the client even if its shard just died.
    host, port = config.host, config.port
    while True:
        if attempts:
            await asyncio.sleep(
                config.reconnect.backoff_s(attempts, reconnect_rng)
            )
        can_heal = (
            config.reconnect.enabled and state is not None and bool(token)
        )
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except (ConnectionError, OSError):
            if not can_heal:
                raise
            host, port = config.host, config.port
            attempts += 1
            if attempts > config.reconnect.max_attempts:
                return _final_report(name, state, redirects)
            continue
        done = False
        rejected: Optional[ClientReport] = None
        follow: Optional[Redirect] = None
        try:
            await send_message(
                writer,
                JoinRequest(
                    client=name,
                    version=PROTOCOL_VERSION,
                    token=token,
                    codec=config.codec,
                ),
            )
            # The greeting always travels in the JSON handshake
            # framing; the negotiated codec applies from the frame
            # *after* the welcome.
            greeting = await read_message(reader)
            if isinstance(greeting, Redirect):
                follow = greeting
            elif isinstance(greeting, Reject):
                end_reason = (
                    "resume_failed"
                    if greeting.code == REJECT_RESUME
                    else "rejected"
                )
                rejected = ClientReport(
                    name=name,
                    seat=state.seat if state is not None else -1,
                    frames=0,
                    displayed=0,
                    mean_viewed_quality=0.0,
                    mean_delay_slots=0.0,
                    fps=0.0,
                    end_reason=end_reason,
                    reject_code=greeting.code,
                    reject_reason=greeting.reason,
                    redirects=redirects,
                )
            else:
                if not isinstance(greeting, Welcome):
                    raise TransportError(
                        f"expected welcome, redirect, or reject, got "
                        f"{type(greeting).__name__}"
                    )
                token = greeting.resume_token or token
                wire = WireState()
                if (
                    greeting.codec >= CODEC_BINARY
                    and config.codec >= CODEC_BINARY
                ):
                    wire.upgrade(CODEC_BINARY)
                if state is None:
                    state = _ClientState(config, greeting)
                    await wire_send(
                        writer,
                        wire,
                        Ready(pose=pose_to_wire(state.trace[0].as_vector())),
                    )
                elif greeting.resumed:
                    state.resumes += 1
                    attempts = 0
                outcome = await _session_loop(
                    config, reader, writer, wire, state, latency_s,
                    jitter_rng, leave_after, injector,
                )
                if isinstance(outcome, Redirect):
                    follow = outcome
                else:
                    done = outcome
        except (TransportError, ConnectionError, OSError):
            if not (config.reconnect.enabled and state is not None and token):
                raise
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        if rejected is not None:
            return rejected
        if done:
            return _final_report(name, state, redirects)
        if follow is not None:
            # Redirects are cluster plumbing, not failures: follow
            # immediately (no backoff, no attempt charged) whatever
            # the reconnect policy says, bounded by MAX_REDIRECTS.
            redirects += 1
            if redirects > MAX_REDIRECTS:
                if state is None:
                    raise TransportError(
                        f"{name}: redirected {redirects} times without "
                        "ever being admitted"
                    )
                state.end_reason = "redirect_loop"
                return _final_report(name, state, redirects)
            host, port = follow.host, follow.port
            continue
        # Connection lost mid-session: heal or give up.
        host, port = config.host, config.port
        if not (config.reconnect.enabled and token):
            return _final_report(name, state, redirects)
        attempts += 1
        if attempts > config.reconnect.max_attempts:
            return _final_report(name, state, redirects)


async def _session_loop(
    config: LoadGenConfig,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    wire: WireState,
    state: _ClientState,
    latency_s: float,
    jitter_rng: np.random.Generator,
    leave_after_slots: int,
    injector: FaultInjector,
) -> Union[bool, Redirect]:
    """One connection's slot loop: plans in, reports out.

    Returns True when the run is over (END or voluntary leave), False
    when the connection should be treated as lost, or the
    :class:`Redirect` frame when the server moved this session to
    another shard mid-run (the caller reconnects there with its resume
    token).  Scripted client-side faults act here: ``crash_client``
    aborts without a report, ``corrupt_report`` mangles the report's
    body bytes (the server quarantines it), ``delay_report`` holds the
    report back.
    """
    pending: List[WireFrame] = []
    while True:
        if not pending:
            units = await wire_read(reader, wire)
            if units is None:
                return False
            pending.extend(units)
        message = pending.pop(0).message
        if message is None:
            # A corrupt frame from the server: the slot is lost (the
            # server will charge a missed report), the stream is not.
            continue
        if isinstance(message, Redirect):
            return message
        if isinstance(message, EndOfRun):
            state.end_reason = message.reason
            state.server_summary = dict(message.summary)
            await wire_send(writer, wire, Bye(reason="complete"))
            return True
        if not isinstance(message, TilePlan):
            raise TransportError(
                f"expected plan or end frame, got {type(message).__name__}"
            )
        if injector.take(message.slot, state.seat, FAULT_CRASH_CLIENT):
            # Die mid-slot without a word: the plan is lost, no
            # report goes out, the socket just closes.
            return False
        if latency_s > 0 or config.jitter_s > 0:
            think_s = latency_s + float(
                jitter_rng.uniform(0.0, config.jitter_s)
            )
            if think_s > 0:
                await asyncio.sleep(think_s)
        report = _evaluate_plan(
            message, state.trace, state.coverage, state.phone
        )
        delay = injector.take(message.slot, state.seat, FAULT_DELAY_REPORT)
        if delay is not None:
            await asyncio.sleep(delay.duration_s)
        corrupt = injector.take(
            message.slot, state.seat, FAULT_CORRUPT_REPORT
        )
        if corrupt is not None:
            writer.write(corrupt_frame_bytes(wire_encode(wire, report)))
            await writer.drain()
        else:
            await wire_send(writer, wire, report)
        if leave_after_slots and message.slot + 1 >= leave_after_slots:
            state.end_reason = "churned"
            await wire_send(writer, wire, Bye(reason="churn"))
            return True


def _evaluate_plan(
    plan: TilePlan,
    trace: List[Pose],
    coverage: CoverageEvaluator,
    phone: Client,
) -> SlotReport:
    """Run one slot through the client display pipeline.

    Mirrors the experiment loop exactly: coverage is judged against
    the trace's next-slot pose, the transmission span includes the
    server's startup delay only when tiles were actually sent, and
    the reported delay is clamped to the bounded worst case.
    """
    display_slot = min(plan.slot + 1, len(trace) - 1)
    covered = False
    if plan.level > 0 and plan.predicted_pose is not None:
        covered = bool(
            coverage.evaluate(
                Pose.from_vector(plan.predicted_pose), trace[display_slot]
            ).covered
        )
    transmission_s = (
        plan.duration_s + plan.startup_delay_s
        if plan.tile_bits
        else plan.duration_s
    )
    outcome = phone.receive_frame(
        list(plan.video_ids),
        list(plan.tile_bits),
        list(plan.lost_positions),
        transmission_s,
        covered,
        plan.level,
    )
    delay_slots = (
        min(outcome.delay_slots, MAX_DELAY_SLOTS)
        if math.isfinite(outcome.delay_slots)
        else MAX_DELAY_SLOTS
    )
    lost = set(plan.lost_positions)
    delivered = tuple(
        vid for position, vid in enumerate(plan.video_ids) if position not in lost
    )
    pose_slot = min(plan.slot, len(trace) - 1)
    return SlotReport(
        slot=plan.slot,
        delivered_ids=delivered,
        released_ids=tuple(phone.last_released),
        indicator=outcome.indicator,
        delay_slots=delay_slots,
        viewed_quality=outcome.viewed_quality,
        pose=pose_to_wire(trace[pose_slot].as_vector()),
    )


async def run_fleet(config: LoadGenConfig) -> FleetReport:
    """Run every client concurrently and gather their reports.

    All clients share one :class:`~repro.faults.injection.FaultInjector`
    holding the schedule's client-side events (seats are disjoint, so
    sharing just means one timeline to assert on).
    """
    if config.port == 0:
        raise ConfigurationError("fleet needs a concrete server port")
    injector = FaultInjector(
        config.faults.restricted_to(CLIENT_KINDS)
        if config.faults is not None
        else None
    )
    tasks = [
        asyncio.ensure_future(_run_client(config, index, injector))
        for index in range(config.num_clients)
    ]
    reports = await asyncio.gather(*tasks)
    return FleetReport(clients=tuple(reports))


async def run_serve_and_fleet(
    serve_config: ServeConfig, fleet_config: LoadGenConfig
) -> Tuple[ServeResult, FleetReport]:
    """Run a server and its fleet in-process (tests and benches).

    Starts the server on its configured endpoint, points the fleet at
    the bound port, and returns both end-of-run views.
    """
    server = VrServeServer(serve_config)
    await server.start()
    server_task = asyncio.ensure_future(server.run())
    try:
        fleet = await run_fleet(replace(fleet_config, port=server.port))
        result = await server_task
    finally:
        if not server_task.done():
            server_task.cancel()
            await asyncio.gather(server_task, return_exceptions=True)
    return result, fleet
