"""Client-fleet load generator replaying motion traces over sockets.

Each client emulates one commodity phone end-to-end: it joins the
server, replays a seeded :mod:`repro.traces` motion trace, runs the
real client display pipeline (:class:`~repro.system.client.Client`
with a :class:`~repro.system.client.DecoderPool`), evaluates FoV
coverage against its *own* next-slot pose exactly as the in-process
experiment does, and reports delivery/release ACKs, the display
indicator, and the measured delay back each slot.

With ``seed`` equal to the server's experiment seed, client ``i``'s
trace is drawn from ``default_rng((seed, 0, seat, 17))`` — the same
stream :meth:`~repro.system.experiment.SystemExperiment.run_repeat`
uses for user ``seat`` — which is what makes a full-house lockstep
loopback run reproduce the experiment's numbers.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.content.projection import FieldOfView
from repro.content.tiles import GridWorld, TileGrid
from repro.errors import ConfigurationError, TransportError
from repro.prediction.fov import CoverageEvaluator
from repro.prediction.pose import Pose
from repro.serve.config import PROTOCOL_VERSION, ServeConfig
from repro.serve.protocol import (
    Bye,
    EndOfRun,
    JoinRequest,
    Ready,
    Reject,
    SlotReport,
    TilePlan,
    Welcome,
    pose_to_wire,
    read_message,
    send_message,
)
from repro.serve.server import ServeResult, VrServeServer
from repro.system.client import Client, DecoderPool
from repro.traces.motion import MotionConfig, MotionTraceGenerator
from repro.units import TARGET_FPS

#: Delay clamp applied client-side, matching the experiment loop.
MAX_DELAY_SLOTS = 60.0


@dataclass(frozen=True)
class LoadGenConfig:
    """One client fleet.

    ``latency_s`` / ``jitter_s`` add think-time before each report
    (emulated client-side network latency); the first
    ``slow_clients`` clients use ``slow_latency_s`` instead, which in
    a paced run drives them past the server's lag threshold and into
    degraded (minimum-level) service.  The first ``churn_clients``
    clients leave after ``churn_leave_after_slots`` slots.
    """

    host: str = "127.0.0.1"
    port: int = 0
    num_clients: int = 1
    seed: int = 0
    latency_s: float = 0.0
    jitter_s: float = 0.0
    slow_clients: int = 0
    slow_latency_s: float = 0.0
    churn_clients: int = 0
    churn_leave_after_slots: int = 0
    client_prefix: str = "client"

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ConfigurationError(
                f"num_clients must be >= 1, got {self.num_clients}"
            )
        if not 0 <= self.port <= 0xFFFF:
            # Port 0 is a placeholder for "resolved later" (the
            # in-process helper fills in the server's bound port).
            raise ConfigurationError(f"port must be in [0, 65535], got {self.port}")
        for name in ("latency_s", "jitter_s", "slow_latency_s"):
            if getattr(self, name) < 0:
                raise ConfigurationError(
                    f"{name} must be >= 0, got {getattr(self, name)}"
                )
        if not 0 <= self.slow_clients <= self.num_clients:
            raise ConfigurationError(
                f"slow_clients must be in [0, {self.num_clients}], "
                f"got {self.slow_clients}"
            )
        if not 0 <= self.churn_clients <= self.num_clients:
            raise ConfigurationError(
                f"churn_clients must be in [0, {self.num_clients}], "
                f"got {self.churn_clients}"
            )
        if self.churn_clients > 0 and self.churn_leave_after_slots < 1:
            raise ConfigurationError(
                "churn_leave_after_slots must be >= 1 when churn_clients > 0"
            )


@dataclass(frozen=True)
class ClientReport:
    """One client's end-of-run view."""

    name: str
    seat: int
    frames: int
    displayed: int
    mean_viewed_quality: float
    mean_delay_slots: float
    fps: float
    end_reason: str
    reject_code: str = ""
    reject_reason: str = ""
    server_summary: Optional[Dict[str, float]] = None

    @property
    def rejected(self) -> bool:
        return bool(self.reject_code)


@dataclass(frozen=True)
class FleetReport:
    """All clients' reports for one load-generation run."""

    clients: Tuple[ClientReport, ...]

    @property
    def admitted(self) -> Tuple[ClientReport, ...]:
        return tuple(c for c in self.clients if not c.rejected)

    @property
    def rejected(self) -> Tuple[ClientReport, ...]:
        return tuple(c for c in self.clients if c.rejected)

    def mean_viewed_quality(self) -> Dict[int, float]:
        """Per-seat mean viewed quality across admitted clients."""
        return {
            c.seat: c.mean_viewed_quality
            for c in sorted(self.admitted, key=lambda c: c.seat)
        }


async def _run_client(config: LoadGenConfig, index: int) -> ClientReport:
    """Run one emulated phone against the server."""
    name = f"{config.client_prefix}-{index}"
    latency_s = (
        config.slow_latency_s if index < config.slow_clients else config.latency_s
    )
    jitter_rng = np.random.default_rng((config.seed, 1009, index))
    leave_after = (
        config.churn_leave_after_slots if index < config.churn_clients else 0
    )
    reader, writer = await asyncio.open_connection(config.host, config.port)
    try:
        await send_message(
            writer, JoinRequest(client=name, version=PROTOCOL_VERSION)
        )
        greeting = await read_message(reader)
        if isinstance(greeting, Reject):
            return ClientReport(
                name=name,
                seat=-1,
                frames=0,
                displayed=0,
                mean_viewed_quality=0.0,
                mean_delay_slots=0.0,
                fps=0.0,
                end_reason="rejected",
                reject_code=greeting.code,
                reject_reason=greeting.reason,
            )
        if not isinstance(greeting, Welcome):
            raise TransportError(
                f"expected welcome or reject, got {type(greeting).__name__}"
            )
        return await _run_session(
            config, reader, writer, name, greeting, latency_s, jitter_rng,
            leave_after,
        )
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _run_session(
    config: LoadGenConfig,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    name: str,
    welcome: Welcome,
    latency_s: float,
    jitter_rng: np.random.Generator,
    leave_after_slots: int,
) -> ClientReport:
    """The admitted client's slot loop: plans in, reports out."""
    world = GridWorld(
        0.0, welcome.world_size_m, 0.0, welcome.world_size_m,
        cell_size=welcome.world_cell_m,
    )
    coverage = CoverageEvaluator(
        world,
        TileGrid(),
        FieldOfView(),
        margin_deg=welcome.margin_deg,
        cell_tolerance=welcome.cell_tolerance,
    )
    trace_rng = np.random.default_rng((config.seed, 0, welcome.seat, 17))
    trace = MotionTraceGenerator(world, MotionConfig(), welcome.slot_s).generate(
        welcome.num_tx_slots + 1, trace_rng
    )
    phone = Client(
        welcome.seat,
        welcome.client_cache_tiles,
        DecoderPool(welcome.num_decoders, welcome.decode_rate_mbps),
        welcome.slot_s,
    )
    await send_message(writer, Ready(pose=pose_to_wire(trace[0].as_vector())))

    end_reason = "disconnected"
    server_summary: Optional[Dict[str, float]] = None
    while True:
        message = await read_message(reader)
        if message is None:
            break
        if isinstance(message, EndOfRun):
            end_reason = message.reason
            server_summary = dict(message.summary)
            await send_message(writer, Bye(reason="complete"))
            break
        if not isinstance(message, TilePlan):
            raise TransportError(
                f"expected plan or end frame, got {type(message).__name__}"
            )
        if latency_s > 0 or config.jitter_s > 0:
            think_s = latency_s + float(
                jitter_rng.uniform(0.0, config.jitter_s)
            )
            if think_s > 0:
                await asyncio.sleep(think_s)
        report = _evaluate_plan(message, trace, coverage, phone)
        await send_message(writer, report)
        if leave_after_slots and message.slot + 1 >= leave_after_slots:
            end_reason = "churned"
            await send_message(writer, Bye(reason="churn"))
            break

    frames = len(phone.frames)
    displayed = sum(1 for f in phone.frames if f.displayed)
    mean_quality = (
        sum(f.viewed_quality for f in phone.frames) / frames if frames else 0.0
    )
    delays = [f.delay_slots for f in phone.frames if f.level > 0]
    mean_delay = sum(delays) / len(delays) if delays else 0.0
    return ClientReport(
        name=name,
        seat=welcome.seat,
        frames=frames,
        displayed=displayed,
        mean_viewed_quality=mean_quality,
        mean_delay_slots=mean_delay,
        fps=phone.fps(TARGET_FPS),
        end_reason=end_reason,
        server_summary=server_summary,
    )


def _evaluate_plan(
    plan: TilePlan,
    trace: List[Pose],
    coverage: CoverageEvaluator,
    phone: Client,
) -> SlotReport:
    """Run one slot through the client display pipeline.

    Mirrors the experiment loop exactly: coverage is judged against
    the trace's next-slot pose, the transmission span includes the
    server's startup delay only when tiles were actually sent, and
    the reported delay is clamped to the bounded worst case.
    """
    display_slot = min(plan.slot + 1, len(trace) - 1)
    covered = False
    if plan.level > 0 and plan.predicted_pose is not None:
        covered = bool(
            coverage.evaluate(
                Pose.from_vector(plan.predicted_pose), trace[display_slot]
            ).covered
        )
    transmission_s = (
        plan.duration_s + plan.startup_delay_s
        if plan.tile_bits
        else plan.duration_s
    )
    outcome = phone.receive_frame(
        list(plan.video_ids),
        list(plan.tile_bits),
        list(plan.lost_positions),
        transmission_s,
        covered,
        plan.level,
    )
    delay_slots = (
        min(outcome.delay_slots, MAX_DELAY_SLOTS)
        if math.isfinite(outcome.delay_slots)
        else MAX_DELAY_SLOTS
    )
    lost = set(plan.lost_positions)
    delivered = tuple(
        vid for position, vid in enumerate(plan.video_ids) if position not in lost
    )
    pose_slot = min(plan.slot, len(trace) - 1)
    return SlotReport(
        slot=plan.slot,
        delivered_ids=delivered,
        released_ids=tuple(phone.last_released),
        indicator=outcome.indicator,
        delay_slots=delay_slots,
        viewed_quality=outcome.viewed_quality,
        pose=pose_to_wire(trace[pose_slot].as_vector()),
    )


async def run_fleet(config: LoadGenConfig) -> FleetReport:
    """Run every client concurrently and gather their reports."""
    if config.port == 0:
        raise ConfigurationError("fleet needs a concrete server port")
    tasks = [
        asyncio.ensure_future(_run_client(config, index))
        for index in range(config.num_clients)
    ]
    reports = await asyncio.gather(*tasks)
    return FleetReport(clients=tuple(reports))


async def run_serve_and_fleet(
    serve_config: ServeConfig, fleet_config: LoadGenConfig
) -> Tuple[ServeResult, FleetReport]:
    """Run a server and its fleet in-process (tests and benches).

    Starts the server on its configured endpoint, points the fleet at
    the bound port, and returns both end-of-run views.
    """
    server = VrServeServer(serve_config)
    await server.start()
    server_task = asyncio.ensure_future(server.run())
    try:
        fleet = await run_fleet(replace(fleet_config, port=server.port))
        result = await server_task
    finally:
        if not server_task.done():
            server_task.cancel()
            await asyncio.gather(server_task, return_exceptions=True)
    return result, fleet
