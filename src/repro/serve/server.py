"""The live edge server: sockets in front of the slot-loop pipeline.

:class:`VrServeServer` binds a TCP listener, admits clients onto
scheduler seats, and drives the :class:`~repro.serve.slotloop.SlotLoop`
until ``duration_slots`` transmission slots have run or every client
has left.  The planning stack is exactly the in-process experiment's —
:class:`~repro.system.server.EdgeServer` over the same tile database,
coverage geometry, and Algorithm 1 allocator — with the network
between server and clients emulated by the seeded
:class:`~repro.serve.slotloop.DataPlane`.
"""

from __future__ import annotations

import asyncio
import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.content.gop import GopModel
from repro.core.allocation import DensityValueGreedyAllocator, QualityAllocator
from repro.errors import TransportError
from repro.faults.injection import FaultInjector
from repro.obs.buildinfo import config_fingerprint, register_build_info
from repro.obs.config import Obs
from repro.obs.flight import TRIGGER_ADMISSION_REJECT
from repro.obs.http import ObsHttpServer
from repro.obs.slo import SloEngine
from repro.prediction.pose import Pose
from repro.serve.admission import (
    REJECT_DRAINING,
    REJECT_RESUME,
    AdmissionPolicy,
)
from repro.serve.config import PROTOCOL_VERSION, ServeConfig, resume_enabled
from repro.serve.metrics import ServingMetrics
from repro.serve.protocol import (
    Bye,
    JoinRequest,
    Ready,
    Reject,
    SlotReport,
    Welcome,
)
from repro.serve.protocol2 import (
    CODEC_JSON,
    WireFrame,
    WireState,
    negotiate_codec,
    wire_read,
    wire_send,
)
from repro.serve.sessions import Session, SessionRegistry
from repro.serve.slotloop import DataPlane, SlotLoop
from repro.system.experiment import SystemExperiment
from repro.system.server import EdgeServer


@dataclass(frozen=True)
class ServeResult:
    """Outcome of one serving run."""

    port: int
    slots: int
    metrics: ServingMetrics

    @property
    def deadline_hit_rate(self) -> float:
        return self.metrics.deadline_hit_rate


class VrServeServer:
    """One edge-serving deployment over real loopback/LAN sockets.

    Usage::

        server = VrServeServer(serve_setup1(max_users=8))
        result = await server.run()     # binds, serves, shuts down

    or, for tests that need the bound port before clients start::

        await server.start()
        port = server.port
        result = await server.run()
    """

    def __init__(
        self,
        config: ServeConfig,
        allocator: Optional[QualityAllocator] = None,
    ) -> None:
        self.config = config
        cfg = config.experiment
        self.experiment = SystemExperiment(cfg)
        if allocator is not None:
            self.allocator: QualityAllocator = allocator
        elif config.kernel:
            # Same allocations as the heap solver, vectorized; see
            # repro.kernel (the array path falls back to the object
            # solver whenever its preconditions fail).
            from repro.kernel.allocator import ArrayAllocator

            self.allocator = ArrayAllocator()
        else:
            self.allocator = DensityValueGreedyAllocator()
        self.allocator.reset()
        self.data_plane = DataPlane(cfg)
        router_of = None
        router_budgets = None
        if cfg.router_aware:
            router_of = [u % cfg.num_routers for u in range(cfg.num_users)]
            router_budgets = [
                cfg.router_capacity_mbps * cfg.router_planning_efficiency
            ] * cfg.num_routers
        self.edge = EdgeServer(
            cfg.num_users,
            self.allocator,
            cfg.weights,
            self.experiment.database,
            self.experiment.coverage,
            cfg.server_budget_mbps,
            initial_cap_mbps=cfg.initial_cap_mbps,
            content_refresh_slots=cfg.content_refresh_slots,
            safety_factor=cfg.safety_factor,
            router_of=router_of,
            router_budgets_mbps=router_budgets,
            gop=GopModel(cfg.gop_length, cfg.gop_i_to_p_ratio),
            slot_s=cfg.slot_s,
        )
        self.registry = SessionRegistry(config.max_users)
        self.admission = AdmissionPolicy(config.max_users, PROTOCOL_VERSION)
        self.obs = Obs.from_config(config.obs)
        self.injector = FaultInjector(config.faults, registry=self.obs.registry)
        self.metrics = ServingMetrics(
            config.slot_s,
            registry=self.obs.registry,
            exact_latency=config.exact_stage_latency,
        )
        register_build_info(
            self.obs.registry,
            shard=config.shard_index,
            config_hash=config_fingerprint(config),
        )
        self.slo: Optional[SloEngine] = None
        if config.obs.slo is not None:
            self.slo = SloEngine(
                config.obs.slo, self.obs.registry, seats=config.max_users
            )
        self.slot_loop = SlotLoop(
            config, self.edge, self.registry, self.metrics, self.data_plane,
            obs=self.obs, injector=self.injector, slo=self.slo,
        )
        self.edge.scheduler.attach_registry(self.obs.registry)
        self._listener: Optional[asyncio.AbstractServer] = None
        self._bound_port = 0
        self._conn_tasks: Set["asyncio.Task[None]"] = set()
        self._ready_event = asyncio.Event()
        self._http: Optional[ObsHttpServer] = None
        if config.obs.http_port is not None:
            self._http = ObsHttpServer(
                self.obs.registry,
                health_fn=self.health,
                host=config.obs.http_host,
                port=config.obs.http_port,
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound TCP port (valid after :meth:`start`)."""
        if self._bound_port == 0:
            raise TransportError("server is not listening yet")
        return self._bound_port

    @property
    def metrics_port(self) -> int:
        """The observability endpoint's bound port (when enabled)."""
        if self._http is None:
            raise TransportError("observability endpoint is not configured")
        return self._http.port

    def health(self) -> Dict[str, object]:
        """Liveness payload for the ``/healthz`` endpoint."""
        payload: Dict[str, object] = {
            "slots_run": self.slot_loop.slots_run,
            "num_tx_slots": self.config.num_tx_slots,
            "sessions": self.registry.occupancy(),
            "ready": self.registry.ready_count(),
            "deadline_hit_rate": self.metrics.deadline_hit_rate,
        }
        if self.slo is not None:
            payload["slo"] = self.slo.status()
        return payload

    async def start(self) -> None:
        """Bind the listener (without running the slot loop yet)."""
        if self._listener is not None:
            return
        self._listener = await asyncio.start_server(
            self._on_connection, host=self.config.host, port=self.config.port
        )
        if self._listener.sockets:
            self._bound_port = int(
                self._listener.sockets[0].getsockname()[1]
            )
        if self._http is not None:
            await self._http.start()

    async def run(self) -> ServeResult:
        """Serve one full run and shut down cleanly."""
        await self.start()
        try:
            await self.wait_for_ready(
                self.config.expect_clients, self.config.start_timeout_s
            )
            await self.slot_loop.run()
        finally:
            await self._shutdown()
        return ServeResult(
            port=self._bound_port,
            slots=self.slot_loop.slots_run,
            metrics=self.metrics,
        )

    async def run_admitted(self) -> ServeResult:
        """Serve a run whose readiness someone else already gated.

        A shard coordinator (:mod:`repro.shard`) admits clients across
        several servers and releases them all at once; each shard then
        runs its slot loop directly without waiting for its own
        ``expect_clients`` quorum.
        """
        await self.start()
        try:
            await self.slot_loop.run()
        finally:
            await self._shutdown()
        return ServeResult(
            port=self._bound_port,
            slots=self.slot_loop.slots_run,
            metrics=self.metrics,
        )

    async def wait_for_ready(self, count: int, timeout_s: float) -> None:
        """Block until ``count`` sessions are ready (joined + posed)."""
        loop = asyncio.get_running_loop()
        deadline_s = loop.time() + timeout_s
        while self.registry.ready_count() < count:
            remaining_s = deadline_s - loop.time()
            if remaining_s <= 0:
                raise TransportError(
                    f"timed out waiting for {count} clients "
                    f"({self.registry.ready_count()} ready after "
                    f"{timeout_s:.1f}s)"
                )
            self._ready_event.clear()
            try:
                await asyncio.wait_for(self._ready_event.wait(), remaining_s)
            except asyncio.TimeoutError:
                continue

    async def aclose(self) -> None:
        """Tear down a server that never ran (or already finished).

        The shard supervisor keeps spare servers bound and listening;
        one that is replaced without serving a run still has to close
        its listener, observability endpoint, and accepted connections.
        """
        if self._http is not None:
            await self._http.stop()
        await self.obs.aclose()
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None
        if self._conn_tasks:
            for task in self._conn_tasks:
                task.cancel()
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
            self._conn_tasks.clear()

    async def _shutdown(self) -> None:
        """Send end-of-run frames, close every socket, reap all tasks."""
        if self._http is not None:
            await self._http.stop()
        await self.obs.aclose()
        self.admission.start_draining()
        for session, frame in self.slot_loop.end_frames("complete"):
            if session.writer is None:
                continue
            try:
                await wire_send(
                    session.writer, session.wire, frame,
                    channel=session.channel,
                )
            except (TransportError, ConnectionError, OSError):
                session.alive = False
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None
        if self._conn_tasks:
            # Clients answer the end frame with a bye/EOF; give the
            # handlers a short grace period, then cancel stragglers.
            done, pending = await asyncio.wait(
                set(self._conn_tasks), timeout=self.config.join_timeout_s
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            self._conn_tasks.clear()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._handle_connection(reader, writer))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one physical connection, which may carry many sessions.

        The first frame is always a JSON join (the negotiation
        carrier); once a binary codec is negotiated, further joins
        may arrive *on the same connection* as channel-tagged binary
        JOIN frames — that is the multiplexed load-generator path.
        Sessions that leave with a BYE are torn down immediately;
        whatever remains when the connection dies is handled by the
        disconnect/resume logic, exactly as for a dedicated socket.
        """
        wire = WireState()
        sessions: Dict[int, Session] = {}
        timed_out = False
        try:
            session = await self._admit_first(reader, writer, wire)
            if session is None:
                return
            sessions[session.seat] = session
            await self._connection_frames(reader, writer, wire, sessions)
        except asyncio.TimeoutError:
            timed_out = True
        except (TransportError, ConnectionError, OSError):
            pass
        finally:
            for session in list(sessions.values()):
                self._tear_down(
                    session, writer, said_bye=False, timed_out=timed_out
                )
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _tear_down(
        self,
        session: Optional[Session],
        writer: asyncio.StreamWriter,
        said_bye: bool,
        timed_out: bool,
    ) -> None:
        """Release or park the seat when its connection handler exits.

        A connection that died without a BYE is a *disconnect*: with
        resume enabled the seat is parked (scheduler state intact)
        until the client re-attaches or the grace window expires.
        Voluntary leaves, timeouts, and shutdown keep the original
        release-immediately behaviour.
        """
        if session is None:
            return
        if session.writer is not writer:
            # The seat was already re-bound to a newer connection
            # (resume won the race); this handler owns nothing now.
            return
        if session.detached:
            # Parked by the slot loop (injected disconnect); the
            # grace logic owns the seat.
            return
        lost = not said_bye and not timed_out and not self.admission.draining
        if lost and resume_enabled(self.config):
            self.registry.detach(session.seat, self.slot_loop.slots_run)
            self.metrics.record_disconnect()
            return
        if lost:
            self.metrics.record_disconnect()
        self.registry.release(session.seat, timed_out=timed_out)
        self.metrics.record_leave(timed_out=timed_out)
        self.edge.reset_user(session.seat)
        self._ready_event.set()

    async def _admit_first(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        wire: WireState,
    ) -> Optional[Session]:
        """Read the connection's opening JSON join and admit it."""
        units = await asyncio.wait_for(
            wire_read(reader, wire), self.config.join_timeout_s
        )
        if units is None:
            raise TransportError("connection closed before a join frame")
        first = units[0]
        if not isinstance(first.message, JoinRequest):
            got = (
                "corrupt frame"
                if first.message is None
                else type(first.message).__name__
            )
            raise TransportError(f"expected a join frame first, got {got}")
        return await self._admit(first.message, writer, wire, first.channel)

    async def _admit(
        self,
        message: JoinRequest,
        writer: asyncio.StreamWriter,
        wire: WireState,
        channel: int,
    ) -> Optional[Session]:
        """Run the join handshake; returns None when rejected.

        The reply travels under the connection's *current* codec (the
        JSON handshake framing for the first join, binary for joins
        multiplexed onto an upgraded connection) tagged with the
        client-chosen ``channel``; the negotiated codec takes effect
        only after the welcome is on the wire.
        """
        if message.token:
            return await self._resume(message, writer, wire, channel)
        codec = (
            negotiate_codec(message.codec, self.config.codec_max)
            if wire.codec == CODEC_JSON
            else wire.codec
        )
        decision = self.admission.decide(
            message.version, self.registry.occupancy()
        )
        if not decision.admitted:
            self.metrics.record_reject(decision.code)
            self.obs.flight.trigger(
                TRIGGER_ADMISSION_REJECT,
                detail=f"{decision.code}: {decision.reason}",
                slot=self.slot_loop.slots_run,
            )
            await wire_send(
                writer,
                wire,
                Reject(
                    code=decision.code,
                    reason=decision.reason,
                    capacity=self.config.max_users,
                ),
                channel=channel,
            )
            return None
        session = self.registry.admit(
            message.client,
            writer,
            guideline_mbps=0.0,
            joined_slot=self.slot_loop.slots_run,
        )
        session.guideline_mbps = self.data_plane.guidelines_mbps[session.seat]
        session.token = self._make_token(session.seat)
        session.trace_id = self._make_trace_id(session.seat)
        session.wire = wire
        if channel >= 0:
            # A channel-tagged join is the multiplexed path: from the
            # welcome on, this session's frames are tagged by seat.
            session.channel = session.seat
        self.metrics.record_join()
        self.metrics.record_protocol_session(codec)
        await wire_send(
            writer,
            wire,
            self._welcome(session, resumed=False, codec=codec),
            channel=channel,
        )
        wire.upgrade(codec)
        return session

    def _make_token(self, seat: int) -> str:
        """A deterministic per-admission resume token.

        Derived from the run seed, the seat, and the admission
        ordinal, so a same-seed run mints the same tokens — tokens
        are capability handles for the chaos tests, not secrets.
        """
        material = (
            f"{self.config.experiment.seed}:{seat}:{self.registry.total_joins}"
        )
        return hashlib.sha256(material.encode("ascii")).hexdigest()[:32]

    def _make_trace_id(self, seat: int) -> str:
        """A deterministic per-session trace identity.

        Same derivation discipline as :meth:`_make_token` but with a
        distinct salt: the ID is minted once at first admission and
        then *carried* (through resumes and the migration handoff
        blob), never re-minted, so every shard stamps the same ID on
        the session's spans.
        """
        material = (
            f"trace:{self.config.experiment.seed}:{seat}:"
            f"{self.registry.total_joins}"
        )
        return hashlib.sha256(material.encode("ascii")).hexdigest()[:16]

    def _welcome(self, session: Session, resumed: bool, codec: int) -> Welcome:
        cfg = self.config.experiment
        return Welcome(
            seat=session.seat,
            version=PROTOCOL_VERSION,
            slot_s=cfg.slot_s,
            num_tx_slots=self.config.num_tx_slots,
            guideline_mbps=session.guideline_mbps,
            level_count=self.experiment.database.num_levels,
            world_size_m=cfg.world_size_m,
            world_cell_m=self.experiment.world.cell_size,
            margin_deg=cfg.margin_deg,
            cell_tolerance=cfg.cell_tolerance,
            client_cache_tiles=cfg.client_cache_tiles,
            num_decoders=cfg.num_decoders,
            decode_rate_mbps=cfg.decode_rate_mbps,
            lockstep=self.config.lockstep,
            resume_token=session.token,
            resumed=resumed,
            shard=self.config.shard_index,
            codec=codec,
        )

    async def _resume(
        self,
        message: JoinRequest,
        writer: asyncio.StreamWriter,
        wire: WireState,
        channel: int,
    ) -> Optional[Session]:
        """Re-attach a reconnecting client to its detached seat."""
        if self.admission.draining:
            # End-of-run frames are already on the wire (or gone): a
            # resume granted now would hang waiting for a plan that
            # will never come.  Refuse it the way a fresh join is
            # refused, so the client ends cleanly instead of idling.
            self.metrics.record_reject(REJECT_DRAINING)
            await wire_send(
                writer,
                wire,
                Reject(
                    code=REJECT_DRAINING,
                    reason="server is draining; nothing left to resume",
                    capacity=self.config.max_users,
                ),
                channel=channel,
            )
            return None
        codec = (
            negotiate_codec(message.codec, self.config.codec_max)
            if wire.codec == CODEC_JSON
            else wire.codec
        )
        # Binding the *new* connection's wire resets the binary
        # codec's delta/ack maps: the first report after any resume is
        # absolute, never a delta against a dead connection's pose.
        session = self.registry.resume(message.token, writer, wire=wire)
        if session is None:
            self.metrics.record_reject(REJECT_RESUME)
            await wire_send(
                writer,
                wire,
                Reject(
                    code=REJECT_RESUME,
                    reason="resume token matches no detached seat",
                    capacity=self.config.max_users,
                ),
                channel=channel,
            )
            return None
        if channel >= 0:
            session.channel = session.seat
        self.metrics.record_session_resume()
        self.metrics.record_protocol_session(codec)
        await wire_send(
            writer,
            wire,
            self._welcome(session, resumed=True, codec=codec),
            channel=channel,
        )
        wire.upgrade(codec)
        return session

    async def _connection_frames(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        wire: WireState,
        sessions: Dict[int, Session],
    ) -> None:
        """Consume a connection's frames until every session is gone.

        Returns normally when the peer closed cleanly (EOF) or the
        last session left with a BYE; sessions still in ``sessions``
        at EOF are handled as disconnects by the caller.
        """
        while sessions:
            stall_s = max(s.stall_read_s for s in sessions.values())
            if stall_s > 0:
                # Injected uplink stall: the handler freezes before
                # its next read, exactly as a radio dropout would.
                for session in sessions.values():
                    session.stall_read_s = 0.0
                await asyncio.sleep(stall_s)
            units = await asyncio.wait_for(
                wire_read(reader, wire), self.config.idle_timeout_s
            )
            if units is None:
                return
            for unit in units:
                await self._dispatch_unit(unit, writer, wire, sessions)

    async def _dispatch_unit(
        self,
        unit: WireFrame,
        writer: asyncio.StreamWriter,
        wire: WireState,
        sessions: Dict[int, Session],
    ) -> None:
        """Route one decoded wire unit to its session."""
        message = unit.message
        session: Optional[Session] = None
        if unit.channel >= 0:
            session = sessions.get(unit.channel)
        elif len(sessions) == 1:
            session = next(iter(sessions.values()))
        if message is None:
            # Quarantine: the framing survived, so the stream is
            # still synchronized — drop the frame, count it, and
            # keep the session (and the whole connection) alive.
            if session is not None:
                session.corrupt_frames += 1
            self.metrics.record_corrupt_frame()
            return
        if isinstance(message, JoinRequest):
            joined = await self._admit(message, writer, wire, unit.channel)
            if joined is not None:
                sessions[joined.seat] = joined
            return
        if session is None:
            # A data frame for a seat this connection does not carry
            # (e.g. a straggler report after a BYE): droppable, but
            # never fatal to the other multiplexed sessions.
            self.metrics.record_corrupt_frame()
            return
        if unit.channel >= 0:
            session.channel = unit.channel
        if isinstance(message, Bye):
            self._tear_down(session, writer, said_bye=True, timed_out=False)
            del sessions[session.seat]
            return
        if isinstance(message, Ready):
            if not session.ready:
                self.edge.observe_pose(
                    session.seat, Pose.from_vector(message.pose)
                )
                session.ready = True
                self._ready_event.set()
        elif isinstance(message, SlotReport):
            session.store_report(message, self.slot_loop.slots_run)
            self.registry.notify_report()
        else:
            raise TransportError(
                f"unexpected {type(message).__name__} frame mid-session"
            )
