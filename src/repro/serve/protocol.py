"""The serving wire protocol: length-prefixed JSON frames over TCP.

The control plane of Fig. 4 carried by real sockets.  Every frame is
a 4-byte big-endian length prefix followed by one UTF-8 JSON object
with a ``kind`` tag::

    0        4             4 + length
    ┌────────┬─────────────────┐
    │ length │  JSON payload   │
    │ u32    │  {"kind": ...}  │
    └────────┴─────────────────┘

Client → server: ``join`` (admission request), ``ready`` (initial
pose), ``report`` (one slot's realized outcome: delivery ACKs,
release ACKs, display indicator, measured delay, and the slot's pose
upload), ``bye``.  Server → client: ``welcome`` (seat assignment and
the emulation parameters the client needs), ``reject`` (admission
denied, with a machine-readable code), ``plan`` (one slot's tile
bundle: quality level, video ids, per-tile sizes, and the emulated
RTP transmission outcome), ``end`` (run complete, with the server's
view of the session's QoE).

Tile *payloads* are not shipped as bytes — the RTP data plane is
emulated server-side with :class:`~repro.system.transport.RtpChannel`
— but every quantity a real client would measure (per-tile sizes,
lost packets, first-to-last-packet span) crosses the wire so the
client-side display pipeline runs on exactly the data a phone would
have.
"""

from __future__ import annotations

import asyncio
import json
import struct
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import FrameCorruptError, TransportError

#: Frames larger than this are rejected (a frame is one slot of one
#: user's control data — far below this bound in practice).
MAX_FRAME_BYTES = 1 << 20

_LENGTH_PREFIX = struct.Struct("!I")


# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JoinRequest:
    """Client -> server: ask for a seat.

    A non-empty ``token`` turns the join into a *resume*: the client
    lost its connection and asks to re-attach to the seat that issued
    the token, provided the grace window has not expired.

    ``codec`` is the newest wire-codec generation the client can
    speak (1 = this JSON framing, 2 = the binary framing of
    :mod:`repro.serve.protocol2`).  Clients that predate the field
    simply omit it and default to 1, so they keep speaking JSON
    end-to-end — codec negotiation is orthogonal to the protocol
    ``version`` admission check.
    """

    client: str
    version: int
    token: str = ""
    codec: int = 1

    KIND = "join"

    def payload(self) -> Dict[str, Any]:
        return {
            "kind": self.KIND,
            "client": self.client,
            "version": self.version,
            "token": self.token,
            "codec": self.codec,
        }


@dataclass(frozen=True)
class Welcome:
    """Server -> client: admitted; everything needed to emulate a phone."""

    seat: int
    version: int
    slot_s: float
    num_tx_slots: int
    guideline_mbps: float
    level_count: int
    world_size_m: float
    world_cell_m: float
    margin_deg: float
    cell_tolerance: int
    client_cache_tiles: int
    num_decoders: int
    decode_rate_mbps: float
    lockstep: bool
    resume_token: str = ""
    resumed: bool = False
    #: Index of the shard that owns this session (-1: unsharded server).
    shard: int = -1
    #: Wire-codec generation selected for this connection (the
    #: server's answer to ``JoinRequest.codec``).  Both sides switch
    #: framing only *after* this welcome, which itself always travels
    #: in the codec the join arrived under.
    codec: int = 1

    KIND = "welcome"

    def payload(self) -> Dict[str, Any]:
        return {
            "kind": self.KIND,
            "seat": self.seat,
            "version": self.version,
            "slot_s": self.slot_s,
            "num_tx_slots": self.num_tx_slots,
            "guideline_mbps": self.guideline_mbps,
            "level_count": self.level_count,
            "world_size_m": self.world_size_m,
            "world_cell_m": self.world_cell_m,
            "margin_deg": self.margin_deg,
            "cell_tolerance": self.cell_tolerance,
            "client_cache_tiles": self.client_cache_tiles,
            "num_decoders": self.num_decoders,
            "decode_rate_mbps": self.decode_rate_mbps,
            "lockstep": self.lockstep,
            "resume_token": self.resume_token,
            "resumed": self.resumed,
            "shard": self.shard,
            "codec": self.codec,
        }


@dataclass(frozen=True)
class Reject:
    """Server -> client: admission denied."""

    code: str
    reason: str
    capacity: int

    KIND = "reject"

    def payload(self) -> Dict[str, Any]:
        return {
            "kind": self.KIND,
            "code": self.code,
            "reason": self.reason,
            "capacity": self.capacity,
        }


@dataclass(frozen=True)
class Redirect:
    """Server -> client: connect to another endpoint instead.

    Sent by a shard coordinator in place of a :class:`Welcome` (the
    router assigned the client to a shard) or mid-session when a
    seat is migrated to another shard.  The client should reconnect
    to ``host:port`` — presenting its resume token when it holds one
    — and expect the regular admission/resume handshake there.
    """

    host: str
    port: int
    shard: int
    reason: str

    KIND = "redirect"

    def payload(self) -> Dict[str, Any]:
        return {
            "kind": self.KIND,
            "host": self.host,
            "port": self.port,
            "shard": self.shard,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class Ready:
    """Client -> server: initial pose; the session may now be planned."""

    pose: Tuple[float, ...]

    KIND = "ready"

    def payload(self) -> Dict[str, Any]:
        return {"kind": self.KIND, "pose": list(self.pose)}


@dataclass(frozen=True)
class TilePlan:
    """Server -> client: one slot's bundle and its emulated delivery."""

    slot: int
    level: int
    predicted_pose: Optional[Tuple[float, ...]]
    video_ids: Tuple[int, ...]
    tile_bits: Tuple[float, ...]
    lost_positions: Tuple[int, ...]
    duration_s: float
    startup_delay_s: float
    demand_mbps: float
    achieved_mbps: float
    degraded: bool

    KIND = "plan"

    def payload(self) -> Dict[str, Any]:
        return {
            "kind": self.KIND,
            "slot": self.slot,
            "level": self.level,
            "predicted_pose": (
                list(self.predicted_pose)
                if self.predicted_pose is not None
                else None
            ),
            "video_ids": list(self.video_ids),
            "tile_bits": list(self.tile_bits),
            "lost_positions": list(self.lost_positions),
            "duration_s": self.duration_s,
            "startup_delay_s": self.startup_delay_s,
            "demand_mbps": self.demand_mbps,
            "achieved_mbps": self.achieved_mbps,
            "degraded": self.degraded,
        }


@dataclass(frozen=True)
class SlotReport:
    """Client -> server: one slot's realized outcome plus pose upload."""

    slot: int
    delivered_ids: Tuple[int, ...]
    released_ids: Tuple[int, ...]
    indicator: int
    delay_slots: float
    viewed_quality: float
    pose: Tuple[float, ...]

    KIND = "report"

    def payload(self) -> Dict[str, Any]:
        return {
            "kind": self.KIND,
            "slot": self.slot,
            "delivered_ids": list(self.delivered_ids),
            "released_ids": list(self.released_ids),
            "indicator": self.indicator,
            "delay_slots": self.delay_slots,
            "viewed_quality": self.viewed_quality,
            "pose": list(self.pose),
        }


@dataclass(frozen=True)
class EndOfRun:
    """Server -> client: the run is over; the server's QoE view."""

    slots: int
    reason: str
    summary: Mapping[str, float]

    KIND = "end"

    def payload(self) -> Dict[str, Any]:
        return {
            "kind": self.KIND,
            "slots": self.slots,
            "reason": self.reason,
            "summary": dict(self.summary),
        }


@dataclass(frozen=True)
class Bye:
    """Client -> server: leaving voluntarily."""

    reason: str

    KIND = "bye"

    def payload(self) -> Dict[str, Any]:
        return {"kind": self.KIND, "reason": self.reason}


ServeMessage = Union[
    JoinRequest,
    Welcome,
    Reject,
    Redirect,
    Ready,
    TilePlan,
    SlotReport,
    EndOfRun,
    Bye,
]


# ---------------------------------------------------------------------------
# Payload validation helpers
# ---------------------------------------------------------------------------


def _get_str(payload: Mapping[str, Any], key: str) -> str:
    value = payload.get(key)
    if not isinstance(value, str):
        raise FrameCorruptError(f"field {key!r} must be a string, got {value!r}")
    return value


def _get_str_default(
    payload: Mapping[str, Any], key: str, default: str
) -> str:
    value = payload.get(key, default)
    if not isinstance(value, str):
        raise FrameCorruptError(f"field {key!r} must be a string, got {value!r}")
    return value


def _get_bool_default(
    payload: Mapping[str, Any], key: str, default: bool
) -> bool:
    value = payload.get(key, default)
    if not isinstance(value, bool):
        raise FrameCorruptError(f"field {key!r} must be a boolean, got {value!r}")
    return value


def _get_int_default(payload: Mapping[str, Any], key: str, default: int) -> int:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise FrameCorruptError(f"field {key!r} must be an integer, got {value!r}")
    return value


def _get_int(payload: Mapping[str, Any], key: str) -> int:
    value = payload.get(key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise FrameCorruptError(f"field {key!r} must be an integer, got {value!r}")
    return value


def _get_float(payload: Mapping[str, Any], key: str) -> float:
    value = payload.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise FrameCorruptError(f"field {key!r} must be a number, got {value!r}")
    return float(value)


def _get_bool(payload: Mapping[str, Any], key: str) -> bool:
    value = payload.get(key)
    if not isinstance(value, bool):
        raise FrameCorruptError(f"field {key!r} must be a boolean, got {value!r}")
    return value


def _get_int_tuple(payload: Mapping[str, Any], key: str) -> Tuple[int, ...]:
    value = payload.get(key)
    if not isinstance(value, list):
        raise FrameCorruptError(f"field {key!r} must be a list, got {value!r}")
    items = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, int):
            raise FrameCorruptError(f"field {key!r} must hold integers, got {item!r}")
        items.append(item)
    return tuple(items)


def _get_float_tuple(payload: Mapping[str, Any], key: str) -> Tuple[float, ...]:
    value = payload.get(key)
    if not isinstance(value, list):
        raise FrameCorruptError(f"field {key!r} must be a list, got {value!r}")
    items = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            raise FrameCorruptError(f"field {key!r} must hold numbers, got {item!r}")
        items.append(float(item))
    return tuple(items)


def _get_pose(payload: Mapping[str, Any], key: str) -> Tuple[float, ...]:
    pose = _get_float_tuple(payload, key)
    if len(pose) != 6:
        raise FrameCorruptError(f"field {key!r} must hold 6 floats, got {len(pose)}")
    return pose


def _get_summary(payload: Mapping[str, Any], key: str) -> Dict[str, float]:
    value = payload.get(key)
    if not isinstance(value, dict):
        raise FrameCorruptError(f"field {key!r} must be an object, got {value!r}")
    summary: Dict[str, float] = {}
    for name, item in value.items():
        if not isinstance(name, str):
            raise FrameCorruptError(f"field {key!r} must have string keys")
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            raise FrameCorruptError(f"field {key!r} must hold numbers, got {item!r}")
        summary[name] = float(item)
    return summary


# ---------------------------------------------------------------------------
# Codec
# ---------------------------------------------------------------------------


def parse_message(payload: Mapping[str, Any]) -> ServeMessage:
    """Validate a decoded JSON payload into a typed message."""
    kind = _get_str(payload, "kind")
    if kind == JoinRequest.KIND:
        return JoinRequest(
            client=_get_str(payload, "client"),
            version=_get_int(payload, "version"),
            token=_get_str_default(payload, "token", ""),
            codec=_get_int_default(payload, "codec", 1),
        )
    if kind == Welcome.KIND:
        return Welcome(
            seat=_get_int(payload, "seat"),
            version=_get_int(payload, "version"),
            slot_s=_get_float(payload, "slot_s"),
            num_tx_slots=_get_int(payload, "num_tx_slots"),
            guideline_mbps=_get_float(payload, "guideline_mbps"),
            level_count=_get_int(payload, "level_count"),
            world_size_m=_get_float(payload, "world_size_m"),
            world_cell_m=_get_float(payload, "world_cell_m"),
            margin_deg=_get_float(payload, "margin_deg"),
            cell_tolerance=_get_int(payload, "cell_tolerance"),
            client_cache_tiles=_get_int(payload, "client_cache_tiles"),
            num_decoders=_get_int(payload, "num_decoders"),
            decode_rate_mbps=_get_float(payload, "decode_rate_mbps"),
            lockstep=_get_bool(payload, "lockstep"),
            resume_token=_get_str_default(payload, "resume_token", ""),
            resumed=_get_bool_default(payload, "resumed", False),
            shard=_get_int_default(payload, "shard", -1),
            codec=_get_int_default(payload, "codec", 1),
        )
    if kind == Reject.KIND:
        return Reject(
            code=_get_str(payload, "code"),
            reason=_get_str(payload, "reason"),
            capacity=_get_int(payload, "capacity"),
        )
    if kind == Redirect.KIND:
        return Redirect(
            host=_get_str(payload, "host"),
            port=_get_int(payload, "port"),
            shard=_get_int(payload, "shard"),
            reason=_get_str(payload, "reason"),
        )
    if kind == Ready.KIND:
        return Ready(pose=_get_pose(payload, "pose"))
    if kind == TilePlan.KIND:
        predicted_raw = payload.get("predicted_pose")
        predicted = (
            None if predicted_raw is None else _get_pose(payload, "predicted_pose")
        )
        return TilePlan(
            slot=_get_int(payload, "slot"),
            level=_get_int(payload, "level"),
            predicted_pose=predicted,
            video_ids=_get_int_tuple(payload, "video_ids"),
            tile_bits=_get_float_tuple(payload, "tile_bits"),
            lost_positions=_get_int_tuple(payload, "lost_positions"),
            duration_s=_get_float(payload, "duration_s"),
            startup_delay_s=_get_float(payload, "startup_delay_s"),
            demand_mbps=_get_float(payload, "demand_mbps"),
            achieved_mbps=_get_float(payload, "achieved_mbps"),
            degraded=_get_bool(payload, "degraded"),
        )
    if kind == SlotReport.KIND:
        return SlotReport(
            slot=_get_int(payload, "slot"),
            delivered_ids=_get_int_tuple(payload, "delivered_ids"),
            released_ids=_get_int_tuple(payload, "released_ids"),
            indicator=_get_int(payload, "indicator"),
            delay_slots=_get_float(payload, "delay_slots"),
            viewed_quality=_get_float(payload, "viewed_quality"),
            pose=_get_pose(payload, "pose"),
        )
    if kind == EndOfRun.KIND:
        return EndOfRun(
            slots=_get_int(payload, "slots"),
            reason=_get_str(payload, "reason"),
            summary=_get_summary(payload, "summary"),
        )
    if kind == Bye.KIND:
        return Bye(reason=_get_str(payload, "reason"))
    raise FrameCorruptError(f"unknown message kind {kind!r}")


def encode_message(message: ServeMessage) -> bytes:
    """Frame a message: u32 length prefix + compact JSON."""
    try:
        body = json.dumps(
            message.payload(), separators=(",", ":"), allow_nan=False
        ).encode("utf-8")
    except ValueError as exc:
        raise TransportError(f"cannot encode {message!r}: {exc}") from exc
    if len(body) > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame too large: {len(body)} bytes > {MAX_FRAME_BYTES}"
        )
    return _LENGTH_PREFIX.pack(len(body)) + body


def _reject_constant(token: str) -> float:
    # The encoder refuses NaN/Infinity (allow_nan=False); without
    # this hook the *decoder* would accept them, so a hand-crafted
    # frame could smuggle in non-finite floats the codec can never
    # produce — and that the binary codec symmetrically rejects.
    # Raised from inside ``json.loads``, so it propagates out of
    # ``decode_payload`` directly rather than via the malformed-frame
    # wrapper below.
    raise FrameCorruptError(f"non-finite JSON constant {token!r}")


def decode_payload(body: bytes) -> ServeMessage:
    """Decode one frame body (without the length prefix)."""
    try:
        payload = json.loads(
            body.decode("utf-8"), parse_constant=_reject_constant
        )
    except (ValueError, UnicodeDecodeError) as exc:
        raise FrameCorruptError(f"malformed frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise FrameCorruptError(f"frame must be a JSON object, got {payload!r}")
    return parse_message(payload)


async def read_message(
    reader: asyncio.StreamReader,
) -> Optional[ServeMessage]:
    """Read one framed message; ``None`` on a clean EOF between frames."""
    try:
        prefix = await reader.readexactly(_LENGTH_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TransportError("connection closed mid-frame") from exc
    (length,) = _LENGTH_PREFIX.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise TransportError(f"frame too large: {length} bytes > {MAX_FRAME_BYTES}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise TransportError("connection closed mid-frame") from exc
    return decode_payload(body)


async def send_message(
    writer: asyncio.StreamWriter,
    message: ServeMessage,
    drain: bool = True,
) -> None:
    """Write one framed message.

    ``drain=False`` queues the frame without awaiting the transport
    (the server's slot loop must never block on one slow client; it
    watches the write-buffer size instead).
    """
    writer.write(encode_message(message))
    if drain:
        await writer.drain()


def write_message(writer: asyncio.StreamWriter, message: ServeMessage) -> int:
    """Queue one framed message without draining; returns frame size."""
    frame = encode_message(message)
    writer.write(frame)
    return len(frame)


def pose_to_wire(poses: Sequence[float]) -> Tuple[float, ...]:
    """Clamp a pose vector into the 6-float wire representation."""
    values = tuple(float(v) for v in poses)
    if len(values) != 6:
        raise TransportError(f"a pose has 6 components, got {len(values)}")
    return values
