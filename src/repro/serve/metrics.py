"""Structured serving metrics: deadlines, stage latencies, realized QoE.

The slot loop must finish predict + allocate + encode + send inside
one ``SLOT_DURATION_S`` period or the frame misses its display slot
(Section III ties QoE directly to that deadline).  The serving layer
therefore times every stage of every slot, tracks the slot-deadline
hit rate as its headline number, and folds each user's realized
outcomes into the same :class:`~repro.system.telemetry.Telemetry`
record stream the in-process experiment produces — one schema for
both worlds.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Mapping, Tuple

from repro.errors import ConfigurationError
from repro.system.telemetry import Telemetry

#: Pipeline stages timed by the slot loop, in execution order.
STAGES = ("predict", "allocate", "encode", "send", "slot")


class LatencyHistogram:
    """Exact-quantile latency recorder for one pipeline stage.

    Stores every sample (a serving run is bounded by
    ``duration_slots``, so memory is bounded too) and answers
    quantile queries by sorting on demand; the sort is amortised by
    caching until the next insert.
    """

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._sorted: List[float] = []
        self._dirty = False

    def __len__(self) -> int:
        return len(self._samples)

    def record(self, seconds: float) -> None:
        """Add one latency sample (negative values are invalid)."""
        if seconds < 0:
            raise ConfigurationError(f"latency must be >= 0, got {seconds}")
        self._samples.append(seconds)
        self._dirty = True

    def _ordered(self) -> List[float]:
        if self._dirty:
            self._sorted = sorted(self._samples)
            self._dirty = False
        return self._sorted

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile in seconds (0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        ordered = self._ordered()
        if not ordered:
            return 0.0
        rank = min(int(q * len(ordered)), len(ordered) - 1)
        return ordered[rank]

    def mean(self) -> float:
        return sum(self._samples) / len(self._samples) if self._samples else 0.0

    def max(self) -> float:
        ordered = self._ordered()
        return ordered[-1] if ordered else 0.0

    def fraction_below(self, threshold_s: float) -> float:
        """Fraction of samples strictly below a threshold (1.0 when empty)."""
        ordered = self._ordered()
        if not ordered:
            return 1.0
        return bisect.bisect_left(ordered, threshold_s) / len(ordered)

    def summary_ms(self) -> Dict[str, float]:
        """p50/p90/p99/mean/max in milliseconds."""
        return {
            "count": float(len(self._samples)),
            "p50_ms": self.quantile(0.50) * 1e3,
            "p90_ms": self.quantile(0.90) * 1e3,
            "p99_ms": self.quantile(0.99) * 1e3,
            "mean_ms": self.mean() * 1e3,
            "max_ms": self.max() * 1e3,
        }


class ServingMetrics:
    """All counters and histograms for one serving run.

    ``slot_s`` is the deadline each slot's pipeline is measured
    against.  The embedded :class:`Telemetry` receives one
    :class:`~repro.system.telemetry.SlotUserRecord` per (slot, seat)
    from the slot loop — the same schema
    :meth:`~repro.system.experiment.SystemExperiment.run_repeat`
    emits, so existing analysis tooling applies unchanged.
    """

    def __init__(self, slot_s: float) -> None:
        if slot_s <= 0:
            raise ConfigurationError(f"slot_s must be positive, got {slot_s}")
        self.slot_s = slot_s
        self.stage_latency: Dict[str, LatencyHistogram] = {
            stage: LatencyHistogram() for stage in STAGES
        }
        self.slots = 0
        self.deadline_hits = 0
        self.joins = 0
        self.leaves = 0
        self.timeouts = 0
        self.rejects: Dict[str, int] = {}
        self.degraded_user_slots = 0
        self.missed_reports = 0
        self.late_reports = 0
        self.dropped_frames = 0
        self.telemetry = Telemetry()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_stage(self, stage: str, seconds: float) -> None:
        """Time one pipeline stage of the current slot."""
        if stage not in self.stage_latency:
            raise ConfigurationError(
                f"unknown stage {stage!r}; expected one of {STAGES}"
            )
        self.stage_latency[stage].record(seconds)

    def record_slot(self, seconds: float) -> None:
        """Close out one slot: total pipeline time vs the deadline."""
        self.stage_latency["slot"].record(seconds)
        self.slots += 1
        if seconds < self.slot_s:
            self.deadline_hits += 1

    def record_reject(self, code: str) -> None:
        self.rejects[code] = self.rejects.get(code, 0) + 1

    # ------------------------------------------------------------------
    # Derived figures
    # ------------------------------------------------------------------
    @property
    def deadline_hit_rate(self) -> float:
        """Fraction of slots whose pipeline beat the slot deadline."""
        return self.deadline_hits / self.slots if self.slots else 0.0

    def per_user_quality(self) -> Dict[int, float]:
        """Mean viewed quality per seat from the telemetry stream.

        "Viewed quality" follows the experiment's convention: the
        allocated level when the frame was displayed, 0 otherwise —
        averaged over the seat's planned slots.
        """
        totals: Dict[int, Tuple[float, int]] = {}
        for record in self.telemetry.records:
            quality = float(record.level) if record.displayed else 0.0
            total, count = totals.get(record.user, (0.0, 0))
            totals[record.user] = (total + quality, count + 1)
        return {
            user: total / count for user, (total, count) in sorted(totals.items())
        }

    def summary(self) -> Dict[str, object]:
        """One JSON-serialisable dict with every headline figure."""
        stages: Dict[str, Mapping[str, float]] = {
            stage: hist.summary_ms()
            for stage, hist in self.stage_latency.items()
            if len(hist)
        }
        return {
            "slots": self.slots,
            "deadline_hits": self.deadline_hits,
            "deadline_hit_rate": self.deadline_hit_rate,
            "slot_deadline_ms": self.slot_s * 1e3,
            "stage_latency_ms": stages,
            "joins": self.joins,
            "leaves": self.leaves,
            "timeouts": self.timeouts,
            "rejects": dict(sorted(self.rejects.items())),
            "degraded_user_slots": self.degraded_user_slots,
            "missed_reports": self.missed_reports,
            "late_reports": self.late_reports,
            "dropped_frames": self.dropped_frames,
            "per_user_mean_viewed_quality": {
                str(user): quality
                for user, quality in self.per_user_quality().items()
            },
        }
