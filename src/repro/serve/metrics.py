"""Structured serving metrics: deadlines, stage latencies, realized QoE.

The slot loop must finish predict + allocate + encode + send inside
one ``SLOT_DURATION_S`` period or the frame misses its display slot
(Section III ties QoE directly to that deadline).  The serving layer
therefore times every stage of every slot, tracks the slot-deadline
hit rate as its headline number, and folds each user's realized
outcomes into the same :class:`~repro.system.telemetry.Telemetry`
record stream the in-process experiment produces — one schema for
both worlds.

Every counter and histogram here lives in a
:class:`~repro.obs.registry.MetricsRegistry`, so the numbers the
``summary()`` dict reports and the numbers the live ``/metrics``
endpoint exposes are the same instruments, not parallel bookkeeping.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.registry import (
    BucketHistogram,
    DEFAULT_LATENCY_BUCKETS_S,
    MetricsRegistry,
)
from repro.system.telemetry import Telemetry

#: Pipeline stages timed by the slot loop, in execution order.
STAGES = ("predict", "allocate", "encode", "send", "slot")


class LatencyHistogram:
    """Latency recorder for one pipeline stage.

    Backed by a bounded :class:`~repro.obs.registry.BucketHistogram`
    — ``O(buckets)`` memory however long the run, interpolated
    quantiles — which replaced an unbounded store-every-sample,
    sort-on-query recorder.  Short benchmark runs that need
    nearest-rank quantiles can opt back into sample retention with
    ``exact=True``; the bucket vector is still fed either way so the
    exposition page stays complete.
    """

    def __init__(
        self,
        exact: bool = False,
        buckets: Optional[BucketHistogram] = None,
    ) -> None:
        self._buckets = (
            buckets
            if buckets is not None
            else BucketHistogram(DEFAULT_LATENCY_BUCKETS_S)
        )
        self._exact = exact
        self._samples: List[float] = []
        self._sorted: List[float] = []
        self._dirty = False

    @property
    def exact(self) -> bool:
        return self._exact

    def __len__(self) -> int:
        return self._buckets.count

    def record(self, seconds: float) -> None:
        """Add one latency sample (negative values are invalid)."""
        if seconds < 0:
            raise ConfigurationError(f"latency must be >= 0, got {seconds}")
        self._buckets.observe(seconds)
        if self._exact:
            self._samples.append(seconds)
            self._dirty = True

    def _ordered(self) -> List[float]:
        if self._dirty:
            self._sorted = sorted(self._samples)
            self._dirty = False
        return self._sorted

    def quantile(self, q: float) -> float:
        """Quantile in seconds (0 when empty).

        Nearest-rank over the retained samples in exact mode,
        bucket-interpolated otherwise.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self._exact:
            ordered = self._ordered()
            if not ordered:
                return 0.0
            rank = min(int(q * len(ordered)), len(ordered) - 1)
            return ordered[rank]
        return self._buckets.quantile(q)

    def mean(self) -> float:
        return self._buckets.mean()

    def max(self) -> float:
        return self._buckets.max()

    def fraction_below(self, threshold_s: float) -> float:
        """Fraction of samples strictly below a threshold (1.0 when empty)."""
        if self._exact:
            ordered = self._ordered()
            if not ordered:
                return 1.0
            return bisect.bisect_left(ordered, threshold_s) / len(ordered)
        return self._buckets.fraction_below(threshold_s)

    def summary_ms(self) -> Dict[str, float]:
        """p50/p90/p99/mean/max in milliseconds."""
        return {
            "count": float(len(self)),
            "p50_ms": self.quantile(0.50) * 1e3,
            "p90_ms": self.quantile(0.90) * 1e3,
            "p99_ms": self.quantile(0.99) * 1e3,
            "mean_ms": self.mean() * 1e3,
            "max_ms": self.max() * 1e3,
        }


class ServingMetrics:
    """All counters and histograms for one serving run.

    ``slot_s`` is the deadline each slot's pipeline is measured
    against.  The embedded :class:`Telemetry` receives one
    :class:`~repro.system.telemetry.SlotUserRecord` per (slot, seat)
    from the slot loop — the same schema
    :meth:`~repro.system.experiment.SystemExperiment.run_repeat`
    emits, so existing analysis tooling applies unchanged.

    All figures live in ``registry`` (a fresh one when not supplied):
    reads go through properties, writes through ``record_*`` methods,
    so the serving layer cannot drift from its ``/metrics`` page.
    """

    def __init__(
        self,
        slot_s: float,
        registry: Optional[MetricsRegistry] = None,
        exact_latency: bool = False,
    ) -> None:
        if slot_s <= 0:
            raise ConfigurationError(f"slot_s must be positive, got {slot_s}")
        self.slot_s = slot_s
        self.registry = registry if registry is not None else MetricsRegistry()
        stage_family = self.registry.histogram_family(
            "repro_serve_stage_latency_seconds",
            "Slot-pipeline stage latency",
            ("stage",),
        )
        self.stage_latency: Dict[str, LatencyHistogram] = {
            stage: LatencyHistogram(
                exact=exact_latency,
                buckets=stage_family.histogram_child(stage=stage),
            )
            for stage in STAGES
        }
        self._slots = self.registry.counter(
            "repro_serve_slots_total", "Transmission slots executed"
        )
        self._deadline_hits = self.registry.counter(
            "repro_serve_deadline_hits_total",
            "Slots whose pipeline finished inside the slot deadline",
        )
        self._joins = self.registry.counter(
            "repro_serve_joins_total", "Clients admitted onto a seat"
        )
        self._leaves = self.registry.counter(
            "repro_serve_leaves_total", "Sessions released (any reason)"
        )
        self._timeouts = self.registry.counter(
            "repro_serve_timeouts_total", "Sessions released by a timeout"
        )
        self._rejects = self.registry.counter_family(
            "repro_serve_rejects_total",
            "Join requests rejected by the admission policy",
            ("code",),
        )
        self._degraded_user_slots = self.registry.counter(
            "repro_serve_degraded_user_slots_total",
            "User-slots served at the degraded minimum level",
        )
        self._missed_reports = self.registry.counter(
            "repro_serve_missed_reports_total",
            "Planned user-slots whose client report never arrived",
        )
        self._late_reports = self.registry.gauge(
            "repro_serve_late_reports",
            "Late reports accumulated across the live sessions",
        )
        self._dropped_frames = self.registry.counter(
            "repro_serve_dropped_frames_total",
            "Plan frames dropped at the write watermark",
        )
        self._active_sessions = self.registry.gauge(
            "repro_serve_active_sessions", "Sessions currently admitted"
        )
        self._disconnects = self.registry.counter(
            "repro_serve_disconnects_total",
            "Connections lost without a BYE (parked for resume or released)",
        )
        self._session_resumes = self.registry.counter(
            "repro_serve_session_resumes_total",
            "Detached sessions successfully re-attached by token",
        )
        self._resume_failures = self.registry.counter(
            "repro_serve_session_resume_failures_total",
            "Detached sessions whose grace window expired unclaimed",
        )
        self._corrupt_frames = self.registry.counter(
            "repro_serve_corrupt_frames_total",
            "Undecodable frames quarantined without dropping the session",
        )
        self._detached_user_slots = self.registry.counter(
            "repro_serve_detached_user_slots_total",
            "User-slots spent detached (awaiting resume or migration)",
        )
        self._migrations_out = self.registry.counter(
            "repro_serve_migrations_out_total",
            "Sessions handed off to another shard",
        )
        self._migrations_in = self.registry.counter(
            "repro_serve_migrations_in_total",
            "Sessions adopted from another shard",
        )
        # Wire-codec figures are registry-only by design: summary()
        # must stay bit-identical between a JSON and a binary run of
        # the same seed (the differential tier pins that), so nothing
        # codec-dependent may leak into it.
        self._protocol_sessions = self.registry.counter_family(
            "repro_serve_protocol_sessions_total",
            "Sessions welcomed, by negotiated wire-codec generation",
            ("version",),
        )
        self._protocol_frames = self.registry.counter_family(
            "repro_serve_protocol_frames_total",
            "Wire frames sent/received by the slot pipeline",
            ("version", "direction"),
        )
        self.telemetry = Telemetry()
        self.telemetry.attach_registry(self.registry)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_stage(self, stage: str, seconds: float) -> None:
        """Time one pipeline stage of the current slot."""
        if stage not in self.stage_latency:
            raise ConfigurationError(
                f"unknown stage {stage!r}; expected one of {STAGES}"
            )
        self.stage_latency[stage].record(seconds)

    def record_slot(self, seconds: float) -> None:
        """Close out one slot: total pipeline time vs the deadline."""
        self.stage_latency["slot"].record(seconds)
        self._slots.inc()
        if seconds < self.slot_s:
            self._deadline_hits.inc()

    def record_reject(self, code: str) -> None:
        self._rejects.counter_child(code=code).inc()

    def record_join(self) -> None:
        self._joins.inc()
        self._active_sessions.inc()

    def record_leave(self, timed_out: bool = False) -> None:
        self._leaves.inc()
        self._active_sessions.dec()
        if timed_out:
            self._timeouts.inc()

    def record_degraded_user_slot(self) -> None:
        self._degraded_user_slots.inc()

    def record_missed_report(self) -> None:
        self._missed_reports.inc()

    def record_dropped_frame(self) -> None:
        self._dropped_frames.inc()

    def set_late_reports(self, count: int) -> None:
        self._late_reports.set(count)

    def record_disconnect(self) -> None:
        self._disconnects.inc()

    def record_session_resume(self) -> None:
        self._session_resumes.inc()

    def record_resume_failure(self) -> None:
        self._resume_failures.inc()

    def record_corrupt_frame(self) -> None:
        self._corrupt_frames.inc()

    def record_detached_user_slots(self, count: int) -> None:
        """Count seats that spent this slot detached (downtime budget)."""
        if count > 0:
            self._detached_user_slots.inc(count)

    def record_migration_out(self) -> None:
        """A seat left for another shard — not a leave, not a failure.

        The active-session gauge drops (the seat is free here) but the
        leave counter is untouched: migrations are the coordinator's
        doing, and run-level accounting must not read them as churn.
        """
        self._migrations_out.inc()
        self._active_sessions.dec()

    def record_migration_in(self) -> None:
        """A seat adopted from another shard (counts as occupancy)."""
        self._migrations_in.inc()
        self._active_sessions.inc()

    def record_protocol_session(self, codec: int) -> None:
        """A welcome went out under the given wire-codec generation."""
        self._protocol_sessions.counter_child(version=str(codec)).inc()

    def record_protocol_frames(
        self, codec: int, direction: str, count: int = 1
    ) -> None:
        """Count slot-pipeline frames by codec generation and direction."""
        if count > 0:
            self._protocol_frames.counter_child(
                version=str(codec), direction=direction
            ).inc(count)

    # ------------------------------------------------------------------
    # Reads (all backed by the registry instruments)
    # ------------------------------------------------------------------
    @property
    def slots(self) -> int:
        return self._slots.count

    @property
    def deadline_hits(self) -> int:
        return self._deadline_hits.count

    @property
    def joins(self) -> int:
        return self._joins.count

    @property
    def leaves(self) -> int:
        return self._leaves.count

    @property
    def timeouts(self) -> int:
        return self._timeouts.count

    @property
    def rejects(self) -> Dict[str, int]:
        """Reject counts by admission code (empty when none)."""
        return {
            values[0]: int(child.value)
            for values, child in self._rejects.children()
            if child.value
        }

    @property
    def degraded_user_slots(self) -> int:
        return self._degraded_user_slots.count

    @property
    def missed_reports(self) -> int:
        return self._missed_reports.count

    @property
    def late_reports(self) -> int:
        return int(self._late_reports.value)

    @property
    def dropped_frames(self) -> int:
        return self._dropped_frames.count

    @property
    def active_sessions(self) -> int:
        return int(self._active_sessions.value)

    @property
    def disconnects(self) -> int:
        return self._disconnects.count

    @property
    def session_resumes(self) -> int:
        return self._session_resumes.count

    @property
    def resume_failures(self) -> int:
        return self._resume_failures.count

    @property
    def corrupt_frames(self) -> int:
        return self._corrupt_frames.count

    @property
    def detached_user_slots(self) -> int:
        return self._detached_user_slots.count

    @property
    def migrations_out(self) -> int:
        return self._migrations_out.count

    @property
    def migrations_in(self) -> int:
        return self._migrations_in.count

    @property
    def protocol_sessions(self) -> Dict[str, int]:
        """Welcomed-session counts keyed by codec generation."""
        return {
            values[0]: int(child.value)
            for values, child in self._protocol_sessions.children()
            if child.value
        }

    # ------------------------------------------------------------------
    # Derived figures
    # ------------------------------------------------------------------
    @property
    def deadline_hit_rate(self) -> float:
        """Fraction of slots whose pipeline beat the slot deadline."""
        return self.deadline_hits / self.slots if self.slots else 0.0

    def per_user_quality(self) -> Dict[int, float]:
        """Mean viewed quality per seat from the telemetry stream.

        "Viewed quality" follows the experiment's convention: the
        allocated level when the frame was displayed, 0 otherwise —
        averaged over the seat's planned slots.
        """
        totals: Dict[int, Tuple[float, int]] = {}
        for record in self.telemetry.records:
            quality = float(record.level) if record.displayed else 0.0
            total, count = totals.get(record.user, (0.0, 0))
            totals[record.user] = (total + quality, count + 1)
        return {
            user: total / count for user, (total, count) in sorted(totals.items())
        }

    def summary(self) -> Dict[str, object]:
        """One JSON-serialisable dict with every headline figure."""
        stages: Dict[str, Mapping[str, float]] = {
            stage: hist.summary_ms()
            for stage, hist in self.stage_latency.items()
            if len(hist)
        }
        return {
            "slots": self.slots,
            "deadline_hits": self.deadline_hits,
            "deadline_hit_rate": self.deadline_hit_rate,
            "slot_deadline_ms": self.slot_s * 1e3,
            "stage_latency_ms": stages,
            "joins": self.joins,
            "leaves": self.leaves,
            "timeouts": self.timeouts,
            "rejects": dict(sorted(self.rejects.items())),
            "degraded_user_slots": self.degraded_user_slots,
            "missed_reports": self.missed_reports,
            "late_reports": self.late_reports,
            "dropped_frames": self.dropped_frames,
            "disconnects": self.disconnects,
            "session_resumes": self.session_resumes,
            "resume_failures": self.resume_failures,
            "corrupt_frames": self.corrupt_frames,
            "migrations_out": self.migrations_out,
            "migrations_in": self.migrations_in,
            "per_user_mean_viewed_quality": {
                str(user): quality
                for user, quality in self.per_user_quality().items()
            },
        }
