"""Serving capacity benchmark: users sustained within the slot deadline.

For each fleet size the bench runs a full paced loopback serve —
real sockets, real asyncio scheduling, the seeded emulated data plane
— and records the slot-deadline hit rate and the p50/p99 slot
pipeline latency.  The headline number is the largest fleet the box
sustains at the target hit rate (99% by default): the serving-side
answer to the paper's "how many users can one edge server carry"
question.  Results append to ``BENCH_serve.json`` via
:func:`repro.perf.bench.persist_run`.

A note on ``missed_reports`` in paced bench output: the fold deadline
for slot ``N`` is the top of slot ``N+1``, so a client's report must
round-trip within one ``slot_s`` of *wall* time.  On a contended
single-CPU box the shared event loop can starve the client coroutines
for a few slots, producing bursty missed-report counts (and, via lag
degradation, ``degraded_user_slots``) that do not reproduce on an
idle machine and do not move the deadline hit rate — the server-side
pipeline is unaffected.  ``tests/serve/test_missed_reports.py`` pins
the invariant that the same fleets under lockstep miss nothing.

A note on the ``mux`` row at the default 128 clients: on a one-core
container the slot budget is lost *before* the wire is touched —
``EdgeServer.plan_slot`` alone costs ~15-25 ms per slot at 128 seats
(isolated measurement, no sockets, either allocator), against a
16.7 ms ``slot_s``.  The per-stage histograms in the run show the
same thing (allocate p50 ≈ 15 ms; encode + send p99 ≈ 2.6 ms), so a
sub-deadline p99 at this scale needs either more cores or a faster
planner — the protocol stages are an order of magnitude inside
budget, which is exactly what this row is here to demonstrate.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.serve.config import ServeConfig, serve_setup1
from repro.serve.loadgen import LoadGenConfig, run_serve_and_fleet
from repro.serve.mux import run_serve_and_mux_fleet
from repro.serve.protocol import SlotReport, TilePlan, decode_payload, encode_message
from repro.serve.protocol2 import CODEC_BINARY, CODEC_JSON, BinaryChannelCodec

BENCH_SERVE_FILE = "BENCH_serve.json"

#: Frames encoded+decoded per timed repetition of the codec micro-bench.
_CODEC_BATCH = 256


def _codec_workload() -> Tuple[TilePlan, SlotReport]:
    """One representative plan/report pair (the steady-state frames)."""
    pose = (12.5, 3.25, 1.6, 0.31, -0.12, 0.05)
    plan = TilePlan(
        slot=41,
        level=4,
        predicted_pose=pose,
        video_ids=tuple(range(7001, 7013)),
        tile_bits=tuple(float(2_000_000 + 1000 * i) for i in range(12)),
        lost_positions=(3, 9),
        duration_s=0.0125,
        startup_delay_s=0.0031,
        demand_mbps=38.5,
        achieved_mbps=31.2,
        degraded=False,
    )
    report = SlotReport(
        slot=41,
        delivered_ids=tuple(range(7001, 7013)),
        released_ids=(6801, 6802, 6803),
        indicator=1,
        delay_slots=1.5,
        viewed_quality=4.0,
        pose=pose,
    )
    return plan, report


def _split(frame: bytes) -> Tuple[int, int, bytes]:
    """(type, flags, body) of one v2 frame, as the reader loop sees it."""
    return frame[2], frame[3], frame[8:]


def _bench_codec(repeats: int = 5) -> Dict[str, float]:
    """Frames/s through encode+decode for the JSON and binary codecs.

    Both arms run the same plan/report stream.  The binary arm pays
    its full protocol cost — delta state updates, ack bookkeeping —
    by running a connected encoder/decoder pair, exactly the work a
    server and client do per frame.
    """
    plan, report = _codec_workload()

    def _json_pass() -> float:
        started = time.perf_counter()
        for _ in range(_CODEC_BATCH):
            decode_payload(encode_message(plan)[4:])
            decode_payload(encode_message(report)[4:])
        return time.perf_counter() - started

    def _binary_pass() -> float:
        server = BinaryChannelCodec()
        client = BinaryChannelCodec()
        started = time.perf_counter()
        for _ in range(_CODEC_BATCH):
            frame = server.encode(plan)
            client.decode(frame[2], frame[3], frame[8:])
            frame = client.encode(report)
            server.decode(frame[2], frame[3], frame[8:])
        return time.perf_counter() - started

    # Warm-up pass first so allocator/cache effects hit neither arm.
    _json_pass()
    _binary_pass()
    json_s = min(_json_pass() for _ in range(repeats))
    binary_s = min(_binary_pass() for _ in range(repeats))
    frames = float(2 * _CODEC_BATCH)

    # Wire size in steady state (second frame of a connected pair, so
    # the v2 report rides a pose delta): the codec's headline win is
    # bytes on the radio link, not CPU.
    json_bytes = len(encode_message(plan)) + len(encode_message(report))
    server = BinaryChannelCodec()
    client = BinaryChannelCodec()
    for _ in range(2):
        client.decode(*_split(server.encode(plan)))
        server.decode(*_split(client.encode(report)))
    binary_bytes = len(server.encode(plan)) + len(client.encode(report))
    return {
        "frames_per_s_v1": frames / json_s if json_s > 0 else 0.0,
        "frames_per_s_v2": frames / binary_s if binary_s > 0 else 0.0,
        "codec_speedup": json_s / binary_s if binary_s > 0 else 0.0,
        "bytes_per_pair_v1": float(json_bytes),
        "bytes_per_pair_v2": float(binary_bytes),
        "bytes_ratio": json_bytes / binary_bytes if binary_bytes else 0.0,
    }


def _paced_config(num_users: int, slots: int, seed: int) -> ServeConfig:
    """One paced bench server with exact quantiles retained."""
    return replace(
        serve_setup1(
            max_users=num_users,
            duration_slots=slots + 1,
            seed=seed,
            expect_clients=num_users,
        ),
        exact_stage_latency=True,
    )


def _fleet_row(
    num_users: int, slots: int, seed: int, codec: int
) -> Dict[str, float]:
    """One paced real-socket fleet run pinned to one codec generation."""
    serve_config = replace(_paced_config(num_users, slots, seed),
                           codec_max=codec)
    fleet_config = LoadGenConfig(
        num_clients=num_users, seed=seed, codec=codec
    )
    result, _ = asyncio.run(run_serve_and_fleet(serve_config, fleet_config))
    metrics = result.metrics
    slot_hist = metrics.stage_latency["slot"]
    return {
        "codec": float(codec),
        "users": float(num_users),
        "deadline_hit_rate": metrics.deadline_hit_rate,
        "p50_slot_ms": slot_hist.quantile(0.50) * 1e3,
        "p99_slot_ms": slot_hist.quantile(0.99) * 1e3,
        "missed_reports": float(metrics.missed_reports),
    }


def _mux_row(
    clients: int, connections: int, slots: int, seed: int
) -> Dict[str, float]:
    """One paced multiplexed run: many virtual clients, few sockets.

    The server allocates with the array kernel — at this seat count
    the per-user-object solver, not the wire, would dominate the slot
    budget and hide what the bench is measuring.
    """
    serve_config = replace(
        _paced_config(clients, slots, seed), kernel=True
    )
    fleet_config = LoadGenConfig(num_clients=clients, seed=seed)
    result, fleet = asyncio.run(
        run_serve_and_mux_fleet(serve_config, fleet_config, connections)
    )
    metrics = result.metrics
    slot_hist = metrics.stage_latency["slot"]
    completed = sum(
        1 for c in fleet.clients if c.end_reason == "complete"
    )
    return {
        "clients": float(clients),
        "connections": float(connections),
        "completed": float(completed),
        "deadline_hit_rate": metrics.deadline_hit_rate,
        "p50_slot_ms": slot_hist.quantile(0.50) * 1e3,
        "p99_slot_ms": slot_hist.quantile(0.99) * 1e3,
        "missed_reports": float(metrics.missed_reports),
    }


def bench_serve(
    user_counts: Sequence[int] = (2, 4, 8),
    slots: int = 120,
    seed: int = 0,
    deadline_target: float = 0.99,
    mux_clients: int = 128,
    mux_connections: int = 4,
) -> Dict[str, object]:
    """Measure slot-deadline behaviour across fleet sizes.

    Each fleet size gets one paced loopback run of ``slots``
    transmission slots with all clients local and zero think-time;
    ``users_sustained`` is the largest size whose deadline hit rate
    meets ``deadline_target``.

    The ``protocol`` section compares the two wire codecs: an
    encode+decode micro-bench (``codec_speedup`` is v2 over v1), one
    paced fleet run per codec at the largest configured fleet size,
    and one multiplexed run driving ``mux_clients`` virtual clients
    over ``mux_connections`` sockets (``mux_clients`` of 0 skips it).
    """
    if slots < 3:
        raise ConfigurationError(f"slots must be >= 3, got {slots}")
    if not user_counts:
        raise ConfigurationError("need at least one fleet size")
    if not 0 < deadline_target <= 1:
        raise ConfigurationError(
            f"deadline_target must be in (0, 1], got {deadline_target}"
        )
    if mux_clients < 0:
        raise ConfigurationError(
            f"mux_clients must be >= 0, got {mux_clients}"
        )
    if mux_connections < 1:
        raise ConfigurationError(
            f"mux_connections must be >= 1, got {mux_connections}"
        )
    results: List[Dict[str, float]] = []
    users_sustained = 0
    for num_users in sorted(set(int(n) for n in user_counts)):
        if num_users < 1:
            raise ConfigurationError(f"fleet sizes must be >= 1, got {num_users}")
        # A bench run is short, so exact nearest-rank quantiles are
        # affordable and keep the reported p50/p99 bucket-free.
        serve_config = _paced_config(num_users, slots, seed)
        fleet_config = LoadGenConfig(num_clients=num_users, seed=seed)
        result, fleet = asyncio.run(
            run_serve_and_fleet(serve_config, fleet_config)
        )
        metrics = result.metrics
        hit_rate = metrics.deadline_hit_rate
        if hit_rate >= deadline_target and not fleet.rejected:
            users_sustained = max(users_sustained, num_users)
        slot_hist = metrics.stage_latency["slot"]
        results.append(
            {
                "users": float(num_users),
                "slots": float(metrics.slots),
                "deadline_hit_rate": hit_rate,
                "p50_slot_ms": slot_hist.quantile(0.50) * 1e3,
                "p99_slot_ms": slot_hist.quantile(0.99) * 1e3,
                "max_slot_ms": slot_hist.max() * 1e3,
                "degraded_user_slots": float(metrics.degraded_user_slots),
                "missed_reports": float(metrics.missed_reports),
            }
        )
    compare_users = max(int(n) for n in user_counts)
    protocol: Dict[str, object] = dict(_bench_codec())
    protocol["fleets"] = [
        _fleet_row(compare_users, slots, seed, CODEC_JSON),
        _fleet_row(compare_users, slots, seed, CODEC_BINARY),
    ]
    if mux_clients > 0:
        protocol["mux"] = _mux_row(
            mux_clients, mux_connections, slots, seed
        )
    return {
        "kind": "serve",
        "slots": int(slots),
        "deadline_target": float(deadline_target),
        "users_sustained": int(users_sustained),
        "fleets": results,
        "protocol": protocol,
    }
