"""Serving capacity benchmark: users sustained within the slot deadline.

For each fleet size the bench runs a full paced loopback serve —
real sockets, real asyncio scheduling, the seeded emulated data plane
— and records the slot-deadline hit rate and the p50/p99 slot
pipeline latency.  The headline number is the largest fleet the box
sustains at the target hit rate (99% by default): the serving-side
answer to the paper's "how many users can one edge server carry"
question.  Results append to ``BENCH_serve.json`` via
:func:`repro.perf.bench.persist_run`.

A note on ``missed_reports`` in paced bench output: the fold deadline
for slot ``N`` is the top of slot ``N+1``, so a client's report must
round-trip within one ``slot_s`` of *wall* time.  On a contended
single-CPU box the shared event loop can starve the client coroutines
for a few slots, producing bursty missed-report counts (and, via lag
degradation, ``degraded_user_slots``) that do not reproduce on an
idle machine and do not move the deadline hit rate — the server-side
pipeline is unaffected.  ``tests/serve/test_missed_reports.py`` pins
the invariant that the same fleets under lockstep miss nothing.
"""

from __future__ import annotations

import asyncio
from dataclasses import replace
from typing import Dict, List, Sequence

from repro.errors import ConfigurationError
from repro.serve.config import serve_setup1
from repro.serve.loadgen import LoadGenConfig, run_serve_and_fleet

BENCH_SERVE_FILE = "BENCH_serve.json"


def bench_serve(
    user_counts: Sequence[int] = (2, 4, 8),
    slots: int = 120,
    seed: int = 0,
    deadline_target: float = 0.99,
) -> Dict[str, object]:
    """Measure slot-deadline behaviour across fleet sizes.

    Each fleet size gets one paced loopback run of ``slots``
    transmission slots with all clients local and zero think-time;
    ``users_sustained`` is the largest size whose deadline hit rate
    meets ``deadline_target``.
    """
    if slots < 3:
        raise ConfigurationError(f"slots must be >= 3, got {slots}")
    if not user_counts:
        raise ConfigurationError("need at least one fleet size")
    if not 0 < deadline_target <= 1:
        raise ConfigurationError(
            f"deadline_target must be in (0, 1], got {deadline_target}"
        )
    results: List[Dict[str, float]] = []
    users_sustained = 0
    for num_users in sorted(set(int(n) for n in user_counts)):
        if num_users < 1:
            raise ConfigurationError(f"fleet sizes must be >= 1, got {num_users}")
        # A bench run is short, so exact nearest-rank quantiles are
        # affordable and keep the reported p50/p99 bucket-free.
        serve_config = replace(
            serve_setup1(
                max_users=num_users,
                duration_slots=slots + 1,
                seed=seed,
                expect_clients=num_users,
            ),
            exact_stage_latency=True,
        )
        fleet_config = LoadGenConfig(num_clients=num_users, seed=seed)
        result, fleet = asyncio.run(
            run_serve_and_fleet(serve_config, fleet_config)
        )
        metrics = result.metrics
        hit_rate = metrics.deadline_hit_rate
        if hit_rate >= deadline_target and not fleet.rejected:
            users_sustained = max(users_sustained, num_users)
        slot_hist = metrics.stage_latency["slot"]
        results.append(
            {
                "users": float(num_users),
                "slots": float(metrics.slots),
                "deadline_hit_rate": hit_rate,
                "p50_slot_ms": slot_hist.quantile(0.50) * 1e3,
                "p99_slot_ms": slot_hist.quantile(0.99) * 1e3,
                "max_slot_ms": slot_hist.max() * 1e3,
                "degraded_user_slots": float(metrics.degraded_user_slots),
                "missed_reports": float(metrics.missed_reports),
            }
        )
    return {
        "kind": "serve",
        "slots": int(slots),
        "deadline_target": float(deadline_target),
        "users_sustained": int(users_sustained),
        "fleets": results,
    }
